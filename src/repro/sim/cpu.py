"""In-order functional CPU interpreter.

The paper's baseline is "a typical embedded processor front-end, which
fetches and executes instructions in order and one at a time"; this
interpreter models exactly that.  Instructions are pre-compiled into
Python closures once per program so multi-million-instruction
workloads run in seconds.

Architectural simplifications (documented in DESIGN.md): no branch
delay slots (``jal`` links to ``pc + 4``), and each FP register holds
one double-precision value.

System calls follow SPIM conventions: ``$v0`` selects the service
(1 = print int in ``$a0``, 3 = print double in ``$f12``, 4 = print
string at ``$a0``, 11 = print char, 10 = exit).
"""

from __future__ import annotations

import math
from typing import Callable

from repro.isa.assembler import STACK_TOP, Program
from repro.isa.instruction import Instruction
from repro.isa.registers import A0, GP, RA, SP, V0
from repro.sim.memory import Memory

MASK32 = 0xFFFFFFFF


def _signed(value: int) -> int:
    return value - 0x100000000 if value & 0x80000000 else value


class CpuError(RuntimeError):
    """Raised for runtime faults (bad PC, step overrun, bad syscall)."""


class Cpu:
    """A single MIPS-like core bound to a program and a memory."""

    def __init__(self, program: Program, memory: Memory | None = None):
        self.program = program
        self.memory = memory if memory is not None else Memory()
        self.regs: list[int] = [0] * 32
        self.fregs: list[float] = [0.0] * 32
        self.hi = 0
        self.lo = 0
        self.fcc = False
        self.pc = program.entry
        self.running = True
        self.steps = 0
        self.output: list[str] = []
        self.regs[SP] = STACK_TOP
        self.regs[GP] = (program.data_base + 0x8000) & MASK32
        self.memory.write_bytes(program.data_base, bytes(program.data_image))
        # Keep a copy of the text image in memory too, so indirect
        # reads of code (rare, but legal) behave.
        for i, word in enumerate(program.words):
            self.memory.write_u32(program.text_base + 4 * i, word)
        self._compiled = [self._compile(inst) for inst in program.instructions]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(
        self,
        max_steps: int = 100_000_000,
        trace: list[int] | None = None,
    ) -> int:
        """Run until exit; returns the executed instruction count.

        ``trace``, when given, receives every fetched PC in order —
        the raw material for the bus transition measurements.
        """
        base = self.program.text_base
        end = self.program.text_end
        compiled = self._compiled
        steps = 0
        pc = self.pc
        if trace is None:
            while self.running:
                if steps >= max_steps:
                    self.pc = pc
                    raise CpuError(f"exceeded {max_steps} steps")
                if pc < base or pc >= end or pc & 3:
                    raise CpuError(f"PC out of text: {pc:#010x}")
                self.pc = pc
                compiled[(pc - base) >> 2](self)
                pc = self.pc
                steps += 1
        else:
            append = trace.append
            while self.running:
                if steps >= max_steps:
                    self.pc = pc
                    raise CpuError(f"exceeded {max_steps} steps")
                if pc < base or pc >= end or pc & 3:
                    raise CpuError(f"PC out of text: {pc:#010x}")
                append(pc)
                self.pc = pc
                compiled[(pc - base) >> 2](self)
                pc = self.pc
                steps += 1
        self.steps += steps
        return steps

    def step(self) -> None:
        """Execute a single instruction (slow path, for tests)."""
        base = self.program.text_base
        if self.pc < base or self.pc >= self.program.text_end or self.pc & 3:
            raise CpuError(f"PC out of text: {self.pc:#010x}")
        self._compiled[(self.pc - base) >> 2](self)
        self.steps += 1

    # ------------------------------------------------------------------
    # System calls
    # ------------------------------------------------------------------

    def _syscall(self) -> None:
        service = self.regs[V0]
        if service == 1:
            self.output.append(str(_signed(self.regs[A0])))
        elif service == 3:
            self.output.append(repr(self.fregs[12]))
        elif service == 4:
            self.output.append(self.memory.read_cstring(self.regs[A0]))
        elif service == 11:
            self.output.append(chr(self.regs[A0] & 0xFF))
        elif service == 10:
            self.running = False
        else:
            raise CpuError(f"unknown syscall {service} at {self.pc:#010x}")

    # ------------------------------------------------------------------
    # Instruction compilation
    # ------------------------------------------------------------------

    def _compile(self, inst: Instruction) -> Callable[["Cpu"], None]:
        name = inst.name
        rd, rs, rt = inst.get("rd"), inst.get("rs"), inst.get("rt")
        fd, fs, ft = inst.get("fd"), inst.get("fs"), inst.get("ft")
        shamt = inst.get("shamt")
        imm_u = inst.get("imm")
        imm_s = inst.simm
        target = inst.get("target")

        def wreg(builder):
            """Wrap a register-writing closure so $zero stays zero."""
            if builder is None:
                return None
            if rd == 0 and name not in ("jalr",):
                def discard(c, b=builder):
                    b(c)
                    c.regs[0] = 0
                return discard
            return builder

        # --- R-type ALU -----------------------------------------------
        if name in ("add", "addu"):
            def op(c):
                c.regs[rd] = (c.regs[rs] + c.regs[rt]) & MASK32
                c.pc += 4
            return wreg(op)
        if name in ("sub", "subu"):
            def op(c):
                c.regs[rd] = (c.regs[rs] - c.regs[rt]) & MASK32
                c.pc += 4
            return wreg(op)
        if name == "and":
            def op(c):
                c.regs[rd] = c.regs[rs] & c.regs[rt]
                c.pc += 4
            return wreg(op)
        if name == "or":
            def op(c):
                c.regs[rd] = c.regs[rs] | c.regs[rt]
                c.pc += 4
            return wreg(op)
        if name == "xor":
            def op(c):
                c.regs[rd] = c.regs[rs] ^ c.regs[rt]
                c.pc += 4
            return wreg(op)
        if name == "nor":
            def op(c):
                c.regs[rd] = ~(c.regs[rs] | c.regs[rt]) & MASK32
                c.pc += 4
            return wreg(op)
        if name == "slt":
            def op(c):
                c.regs[rd] = 1 if _signed(c.regs[rs]) < _signed(c.regs[rt]) else 0
                c.pc += 4
            return wreg(op)
        if name == "sltu":
            def op(c):
                c.regs[rd] = 1 if c.regs[rs] < c.regs[rt] else 0
                c.pc += 4
            return wreg(op)
        if name == "sll":
            def op(c):
                c.regs[rd] = (c.regs[rt] << shamt) & MASK32
                c.pc += 4
            return wreg(op)
        if name == "srl":
            def op(c):
                c.regs[rd] = c.regs[rt] >> shamt
                c.pc += 4
            return wreg(op)
        if name == "sra":
            def op(c):
                c.regs[rd] = (_signed(c.regs[rt]) >> shamt) & MASK32
                c.pc += 4
            return wreg(op)
        if name == "sllv":
            def op(c):
                c.regs[rd] = (c.regs[rt] << (c.regs[rs] & 31)) & MASK32
                c.pc += 4
            return wreg(op)
        if name == "srlv":
            def op(c):
                c.regs[rd] = c.regs[rt] >> (c.regs[rs] & 31)
                c.pc += 4
            return wreg(op)
        if name == "srav":
            def op(c):
                c.regs[rd] = (_signed(c.regs[rt]) >> (c.regs[rs] & 31)) & MASK32
                c.pc += 4
            return wreg(op)
        if name in ("mult", "multu"):
            signed = name == "mult"
            def op(c):
                a = _signed(c.regs[rs]) if signed else c.regs[rs]
                b = _signed(c.regs[rt]) if signed else c.regs[rt]
                product = a * b
                c.lo = product & MASK32
                c.hi = (product >> 32) & MASK32
                c.pc += 4
            return op
        if name in ("div", "divu"):
            signed = name == "div"
            def op(c):
                a = _signed(c.regs[rs]) if signed else c.regs[rs]
                b = _signed(c.regs[rt]) if signed else c.regs[rt]
                if b == 0:
                    c.lo = 0
                    c.hi = 0
                else:
                    quotient = int(a / b)  # trunc toward zero, MIPS-style
                    c.lo = quotient & MASK32
                    c.hi = (a - quotient * b) & MASK32
                c.pc += 4
            return op
        if name == "mfhi":
            def op(c):
                c.regs[rd] = c.hi
                c.pc += 4
            return wreg(op)
        if name == "mflo":
            def op(c):
                c.regs[rd] = c.lo
                c.pc += 4
            return wreg(op)
        if name == "mthi":
            def op(c):
                c.hi = c.regs[rs]
                c.pc += 4
            return op
        if name == "mtlo":
            def op(c):
                c.lo = c.regs[rs]
                c.pc += 4
            return op
        if name == "jr":
            def op(c):
                c.pc = c.regs[rs]
            return op
        if name == "jalr":
            link = rd if rd else RA
            def op(c):
                c.regs[link] = (c.pc + 4) & MASK32
                c.pc = c.regs[rs]
            return op
        if name == "syscall":
            def op(c):
                c._syscall()
                c.pc += 4
            return op

        # --- I-type ----------------------------------------------------
        if name in ("addi", "addiu"):
            def op(c):
                c.regs[rt] = (c.regs[rs] + imm_s) & MASK32
                c.pc += 4
            return self._wrt(op, rt)
        if name == "slti":
            def op(c):
                c.regs[rt] = 1 if _signed(c.regs[rs]) < imm_s else 0
                c.pc += 4
            return self._wrt(op, rt)
        if name == "sltiu":
            def op(c):
                c.regs[rt] = 1 if c.regs[rs] < (imm_s & MASK32) else 0
                c.pc += 4
            return self._wrt(op, rt)
        if name == "andi":
            def op(c):
                c.regs[rt] = c.regs[rs] & imm_u
                c.pc += 4
            return self._wrt(op, rt)
        if name == "ori":
            def op(c):
                c.regs[rt] = c.regs[rs] | imm_u
                c.pc += 4
            return self._wrt(op, rt)
        if name == "xori":
            def op(c):
                c.regs[rt] = c.regs[rs] ^ imm_u
                c.pc += 4
            return self._wrt(op, rt)
        if name == "lui":
            value = (imm_u << 16) & MASK32
            def op(c):
                c.regs[rt] = value
                c.pc += 4
            return self._wrt(op, rt)
        if name == "lw":
            def op(c):
                c.regs[rt] = c.memory.read_u32((c.regs[rs] + imm_s) & MASK32)
                c.pc += 4
            return self._wrt(op, rt)
        if name == "sw":
            def op(c):
                c.memory.write_u32((c.regs[rs] + imm_s) & MASK32, c.regs[rt])
                c.pc += 4
            return op
        if name == "lb":
            def op(c):
                c.regs[rt] = c.memory.read_s8((c.regs[rs] + imm_s) & MASK32) & MASK32
                c.pc += 4
            return self._wrt(op, rt)
        if name == "lbu":
            def op(c):
                c.regs[rt] = c.memory.read_u8((c.regs[rs] + imm_s) & MASK32)
                c.pc += 4
            return self._wrt(op, rt)
        if name == "lh":
            def op(c):
                c.regs[rt] = c.memory.read_s16((c.regs[rs] + imm_s) & MASK32) & MASK32
                c.pc += 4
            return self._wrt(op, rt)
        if name == "lhu":
            def op(c):
                c.regs[rt] = c.memory.read_u16((c.regs[rs] + imm_s) & MASK32)
                c.pc += 4
            return self._wrt(op, rt)
        if name == "sb":
            def op(c):
                c.memory.write_u8((c.regs[rs] + imm_s) & MASK32, c.regs[rt])
                c.pc += 4
            return op
        if name == "sh":
            def op(c):
                c.memory.write_u16((c.regs[rs] + imm_s) & MASK32, c.regs[rt])
                c.pc += 4
            return op
        if name == "beq":
            offset = 4 + 4 * imm_s
            def op(c):
                c.pc += offset if c.regs[rs] == c.regs[rt] else 4
            return op
        if name == "bne":
            offset = 4 + 4 * imm_s
            def op(c):
                c.pc += offset if c.regs[rs] != c.regs[rt] else 4
            return op
        if name == "blez":
            offset = 4 + 4 * imm_s
            def op(c):
                c.pc += offset if _signed(c.regs[rs]) <= 0 else 4
            return op
        if name == "bgtz":
            offset = 4 + 4 * imm_s
            def op(c):
                c.pc += offset if _signed(c.regs[rs]) > 0 else 4
            return op
        if name == "bltz":
            offset = 4 + 4 * imm_s
            def op(c):
                c.pc += offset if _signed(c.regs[rs]) < 0 else 4
            return op
        if name == "bgez":
            offset = 4 + 4 * imm_s
            def op(c):
                c.pc += offset if _signed(c.regs[rs]) >= 0 else 4
            return op
        if name == "j":
            destination = target << 2
            def op(c):
                c.pc = destination
            return op
        if name == "jal":
            destination = target << 2
            def op(c):
                c.regs[RA] = (c.pc + 4) & MASK32
                c.pc = destination
            return op

        # --- FP loads/stores --------------------------------------------
        if name == "ldc1":
            def op(c):
                c.fregs[ft] = c.memory.read_f64((c.regs[rs] + imm_s) & MASK32)
                c.pc += 4
            return op
        if name == "sdc1":
            def op(c):
                c.memory.write_f64((c.regs[rs] + imm_s) & MASK32, c.fregs[ft])
                c.pc += 4
            return op
        if name == "lwc1":
            def op(c):
                c.fregs[ft] = c.memory.read_f32((c.regs[rs] + imm_s) & MASK32)
                c.pc += 4
            return op
        if name == "swc1":
            def op(c):
                c.memory.write_f32((c.regs[rs] + imm_s) & MASK32, c.fregs[ft])
                c.pc += 4
            return op

        # --- FP arithmetic -----------------------------------------------
        if name == "add.d":
            def op(c):
                c.fregs[fd] = c.fregs[fs] + c.fregs[ft]
                c.pc += 4
            return op
        if name == "sub.d":
            def op(c):
                c.fregs[fd] = c.fregs[fs] - c.fregs[ft]
                c.pc += 4
            return op
        if name == "mul.d":
            def op(c):
                c.fregs[fd] = c.fregs[fs] * c.fregs[ft]
                c.pc += 4
            return op
        if name == "div.d":
            def op(c):
                c.fregs[fd] = c.fregs[fs] / c.fregs[ft]
                c.pc += 4
            return op
        if name == "sqrt.d":
            def op(c):
                c.fregs[fd] = math.sqrt(c.fregs[fs])
                c.pc += 4
            return op
        if name == "abs.d":
            def op(c):
                c.fregs[fd] = abs(c.fregs[fs])
                c.pc += 4
            return op
        if name == "mov.d":
            def op(c):
                c.fregs[fd] = c.fregs[fs]
                c.pc += 4
            return op
        if name == "neg.d":
            def op(c):
                c.fregs[fd] = -c.fregs[fs]
                c.pc += 4
            return op
        if name == "cvt.w.d":
            def op(c):
                c.fregs[fd] = float(int(c.fregs[fs]))  # truncate
                c.pc += 4
            return op
        if name == "cvt.d.w":
            def op(c):
                c.fregs[fd] = float(c.fregs[fs])
                c.pc += 4
            return op
        if name == "c.eq.d":
            def op(c):
                c.fcc = c.fregs[fs] == c.fregs[ft]
                c.pc += 4
            return op
        if name == "c.lt.d":
            def op(c):
                c.fcc = c.fregs[fs] < c.fregs[ft]
                c.pc += 4
            return op
        if name == "c.le.d":
            def op(c):
                c.fcc = c.fregs[fs] <= c.fregs[ft]
                c.pc += 4
            return op
        if name == "bc1t":
            offset = 4 + 4 * imm_s
            def op(c):
                c.pc += offset if c.fcc else 4
            return op
        if name == "bc1f":
            offset = 4 + 4 * imm_s
            def op(c):
                c.pc += offset if not c.fcc else 4
            return op
        if name == "mfc1":
            def op(c):
                c.regs[rt] = int(c.fregs[fs]) & MASK32
                c.pc += 4
            return self._wrt(op, rt)
        if name == "mtc1":
            def op(c):
                c.fregs[fs] = float(_signed(c.regs[rt]))
                c.pc += 4
            return op

        raise CpuError(f"no handler for instruction {name!r}")

    @staticmethod
    def _wrt(builder: Callable[["Cpu"], None], rt: int):
        """Wrap an rt-writing closure so $zero stays zero."""
        if rt != 0:
            return builder

        def discard(c, b=builder):
            b(c)
            c.regs[0] = 0

        return discard


def run_program(
    program: Program,
    max_steps: int = 100_000_000,
    with_trace: bool = True,
) -> tuple[Cpu, list[int]]:
    """Assemble-and-go helper: run ``program`` and return the CPU state
    plus the fetch trace (list of PCs)."""
    from repro.obs import OBS

    cpu = Cpu(program)
    trace: list[int] = [] if with_trace else None  # type: ignore[assignment]
    with OBS.tracer.span("sim.run", instructions=len(program.words)) as span:
        cpu.run(max_steps=max_steps, trace=trace)
        span.set(steps=cpu.steps)
    if OBS.enabled:
        OBS.registry.counter(
            "sim.instructions", "instructions executed by the functional CPU"
        ).inc(cpu.steps)
        OBS.registry.counter(
            "sim.fetches", "fetch addresses captured into traces"
        ).inc(len(trace) if with_trace else 0)
    return cpu, (trace if with_trace else [])
