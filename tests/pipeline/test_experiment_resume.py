"""Sweep WAL/resume tests: journaled grid points replay without
re-simulation and the CSV export stays byte-identical."""

import pytest

from repro.pipeline import experiment as experiment_module
from repro.pipeline.experiment import SweepRecord, run_sweep
from repro.runtime.checkpoint import CheckpointMismatchError


def _sweep(**kwargs):
    return run_sweep(
        ["fir"],
        block_sizes=(4, 5),
        tt_capacities=(16,),
        strategies=("greedy",),
        **kwargs,
    )


class TestSweepResume:
    def test_resume_replays_whole_grid_without_simulation(
        self, tmp_path, monkeypatch
    ):
        wal = tmp_path / "sweep.wal"
        first = _sweep(wal_path=wal)
        assert len(first) == 2

        def no_simulation(*args, **kwargs):  # pragma: no cover
            raise AssertionError("resume re-simulated a journaled workload")

        monkeypatch.setattr(
            experiment_module, "run_program", no_simulation
        )
        second = _sweep(wal_path=wal, resume=True)
        assert len(second) == len(first)
        assert second.to_csv() == first.to_csv()
        # Replayed points come back as deterministic records.
        assert all(
            isinstance(result, SweepRecord)
            for result in second.points.values()
        )

    def test_partial_wal_resumes_only_missing_points(self, tmp_path):
        wal = tmp_path / "sweep.wal"
        first = _sweep(wal_path=wal)
        # Drop the last journaled point, as a mid-run kill would.
        lines = wal.read_text().splitlines()
        wal.write_text("\n".join(lines[:-1]) + "\n")
        second = _sweep(wal_path=wal, resume=True)
        assert second.to_csv() == first.to_csv()
        # The WAL is topped back up for the next resume.
        assert len(wal.read_text().splitlines()) == len(lines)

    def test_write_csv_is_atomic_and_identical(self, tmp_path):
        wal = tmp_path / "sweep.wal"
        first = _sweep(wal_path=wal)
        second = _sweep(wal_path=wal, resume=True)
        a = first.write_csv(tmp_path / "a.csv")
        b = second.write_csv(tmp_path / "b.csv")
        assert a.read_bytes() == b.read_bytes()

    def test_resume_with_different_grid_refuses(self, tmp_path):
        wal = tmp_path / "sweep.wal"
        _sweep(wal_path=wal)
        with pytest.raises(CheckpointMismatchError, match="refusing"):
            run_sweep(
                ["fir"],
                block_sizes=(4, 5, 6),  # different grid identity
                tt_capacities=(16,),
                strategies=("greedy",),
                wal_path=wal,
                resume=True,
            )

    def test_fresh_run_discards_stale_wal(self, tmp_path):
        wal = tmp_path / "sweep.wal"
        wal.write_text('{"run_key":"stale"}\n')
        sweep = _sweep(wal_path=wal)
        assert len(sweep) == 2
        assert '"stale"' not in wal.read_text()

    def test_best_for_and_filter_work_on_replayed_records(self, tmp_path):
        wal = tmp_path / "sweep.wal"
        _sweep(wal_path=wal)
        replayed = _sweep(wal_path=wal, resume=True)
        point, record = replayed.best_for("fir")
        assert point.workload == "fir"
        assert record.reduction_percent > 0
        assert len(replayed.filter(block_size=4)) == 1
