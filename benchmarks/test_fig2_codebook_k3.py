"""Figure 2: optimal power-efficient transformations for 3-bit blocks.

Regenerates the codebook and checks it against the paper's printed
table character-for-character.
"""

from repro.core.codebook import build_codebook
from repro.core.transformations import ALL_TRANSFORMATIONS

# (X, X~, tau, T_x, T_x~) exactly as printed in the paper.
PAPER_FIGURE2 = [
    ("000", "000", "x", 0, 0),
    ("001", "111", "~x", 1, 0),
    ("010", "000", "~y", 2, 0),
    ("011", "011", "x", 1, 1),
    ("100", "100", "x", 1, 1),
    ("101", "111", "~y", 2, 0),
    ("110", "000", "~x", 1, 0),
    ("111", "111", "x", 0, 0),
]


def test_fig2_codebook_k3(benchmark, record_result):
    book = benchmark(build_codebook, 3, ALL_TRANSFORMATIONS)

    rows = book.rows()
    paper_taus = {"x": "x", "~x": "!x", "~y": "!y"}
    for (word, code, tau, tx, txt), (p_word, p_code, p_tau, p_tx, p_txt) in zip(
        rows, PAPER_FIGURE2
    ):
        assert word == p_word
        assert code == p_code
        assert tau == paper_taus[p_tau]
        assert (tx, txt) == (p_tx, p_txt)

    assert book.total_transitions == 8  # paper: TTN = 8
    assert book.reduced_transitions == 2  # paper: RTN = 2
    assert book.improvement_percent == 75.0

    record_result("fig2_codebook_k3", book.format_table())
