"""Memoized codebook/bundle cache for the encoding service.

The serve front-end fields many jobs that differ only in tenant and
job id: the *computation* is keyed by ``(workload-hash, block size,
TT capacity, strategy)`` and is a pure function of that key, so a
bounded LRU over finished results turns repeat jobs into dictionary
lookups.  Two layers:

* an in-memory LRU (:class:`BundleCache`) each codec worker process
  owns privately, and
* an optional on-disk mirror (``cache_dir``) written atomically —
  freshly forked workers (including a pool rebuilt after a crash)
  warm-start from it, and a restarted server does not recompute what
  the previous incarnation already paid for.

Entries are JSON dicts (a job result payload, including the bundle
digests) — deliberately the *deterministic* representation, so a
cache hit is byte-for-byte the result a cold compute would produce.

The disk mirror is *untrusted*: every on-disk entry carries a content
digest, verified on load.  A corrupt or truncated file (bit rot, a
torn write from a pre-hardening build, a hostile crash) is
**quarantined** — renamed to ``<entry>.bad`` so it is never re-read
and an operator can autopsy it — counted on ``cache.corrupt_entries``,
and served as a miss so the caller recomputes.  A cache that can
poison or crash the service is worse than no cache.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from pathlib import Path

from repro.obs import OBS
from repro.runtime import atomic_write_text
from repro.runtime.storage_faults import StorageVFS, get_vfs

#: On-disk entry envelope version (v2 added the content digest).
DISK_FORMAT_VERSION = 2


def workload_fingerprint(words: list[int]) -> str:
    """Stable identity of an assembled program image (the
    ``workload-hash`` half of a cache key)."""
    payload = b"".join(w.to_bytes(4, "little") for w in words)
    return hashlib.sha256(payload).hexdigest()[:16]


def cache_key(
    workload_hash: str, block_size: int, tt_capacity: int, strategy: str
) -> str:
    """The canonical cache key: every parameter that changes the
    encoded artefact, nothing that does not."""
    return f"{workload_hash}-k{block_size}-tt{tt_capacity}-{strategy}"


def entry_digest(entry: dict) -> str:
    """Content digest of one cache entry (canonical JSON, so the
    digest is independent of the writer's key order)."""
    canonical = json.dumps(entry, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class BundleCache:
    """Bounded LRU of finished encode results with a disk mirror.

    ``get``/``put`` never raise on disk trouble: a cache that can take
    a service down is worse than no cache, so I/O failures degrade to
    a miss (and a counter) instead of an exception, and entries that
    fail their digest are quarantined instead of served.
    """

    def __init__(
        self,
        capacity: int = 64,
        cache_dir: str | Path | None = None,
        vfs: StorageVFS | None = None,
    ):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._vfs = vfs
        self._entries: OrderedDict[str, dict] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk_loads = 0
        self.corrupt_entries = 0
        self.disk_errors = 0
        if self.cache_dir is not None:
            try:
                self.vfs.mkdirs(self.cache_dir)
            except OSError:
                # An unwritable cache dir degrades to memory-only.
                self.cache_dir = None

    @property
    def vfs(self) -> StorageVFS:
        return self._vfs or get_vfs()

    # ------------------------------------------------------------------

    def _disk_path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    def _count(self, name: str, help_: str) -> None:
        if OBS.enabled:
            OBS.registry.counter(name, help_).inc()

    def _quarantine(self, path: Path, why: str) -> None:
        """Move a bad entry aside (``*.bad``) so it is never re-read;
        best-effort — an unrenamable file is simply left to keep
        failing its digest."""
        self.corrupt_entries += 1
        self._count(
            "cache.corrupt_entries",
            "disk-cache entries that failed validation and were "
            "quarantined",
        )
        try:
            self.vfs.replace(path, path.with_suffix(path.suffix + ".bad"))
        except OSError:
            self.disk_errors += 1
            self._count(
                "cache.disk_errors", "bundle-cache disk operations that failed"
            )

    def _load_disk(self, key: str) -> dict | None:
        """Read + verify one disk entry; quarantines on any failure."""
        path = self._disk_path(key)
        try:
            raw = self.vfs.read_bytes(path)
        except OSError:
            # Missing is the common case; other read trouble is a miss.
            return None
        try:
            envelope = json.loads(raw.decode("utf-8", errors="strict"))
        except (ValueError, UnicodeDecodeError):
            self._quarantine(path, "unparseable")
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("v") != DISK_FORMAT_VERSION
            or not isinstance(envelope.get("entry"), dict)
            or not isinstance(envelope.get("digest"), str)
        ):
            self._quarantine(path, "bad envelope")
            return None
        entry = envelope["entry"]
        if entry_digest(entry) != envelope["digest"]:
            self._quarantine(path, "digest mismatch")
            return None
        return entry

    def get(self, key: str) -> dict | None:
        """In-memory hit, else verified disk warm-start, else ``None``."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            self._count("cache.hits", "bundle-cache lookups served from memory")
            return entry
        if self.cache_dir is not None:
            entry = self._load_disk(key)
            if entry is not None:
                self.disk_loads += 1
                self._count(
                    "cache.disk_loads",
                    "bundle-cache entries warm-started from disk",
                )
                self._install(key, entry, write_disk=False)
                return entry
        self.misses += 1
        self._count("cache.misses", "bundle-cache lookups that must compute")
        return None

    def put(self, key: str, entry: dict) -> None:
        self._install(key, entry, write_disk=True)

    def _install(self, key: str, entry: dict, write_disk: bool) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            self._count(
                "cache.evictions", "bundle-cache LRU evictions (memory only)"
            )
        if write_disk and self.cache_dir is not None:
            envelope = {
                "v": DISK_FORMAT_VERSION,
                "digest": entry_digest(entry),
                "entry": entry,
            }
            try:
                # Atomic + deterministic content: concurrent workers
                # writing the same key race benignly (identical bytes).
                atomic_write_text(
                    self._disk_path(key),
                    json.dumps(envelope, separators=(",", ":")) + "\n",
                    vfs=self.vfs,
                )
            except OSError:
                # StorageError included (it IS an OSError): disk
                # trouble must never surface through put().
                self.disk_errors += 1
                self._count(
                    "cache.disk_errors",
                    "bundle-cache disk operations that failed",
                )

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def stats(self) -> dict:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "disk_loads": self.disk_loads,
            "corrupt_entries": self.corrupt_entries,
            "disk_errors": self.disk_errors,
        }
