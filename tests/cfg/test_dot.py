"""Tests for the DOT exporter."""

from repro.cfg.dot import cfg_to_dot
from repro.cfg.graph import ControlFlowGraph
from repro.cfg.loops import find_natural_loops
from repro.cfg.profile import profile_trace
from repro.isa.assembler import assemble
from repro.sim.cpu import run_program

SOURCE = """
        .text
main:   li $t0, 3
loop:   addiu $t0, $t0, -1
        bnez $t0, loop
        jr $ra
"""


def _build():
    program = assemble(SOURCE)
    cfg = ControlFlowGraph.build(program)
    return program, cfg


class TestDotExport:
    def test_basic_structure(self):
        program, cfg = _build()
        dot = cfg_to_dot(cfg)
        assert dot.startswith("digraph cfg {")
        assert dot.rstrip().endswith("}")
        for start in cfg.blocks:
            assert f"n{start:x}" in dot

    def test_edges_present(self):
        program, cfg = _build()
        dot = cfg_to_dot(cfg)
        loop = program.address_of("loop")
        assert f"n{loop:x} -> n{loop:x};" in dot  # self loop

    def test_indirect_successor_rendered(self):
        program, cfg = _build()
        dot = cfg_to_dot(cfg)
        assert "jr/jalr" in dot
        assert "style=dashed" in dot

    def test_annotations(self):
        program, cfg = _build()
        # Can't actually run (jr $ra leaves text); synthesise a trace.
        loop = program.address_of("loop")
        trace = [program.entry, program.entry + 4, loop, loop + 4, loop, loop + 4]
        profile = profile_trace(cfg, trace)
        loops = find_natural_loops(cfg)
        dot = cfg_to_dot(cfg, profile=profile, loops=loops, selected=[loop])
        assert "fetches" in dot
        assert "peripheries=2" in dot  # loop header
        assert "lightblue" in dot  # selected block

    def test_valid_dot_is_parseable_by_networkx(self):
        # pydot may be absent; just check bracket balance instead.
        program, cfg = _build()
        dot = cfg_to_dot(cfg)
        assert dot.count("{") == dot.count("}")
        assert dot.count("[") == dot.count("]")
