"""Bus-invert coding (Stan & Burleson, IEEE TVLSI 1995) — reference [5].

Before driving a new word onto the bus, compare its Hamming distance
from the current bus state with ``width / 2``; if larger, drive the
complemented word and assert an extra *invert* line.  Worst-case
transitions per transfer drop to ``width / 2`` (+1 for the invert
line itself, which we count, as the original paper does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass
class BusInvertCoder:
    """Stateful bus-invert encoder for a ``width``-bit bus."""

    width: int = 32

    def __post_init__(self) -> None:
        self._mask = (1 << self.width) - 1
        self.reset()

    def reset(self, initial_word: int = 0) -> None:
        self._bus = initial_word & self._mask
        self._invert_line = 0
        self.transitions = 0
        self.transfers = 0

    def send(self, word: int) -> tuple[int, int]:
        """Encode one transfer; returns (driven word, invert bit) and
        accumulates the transition count including the invert line."""
        word &= self._mask
        plain = (word ^ self._bus).bit_count()
        inverted_word = word ^ self._mask
        inverted = (inverted_word ^ self._bus).bit_count()
        if inverted < plain:
            driven, invert = inverted_word, 1
            cost = inverted
        else:
            driven, invert = word, 0
            cost = plain
        cost += invert ^ self._invert_line
        self.transitions += cost
        self.transfers += 1
        self._bus = driven
        self._invert_line = invert
        return driven, invert

    def send_all(self, words: Iterable[int]) -> int:
        """Encode a word sequence; returns total transitions."""
        for word in words:
            self.send(word)
        return self.transitions

    @staticmethod
    def decode(driven: int, invert: int, width: int = 32) -> int:
        """Receiver side: undo the optional inversion."""
        mask = (1 << width) - 1
        return (driven ^ mask) if invert else (driven & mask)


def bus_invert_transitions(words: Sequence[int], width: int = 32) -> int:
    """Transitions (bus lines + invert line) for a fetch word stream.

    The first word is driven from an all-zero bus, mirroring how the
    other counters in this package treat sequence starts; relative
    comparisons are unaffected.
    """
    if not words:
        return 0
    coder = BusInvertCoder(width)
    coder.reset(initial_word=words[0])
    coder.send_all(words[1:])
    return coder.transitions
