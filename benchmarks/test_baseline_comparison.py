"""Baseline comparison: the paper's encoding vs the related work.

Section 2 argues bus-invert coding's "extremely general nature limits
relatively the power savings" on regular streams, and Section 3 argues
dictionary techniques pay unacceptable table costs.  This bench runs
both on the very same instruction-fetch word streams as Figure 6 and
compares; the application-specific encoding must win clearly on the
data bus, while T0/Gray are reported for the (separate) address bus."""

from repro.baselines.bus_invert import bus_invert_transitions
from repro.baselines.frequency import FrequencyRemapper
from repro.baselines.gray import gray_transitions
from repro.baselines.t0 import raw_address_transitions, t0_transitions
from repro.workloads.registry import BENCHMARK_ORDER


def _word_stream(program, trace):
    base = program.text_base
    words = program.words
    return [words[(a - base) >> 2] for a in trace]


def test_baseline_comparison(benchmark, figure6_results, record_result):
    results, traces = figure6_results

    def _compare():
        rows = {}
        for name in BENCHMARK_ORDER:
            program, trace = traces[name]
            words = _word_stream(program, trace)
            ours = results[name][5]
            remapper = FrequencyRemapper(max_entries=64).fit(words)
            rows[name] = {
                "baseline": ours.baseline_transitions,
                "ours": ours.encoded_transitions,
                "bus_invert": bus_invert_transitions(words),
                "dictionary": remapper.transitions(words),
                "dictionary_bits": remapper.dictionary_bits,
            }
        return rows

    rows = benchmark.pedantic(_compare, rounds=1, iterations=1)

    for name, row in rows.items():
        # Our encoding beats bus-invert on every benchmark (the
        # paper's Section 2 positioning).
        assert row["ours"] < row["bus_invert"], name
        # Bus-invert can never be much worse than raw (worst case adds
        # the invert line), sanity-checking the comparison.
        assert row["bus_invert"] <= row["baseline"] * 1.1

    lines = [
        "Baseline comparison — instruction data bus, block size 5",
        "",
        f"{'bench':6s} {'raw':>10s} {'bus-invert':>11s} "
        f"{'dict-64':>10s} {'ours(k=5)':>10s} {'ours red%':>9s} "
        f"{'businv red%':>11s}",
    ]
    for name, row in rows.items():
        ours_red = 100.0 * (row["baseline"] - row["ours"]) / row["baseline"]
        businv_red = (
            100.0 * (row["baseline"] - row["bus_invert"]) / row["baseline"]
        )
        lines.append(
            f"{name:6s} {row['baseline']:10d} {row['bus_invert']:11d} "
            f"{row['dictionary']:10d} {row['ours']:10d} "
            f"{ours_red:8.1f}% {businv_red:10.1f}%"
        )
    # Address-bus context (T0 / Gray operate on a different bus).
    program, trace = traces["mmul"]
    dict_bits = max(row["dictionary_bits"] for row in rows.values())
    our_bits = 16 * 101 + 16 * 34  # TT + BBIT storage (hw.cost)
    lines += [
        "",
        "address-bus context (mmul trace): "
        f"raw={raw_address_transitions(trace)}, "
        f"t0={t0_transitions(trace)}, gray={gray_transitions(trace)}",
        "",
        "conclusion: the application-specific vertical encoding beats "
        "bus-invert on every benchmark.  The dictionary remapper "
        "reaches fewer bus transitions (hot loops have few distinct "
        f"words) but needs {dict_bits} bits of lookup tables plus an "
        "escape path on every miss — the Section 3 objection — versus "
        f"{our_bits} bits for TT+BBIT and a single gate per line",
    ]
    record_result("baseline_comparison", "\n".join(lines))
