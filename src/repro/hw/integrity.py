"""Parity words for the decode tables.

The ASIC follow-on work treats table integrity as a first-class
hardware concern: a flipped selector or a stale BBIT field silently
yields wrong instructions, because the decoder has no other way to
tell a corrupted table from a reprogrammed one.  The defence modelled
here is the classic one — each table row carries a parity word
computed over every stored field when the row is *written*, and every
*read* recomputes and compares it before the row is used.

A 32-bit FNV-1a fold stands in for whatever ECC the silicon would
actually use; what matters behaviourally is that any single corrupted
field (including the CAM tag itself) mismatches with overwhelming
probability, deterministically, and cheaply.
"""

from __future__ import annotations

from typing import Iterable

_FNV_OFFSET = 0x811C9DC5
_FNV_PRIME = 0x01000193
_MASK32 = 0xFFFFFFFF


def fold_words(values: Iterable[int]) -> int:
    """FNV-1a over a field sequence; order- and position-sensitive."""
    acc = _FNV_OFFSET
    for value in values:
        acc = ((acc ^ (value & _MASK32)) * _FNV_PRIME) & _MASK32
        # Wider-than-32-bit fields (PCs on a 64-bit host) fold their
        # high halves too, so no corruption hides above bit 31.
        high = value >> 32
        if high:
            acc = ((acc ^ (high & _MASK32)) * _FNV_PRIME) & _MASK32
    return acc


def tt_entry_parity(selectors: Iterable[int], end: bool, count: int) -> int:
    """Parity word over every stored field of one TT row."""
    return fold_words([*selectors, int(end), count])


def bbit_entry_parity(pc: int, tt_index: int, num_instructions: int) -> int:
    """Parity word over every stored field of one BBIT row,
    including the CAM tag (the PC)."""
    return fold_words([pc, tt_index, num_instructions])
