"""Tests for the observability layer (metrics, tracing, run reports)."""
