"""Integration tests for the end-to-end encoding flow."""

import pytest

from repro.core.transformations import ALL_TRANSFORMATIONS
from repro.pipeline.flow import EncodingFlow
from repro.sim.bus import count_trace_transitions
from repro.sim.cpu import run_program
from repro.workloads.registry import build_workload


@pytest.fixture(scope="module")
def mmul_setup():
    workload = build_workload("mmul", n=10)
    program = workload.assemble()
    cpu, trace = run_program(program)
    workload.verify(cpu)
    return program, trace


class TestFlowBasics:
    def test_decode_is_verified_end_to_end(self, mmul_setup):
        program, trace = mmul_setup
        result = EncodingFlow(block_size=5).run(program, trace, "mmul")
        assert result.decode_verified
        assert result.selected_blocks

    def test_reduction_is_positive_and_sane(self, mmul_setup):
        program, trace = mmul_setup
        result = EncodingFlow(block_size=5).run(program, trace, "mmul")
        assert 0.0 < result.reduction_percent < 100.0
        assert result.encoded_transitions < result.baseline_transitions

    def test_transitions_match_bus_model(self, mmul_setup):
        program, trace = mmul_setup
        result = EncodingFlow(block_size=5).run(program, trace, "mmul")
        assert result.baseline_transitions == count_trace_transitions(
            program, trace
        )
        assert result.encoded_transitions == count_trace_transitions(
            program, trace, result.encoded_image
        )

    def test_image_only_differs_in_selected_blocks(self, mmul_setup):
        program, trace = mmul_setup
        result = EncodingFlow(block_size=5).run(program, trace, "mmul")
        from repro.cfg.graph import ControlFlowGraph

        cfg = ControlFlowGraph.build(program)
        encoded_addresses = set()
        for start in result.selected_blocks:
            encoded_addresses.update(cfg.blocks[start].addresses)
        base = program.text_base
        for i, (old, new) in enumerate(
            zip(program.words, result.encoded_image)
        ):
            if old != new:
                assert base + 4 * i in encoded_addresses

    def test_tt_budget_respected(self, mmul_setup):
        program, trace = mmul_setup
        for capacity in (2, 4, 8, 16):
            result = EncodingFlow(block_size=5, tt_capacity=capacity).run(
                program, trace, "mmul"
            )
            assert result.tt_entries_used <= capacity

    def test_more_tt_capacity_never_hurts(self, mmul_setup):
        program, trace = mmul_setup
        reductions = []
        for capacity in (2, 8, 32):
            result = EncodingFlow(block_size=5, tt_capacity=capacity).run(
                program, trace, "mmul"
            )
            reductions.append(result.reduction_percent)
        assert reductions == sorted(reductions)

    def test_block_size_trend(self, mmul_setup):
        # k=4 beats k=6/7 on average — the Figure 6 trend.
        program, trace = mmul_setup
        by_k = {
            k: EncodingFlow(block_size=k).run(program, trace, "mmul")
            for k in (4, 6)
        }
        assert (
            by_k[4].reduction_percent > by_k[6].reduction_percent
        )


class TestFlowVariants:
    def test_full_transformation_set_at_least_as_good(self, mmul_setup):
        program, trace = mmul_setup
        eight = EncodingFlow(block_size=5).run(program, trace, "mmul")
        sixteen = EncodingFlow(
            block_size=5,
            transformations=ALL_TRANSFORMATIONS,
            verify_decode=False,  # selectors unavailable outside the 8-set
        ).run(program, trace, "mmul")
        assert (
            sixteen.encoded_transitions <= eight.encoded_transitions
        )

    def test_optimal_strategy_at_least_as_good_as_greedy(self, mmul_setup):
        program, trace = mmul_setup
        greedy = EncodingFlow(block_size=5, strategy="greedy").run(
            program, trace, "mmul"
        )
        optimal = EncodingFlow(block_size=5, strategy="optimal").run(
            program, trace, "mmul"
        )
        assert (
            optimal.encoded_transitions <= greedy.encoded_transitions
        )

    def test_run_workload_convenience(self):
        workload = build_workload("lu", n=8)
        result = EncodingFlow(block_size=5).run_workload(workload)
        assert result.name == "lu"
        assert result.decode_verified

    def test_per_line_breakdown(self, mmul_setup):
        program, trace = mmul_setup
        flow = EncodingFlow(block_size=5)
        result = flow.run(program, trace, "mmul")
        baseline, encoded = flow.per_line_breakdown(program, trace, result)
        assert sum(baseline) == result.baseline_transitions
        assert sum(encoded) == result.encoded_transitions
        assert len(baseline) == len(encoded) == 32

    def test_no_loops_program_selects_nothing(self):
        from repro.isa.assembler import assemble

        program = assemble(
            ".text\nmain: addu $t0, $t1, $t2\nli $v0, 10\nsyscall\n"
        )
        cpu, trace = run_program(program)
        result = EncodingFlow(block_size=5).run(program, trace, "straight")
        assert result.selected_blocks == []
        assert result.encoded_transitions == result.baseline_transitions
        assert result.reduction_percent == 0.0


class TestReport:
    def test_fig6_table_and_formatting(self, mmul_setup):
        from repro.pipeline.report import (
            fig6_table,
            fig7_series,
            format_fig6,
            format_fig7_ascii,
            summarize_results,
        )

        program, trace = mmul_setup
        results = {
            "mmul": {
                k: EncodingFlow(block_size=k).run(program, trace, "mmul")
                for k in (4, 5, 6, 7)
            }
        }
        table = fig6_table(results)
        assert table["benchmarks"] == ["mmul"]
        assert table["tr"]["mmul"] > 0
        text = format_fig6(table)
        assert "#TR" in text and "Reduction(%)" in text and "#5-block" in text

        series = fig7_series(results)
        assert set(series) == {4, 5, 6, 7}
        chart = format_fig7_ascii(series, ["mmul"])
        assert "mmul" in chart and "k=4" in chart

        averages = summarize_results(results)
        assert set(averages) == {4, 5, 6, 7}
        assert all(0 <= v <= 100 for v in averages.values())
