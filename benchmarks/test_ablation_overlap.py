"""Ablation B: one-bit block overlap vs disjoint blocks.

Section 6: "Were blocks to be disjoint, no improvement can be effected
[across boundaries]. Overlapping blocks ... impose an additional
constraint ... an overlap with one bit position only needs to be
considered."  This bench quantifies the choice on random streams and
also checks greedy-vs-DP (the overlap's sequential coupling is what
makes greedy non-trivially suboptimal in theory)."""

from repro.core.analysis import random_streams
from repro.core.stream_codec import encode_stream


def _totals(strategy, streams, block_size=5):
    original = encoded = 0
    for stream in streams:
        result = encode_stream(stream, block_size, strategy=strategy)
        original += result.original_transitions
        encoded += result.encoded_transitions
    return original, encoded


def test_ablation_overlap(benchmark, record_result):
    streams = random_streams(count=20, length=1000, seed=66)

    original, overlapped = benchmark.pedantic(
        _totals, args=("greedy", streams), rounds=1, iterations=1
    )
    _, disjoint = _totals("disjoint", streams)
    _, optimal = _totals("optimal", streams)

    def reduction(encoded: int) -> float:
        return 100.0 * (original - encoded) / original

    # Overlap wins clearly: disjoint blocks leave the boundary
    # transitions uncontrolled (~1 extra expected transition per
    # boundary on uniform streams).
    assert overlapped < disjoint
    overlap_red = reduction(overlapped)
    disjoint_red = reduction(disjoint)
    assert overlap_red - disjoint_red > 5.0

    # The DP optimum confirms greedy's practical optimality under the
    # overlap coupling (paper's empirical claim).
    assert optimal <= overlapped
    assert (overlapped - optimal) / original < 0.005

    lines = [
        "Ablation B — block overlap, 20x1000-bit uniform streams, k=5",
        f"original transitions:   {original}",
        f"disjoint blocks:        {disjoint}  ({disjoint_red:.2f}% reduction)",
        f"1-bit overlap (greedy): {overlapped}  ({overlap_red:.2f}% reduction)",
        f"1-bit overlap (DP opt): {optimal}  ({reduction(optimal):.2f}% reduction)",
        "conclusion: the paper's one-bit overlap buys the boundary "
        "transitions; greedy is within noise of the global optimum",
    ]
    record_result("ablation_overlap", "\n".join(lines))
