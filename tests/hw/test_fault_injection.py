"""Fault-injection tests: the verification machinery must catch
corrupted tables, images and protocol violations — silence would mean
our "decode verified" claims are vacuous."""

import random

import pytest

from repro.core.program_codec import encode_basic_block
from repro.hw.bbit import BasicBlockIdentificationTable, BBITEntry
from repro.hw.fetch_decoder import FetchDecoder
from repro.hw.tt import TransformationTable, TTEntry


def _setup(words, block_size=5, base=0x400000):
    encoding = encode_basic_block(words, block_size)
    tt = TransformationTable(16)
    bbit = BasicBlockIdentificationTable(16)
    index = tt.allocate(encoding)
    bbit.install(BBITEntry(pc=base, tt_index=index, num_instructions=len(words)))
    image = {base + 4 * i: w for i, w in enumerate(encoding.encoded_words)}
    return encoding, tt, bbit, image


def _decode_all(tt, bbit, image, count, block_size=5, base=0x400000):
    decoder = FetchDecoder(tt, bbit, block_size)
    return [decoder.fetch(base + 4 * i, image[base + 4 * i]) for i in range(count)]


@pytest.fixture()
def words():
    rng = random.Random(77)
    return [rng.getrandbits(32) for _ in range(14)]


class TestTableCorruption:
    def test_flipped_selector_detected(self, words):
        encoding, tt, bbit, image = _setup(words)
        # Find an entry/line whose selector actually matters and flip it.
        for entry_index, entry in enumerate(tt.entries):
            for line in range(32):
                selectors = list(entry.selectors)
                original = selectors[line]
                selectors[line] = (original + 1) % 8
                tt.entries[entry_index] = TTEntry(
                    selectors=tuple(selectors), end=entry.end, count=entry.count
                )
                decoded = _decode_all(tt, bbit, image, len(words))
                tt.entries[entry_index] = entry  # restore
                if decoded != words:
                    return  # corruption visible: good
        pytest.fail("no selector flip ever changed the decode output")

    def test_wrong_tt_base_index_detected(self, words):
        encoding, tt, bbit, image = _setup(words)
        bbit.clear()
        bbit.install(
            BBITEntry(pc=0x400000, tt_index=1, num_instructions=len(words))
        )
        # Either the decode output is wrong or the walk runs off the
        # end of the table — both are detectable faults.
        try:
            decoded = _decode_all(tt, bbit, image, len(words))
        except IndexError:
            return
        assert decoded != words

    def test_wrong_block_length_truncates_decode(self, words):
        encoding, tt, bbit, image = _setup(words)
        bbit.clear()
        bbit.install(
            BBITEntry(pc=0x400000, tt_index=0, num_instructions=4)
        )
        decoded = _decode_all(tt, bbit, image, len(words))
        # After the (wrong) length runs out the decoder deactivates
        # and later encoded words pass through raw -> mismatch.
        assert decoded[:4] == words[:4]
        assert decoded != words


class TestImageCorruption:
    def test_flipped_stored_bit_detected(self, words):
        encoding, tt, bbit, image = _setup(words)
        victim = 0x400000 + 4 * 7
        image[victim] ^= 1 << 13
        decoded = _decode_all(tt, bbit, image, len(words))
        assert decoded != words

    def test_corruption_propagates_within_line(self, words):
        # History-based decode means one flipped stored bit can smear
        # along its bus line until the next anchor — check the blast
        # radius stays within the basic block.
        encoding, tt, bbit, image = _setup(words)
        image[0x400000 + 4 * 5] ^= 1 << 2
        decoded = _decode_all(tt, bbit, image, len(words))
        assert decoded[:5] == words[:5]  # earlier fetches unaffected
        assert decoded[5] != words[5]


class TestFlowLevelDetection:
    def test_bundle_detects_tampered_image(self):
        from repro.pipeline.bundle import EncodingBundle
        from repro.pipeline.flow import EncodingFlow
        from repro.sim.cpu import run_program
        from repro.workloads.registry import build_workload

        workload = build_workload("lu", n=6)
        program = workload.assemble()
        cpu, trace = run_program(program)
        result = EncodingFlow(block_size=5).run(program, trace, "lu")
        assert result.decode_verified

        bundle = EncodingBundle.from_flow_result(program, result)
        assert bundle.deploy_and_check(program, trace)
        # Flip one stored bit inside an encoded block: the loader-side
        # decode check must fail.
        victim_index = program.index_of(result.selected_blocks[0]) + 1
        bundle.encoded_words[victim_index] ^= 0x00010000
        assert not bundle.deploy_and_check(program, trace)
