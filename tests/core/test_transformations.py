"""Tests for the transformation sets and the Section 5.2 claims."""

import itertools

import pytest

from repro.core.block_solver import BlockSolver
from repro.core.transformations import (
    ALL_TRANSFORMATIONS,
    IDENTITY,
    OPTIMAL_SET,
    Transformation,
    by_name,
    by_selector,
    find_minimal_optimal_sets,
    is_closed_under_duality,
    lookup,
)


class TestSetDefinitions:
    def test_optimal_set_has_eight_members(self):
        assert len(OPTIMAL_SET) == 8

    def test_optimal_set_names(self):
        names = {t.name for t in OPTIMAL_SET}
        assert names == {"x", "~x", "y", "~y", "xor", "xnor", "nor", "nand"}

    def test_selectors_are_unique_three_bit(self):
        selectors = [t.selector for t in OPTIMAL_SET]
        assert sorted(selectors) == list(range(8))

    def test_identity_is_selector_zero(self):
        assert IDENTITY.selector == 0
        assert IDENTITY.is_identity

    def test_all_transformations_complete(self):
        assert len(ALL_TRANSFORMATIONS) == 16
        tables = {t.func.truth_table for t in ALL_TRANSFORMATIONS}
        assert tables == set(range(16))

    def test_optimal_set_leads_all_transformations(self):
        # Solver tie-breaks rely on this ordering.
        assert ALL_TRANSFORMATIONS[:8] == OPTIMAL_SET

    def test_non_optimal_members_have_no_selector(self):
        for t in ALL_TRANSFORMATIONS[8:]:
            assert t.selector is None

    def test_lookup_by_selector(self):
        for t in OPTIMAL_SET:
            assert by_selector(t.selector) == t

    def test_bad_selector_raises(self):
        with pytest.raises(KeyError):
            by_selector(8)

    def test_by_name(self):
        assert by_name("xor").name == "xor"
        with pytest.raises(KeyError):
            by_name("nope")

    def test_lookup_by_truth_table(self):
        for t in ALL_TRANSFORMATIONS:
            assert lookup(t.func.truth_table) == t


class TestDualityClosure:
    def test_optimal_set_closed_under_duality(self):
        assert is_closed_under_duality(OPTIMAL_SET)

    def test_dual_method_swaps_paper_pairs(self):
        assert by_name("xor").dual() == by_name("xnor")
        assert by_name("nor").dual() == by_name("nand")
        assert by_name("x").dual() == by_name("x")


class TestSection52Claims:
    """The paper's operative claim: the restricted set achieves the
    unrestricted optimum for every block size up to seven."""

    @pytest.mark.parametrize("size", range(2, 8))
    def test_eight_set_matches_full_search(self, size):
        full = BlockSolver(ALL_TRANSFORMATIONS)
        restricted = BlockSolver(OPTIMAL_SET)
        for word in itertools.product((0, 1), repeat=size):
            a = full.solve_anchored(list(word))
            b = restricted.solve_anchored(list(word))
            assert a.encoded_transitions == b.encoded_transitions, word

    def test_minimal_hitting_set_is_six_functions(self):
        # Reproduction finding (sharper than the paper's 8): six
        # functions suffice for anchored optimality on sizes <= 7.
        sets = find_minimal_optimal_sets(7)
        assert len(sets) == 1
        names = {t.name for t in sets[0]}
        assert names == {"x", "~x", "xor", "xnor", "nor", "nand"}

    def test_minimal_set_contained_in_paper_set(self):
        (minimal,) = find_minimal_optimal_sets(7)
        optimal_names = {t.name for t in OPTIMAL_SET}
        assert {t.name for t in minimal} <= optimal_names

    def test_smaller_sets_are_insufficient(self):
        # Dropping any one member of the minimal set must lose
        # optimality on some word.
        (minimal,) = find_minimal_optimal_sets(7)
        full = BlockSolver(ALL_TRANSFORMATIONS)
        for dropped in minimal:
            if dropped.is_identity:
                continue  # identity is mandatory by construction
            subset = [t for t in minimal if t != dropped]
            solver = BlockSolver(subset)
            lost = False
            for size in range(2, 8):
                for word in itertools.product((0, 1), repeat=size):
                    a = full.solve_anchored(list(word))
                    b = solver.solve_anchored(list(word))
                    if b.encoded_transitions > a.encoded_transitions:
                        lost = True
                        break
                if lost:
                    break
            assert lost, f"dropping {dropped.name} should hurt"


class TestTransformationObject:
    def test_callable(self):
        xor = by_name("xor")
        assert xor(1, 0) == 1
        assert xor(1, 1) == 0

    def test_repr_contains_name(self):
        assert "xor" in repr(by_name("xor"))

    def test_equality_ignores_selector(self):
        a = Transformation(by_name("xor").func, selector=4)
        b = Transformation(by_name("xor").func, selector=None)
        assert a == b
