"""Property tests for the checkpoint WAL's torn-line tolerance.

The WAL's durability contract: every fully appended line survives any
subsequent kill, and a half-written trailing line (the signature of
dying mid-``write``) is silently ignored on replay.  These tests
truncate a real log at *every possible byte offset* (hypothesis picks
the offsets; the short-log test sweeps all of them) and demand that
replay recovers exactly the records whose lines fully precede the cut
— never fewer, never a parse error, never a partial record.
"""

import json
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.strategies import rng_for

from repro.runtime import CheckpointLog, CheckpointMismatchError

#: JSON-serialisable results, as the campaigns record them.
results = st.dictionaries(
    st.text(min_size=1, max_size=8),
    st.one_of(st.integers(), st.text(max_size=12), st.booleans()),
    max_size=4,
)

keys = st.text(min_size=1, max_size=20)


def _write_log(path: Path, run_key: str, entries: list[tuple[str, dict]]):
    with CheckpointLog(path, run_key) as log:
        log.load()
        for key, result in entries:
            log.record(key, result)


def _expected_after_cut(raw: bytes, cut: int) -> dict[str, dict]:
    """The records whose full line (newline included) precedes ``cut``."""
    survived: dict[str, dict] = {}
    for line in raw[:cut].split(b"\n"):
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if "key" in record:
            survived[record["key"]] = record["result"]
    return survived


class TestTornLineTolerance:
    @given(
        entries=st.lists(st.tuples(keys, results), min_size=1, max_size=6),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_truncation_at_any_offset_replays_complete_prefix(
        self, entries, data
    ):
        # Duplicate keys legitimately overwrite; keep the last value.
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "wal.jsonl"
            _write_log(path, "run", entries)
            raw = path.read_bytes()
            cut = data.draw(st.integers(min_value=0, max_value=len(raw)))
            path.write_bytes(raw[:cut])
            log = CheckpointLog(path, "run")
            # A cut inside the header line discards the run_key too —
            # replay then treats the first surviving record line as a
            # (mismatching) header.  Only assert the content contract
            # when the header survived.
            header_end = raw.index(b"\n") + 1
            if cut >= header_end:
                assert log.load() == _expected_after_cut(raw, cut)

    def test_every_offset_of_a_small_log(self):
        # The exhaustive version hypothesis samples: all cut points.
        entries = [("a", {"x": 1}), ("b", {"y": 2}), ("c", {"z": 3})]
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "wal.jsonl"
            _write_log(path, "run", entries)
            raw = path.read_bytes()
            header_end = raw.index(b"\n") + 1
            for cut in range(header_end, len(raw) + 1):
                path.write_bytes(raw[:cut])
                log = CheckpointLog(path, "run")
                assert log.load() == _expected_after_cut(raw, cut), cut

    @given(
        entries=st.lists(st.tuples(keys, results), min_size=1, max_size=4),
        garbage=st.binary(min_size=1, max_size=40),
    )
    @settings(max_examples=40, deadline=None)
    def test_garbage_tail_never_breaks_replay(self, entries, garbage):
        # A torn append is arbitrary bytes, not just a JSON prefix.
        expected = dict(entries)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "wal.jsonl"
            _write_log(path, "run", entries)
            tail = garbage.replace(b"\n", b" ") or b"?"
            with path.open("ab") as handle:
                handle.write(tail)
            log = CheckpointLog(path, "run")
            assert log.load() == expected

    @given(entries=st.lists(st.tuples(keys, results), max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_clean_roundtrip(self, entries):
        expected = dict(entries)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "wal.jsonl"
            _write_log(path, "run", entries)
            log = CheckpointLog(path, "run")
            assert log.load() == expected

    def test_resume_appends_after_torn_tail(self):
        # After tolerating a torn tail, new appends must still parse:
        # records land on their own lines regardless of the torn bytes.
        rng = rng_for("torn-resume")
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "wal.jsonl"
            _write_log(path, "run", [("a", {"n": rng.randint(0, 99)})])
            with path.open("ab") as handle:
                handle.write(b'{"key": "tor')  # die mid-append
            with CheckpointLog(path, "run") as log:
                before = dict(log.load())
                log.record("b", {"m": 2})
            log2 = CheckpointLog(path, "run")
            replayed = log2.load()
            assert replayed["b"] == {"m": 2}
            for key, value in before.items():
                assert replayed[key] == value

    def test_run_key_mismatch_refuses(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "wal.jsonl"
            _write_log(path, "run-one", [("a", {})])
            with pytest.raises(CheckpointMismatchError):
                CheckpointLog(path, "run-two").load()
