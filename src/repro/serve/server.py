"""The asyncio encoding server: admission, dispatch, degradation, WAL.

One :class:`EncodingServer` owns four pieces of machinery:

* a **bounded queue** (``queue_depth``) between admission and
  dispatch — when it is full, :meth:`submit` sheds the job with an
  explicit ``retry_after_s`` instead of queueing unboundedly or
  slowing everyone down (load is shed loudly, never silently);
* a **process pool** of codec workers the dispatchers fan jobs over,
  each attempt bounded by the job's own deadline (enforced in-worker,
  backstopped by ``asyncio.wait_for``);
* a **circuit breaker + retry loop** around each attempt: a broken
  pool (worker crash) is rebuilt and the job retried with seeded
  backoff; a failure streak opens the breaker and routes jobs through
  a serial in-process fallback until a half-open probe heals it;
* a **write-ahead log** (:class:`~repro.runtime.CheckpointLog`) of
  final results in deterministic form — a server killed mid-queue and
  restarted with ``resume=True`` answers finished jobs from the WAL,
  byte-identically, before any new work is admitted.

The invariant tying it together: *nothing on the failure path can
change a job's final result* — crashes and stalls change which path a
job takes, never what it returns.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import multiprocessing
import os
import signal
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.errors import StorageError, StorageFullError
from repro.obs import OBS
from repro.obs.export import render_openmetrics, synthetic_gauge_family
from repro.obs.flight import FlightRecorder
from repro.obs.slo import DEFAULT_TENANT, SLOPolicy, SLOTracker
from repro.obs.window import TelemetryWindows
from repro.runtime import (
    BackoffPolicy,
    CheckpointLog,
    CircuitBreaker,
    retry_call_async,
)
from repro.serve.jobs import (
    JobRequest,
    JobValidationError,
    deterministic_result,
    fallback_identity,
    make_result,
    parse_request,
)
from repro.serve.worker import pool_execute, pool_worker_init, serial_execute

#: Metric families the server guarantees exist after a run (the
#: ``repro metrics --check --expect serve`` gate).
SERVE_METRIC_FAMILIES = (
    ("serve.jobs_accepted", "counter", "jobs admitted to the queue"),
    ("serve.jobs_completed", "counter", "jobs finished, by outcome"),
    ("serve.jobs_shed", "counter", "jobs refused: queue at depth limit"),
    ("serve.jobs_retried", "counter", "attempt retries after worker trouble"),
    (
        "serve.jobs_deadline_exceeded",
        "counter",
        "jobs that ran out of their wall-clock budget",
    ),
    ("serve.queue_depth", "gauge", "jobs waiting for a dispatcher"),
    ("serve.job_seconds", "histogram", "admission-to-completion latency"),
    # PR 8 telemetry plane.
    (
        "serve.telemetry_deltas_merged",
        "counter",
        "worker telemetry deltas folded into the server registry",
    ),
    (
        "serve.worker_spans_adopted",
        "counter",
        "worker spans stitched into the server trace",
    ),
    ("serve.pool_rebuilds", "counter", "worker pools replaced after a crash"),
    ("slo.jobs_observed", "counter", "jobs graded against the SLO policy"),
    ("slo.bad_jobs", "counter", "jobs that consumed error budget"),
    ("slo.burn_rate", "gauge", "worst-window SLO budget burn, by tenant"),
    # PR 9 storage hardening.
    (
        "serve.storage_degraded",
        "counter",
        "transitions to memory-only journaling on a full WAL device",
    ),
)


@dataclass
class ServeConfig:
    """Service tuning knobs.

    Only ``seed`` and ``batch_key`` enter the WAL ``run_key``:
    execution knobs (workers, queue depth, retries) may differ between
    a run and its resume without invalidating the journal — the same
    rule the fault campaign established in PR 4.
    """

    workers: int = 2
    queue_depth: int = 32
    default_deadline_s: float = 30.0
    #: Extra slack the event-loop backstop allows past the in-worker
    #: deadline before declaring the worker hung.
    deadline_grace_s: float = 2.0
    retry_attempts: int = 4
    #: How many pool breakages one job will ride out before it stops
    #: waiting for a healthy pool and runs on the serial path.  A
    #: break is *infrastructure* failing, not the job, so it has its
    #: own budget and does not consume ``retry_attempts``.
    pool_break_retries: int = 10
    breaker_threshold: int = 5
    breaker_cooldown_s: float = 2.0
    seed: int = 0
    #: Shared on-disk bundle-cache directory (warm-starts fresh
    #: workers and resumed servers); ``None`` = memory-only caches.
    cache_dir: str | None = None
    wal_path: str | None = None
    resume: bool = False
    #: Caller-supplied batch identity folded into the WAL run key
    #: (the selftest passes a digest of its generation parameters).
    batch_key: str = ""
    #: Flight-record destination; ``None`` disables dumps (the ring
    #: still records, so ``status()`` can always show recent events).
    flight_path: str | None = None
    #: Pool rebuilds within ``rebuild_storm_window_s`` that count as a
    #: storm and trigger a flight dump.
    rebuild_storm_threshold: int = 3
    rebuild_storm_window_s: float = 30.0
    #: Per-tenant SLO policy knob surfaced on the CLI; the rest of the
    #: policy keeps its defaults.
    slo_latency_target_s: float = 2.0
    backoff: BackoffPolicy = field(
        default_factory=lambda: BackoffPolicy(
            base=0.02, factor=2.0, cap=0.25, max_attempts=4
        )
    )

    def run_key(self) -> str:
        identity = json.dumps(
            {"serve_wal": 1, "seed": self.seed, "batch": self.batch_key},
            sort_keys=True,
        )
        return "serve:" + hashlib.sha256(identity.encode()).hexdigest()[:16]


@dataclass
class _QueuedJob:
    request: JobRequest
    future: asyncio.Future
    admitted_at: float


class EncodingServer:
    """See the module docstring; use as ``async with EncodingServer(cfg)``."""

    def __init__(self, config: ServeConfig | None = None):
        self.config = config or ServeConfig()
        if self.config.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.config.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self._queue: asyncio.Queue[_QueuedJob] | None = None
        self._dispatchers: list[asyncio.Task] = []
        self._pool: ProcessPoolExecutor | None = None
        self._pool_generation = 0
        self._breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            cooldown_s=self.config.breaker_cooldown_s,
        )
        self._wal: CheckpointLog | None = None
        self._started = False
        #: Plain operational counters, kept independently of the obs
        #: switch so the bench report exists even without --metrics.
        self.stats = {
            "accepted": 0,
            "completed": 0,
            "shed": 0,
            "retried": 0,
            "deadline_exceeded": 0,
            "malformed": 0,
            "errors": 0,
            "replayed": 0,
            "pool_rebuilds": 0,
            "serial_fallbacks": 0,
            "breaker_opens": 0,
            "storage_degraded": 0,
            "storage_recovered": 0,
        }
        #: True while the WAL device is full and journaling runs
        #: memory-only; results queue in ``_journal_backlog`` and every
        #: later completion retries the flush (the re-arm probe).
        self._wal_degraded = False
        self._journal_backlog: list[tuple[str, dict]] = []
        #: Admission-to-completion latencies (seconds) for the bench
        #: summary; mirrors the serve.job_seconds histogram.
        self.latencies: list[float] = []
        #: The always-on telemetry plane: rolling windows, per-tenant
        #: SLO grading, and the flight recorder.  Like ``stats``, these
        #: live independently of the OBS switch so `repro top` and the
        #: bench report work on an uninstrumented server.
        self.windows = TelemetryWindows()
        self.slo = SLOTracker(
            SLOPolicy(latency_target_s=self.config.slo_latency_target_s)
        )
        self.flight = FlightRecorder()
        self._rebuild_times: list[float] = []
        self._sigterm_installed = False

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> "EncodingServer":
        if self._started:
            return self
        self._queue = asyncio.Queue(maxsize=self.config.queue_depth)
        self._register_metric_families()
        if self.config.wal_path is not None:
            self._wal = CheckpointLog(
                self.config.wal_path, run_key=self.config.run_key()
            )
            if self.config.resume:
                replayed = self._wal.load()
                self.stats["replayed_available"] = len(replayed)
            # Take the append lock now, not at the first journal write:
            # a WAL another live server owns must refuse *here*, before
            # any job is admitted, not mid-dispatch.
            self._wal.open_for_append()
        self._build_pool()
        self._dispatchers = [
            asyncio.ensure_future(self._dispatch_loop())
            for _ in range(self.config.workers)
        ]
        if self.config.flight_path is not None:
            # Dump the flight record on SIGTERM, then let the default
            # disposition run its course — an operator kill should
            # leave a diagnosis behind, not change shutdown semantics.
            try:
                asyncio.get_running_loop().add_signal_handler(
                    signal.SIGTERM, self._on_sigterm
                )
                self._sigterm_installed = True
            except (NotImplementedError, RuntimeError, ValueError):
                self._sigterm_installed = False
        self._started = True
        self.flight.record(
            "server_start",
            workers=self.config.workers,
            queue_depth=self.config.queue_depth,
            resume=self.config.resume,
        )
        return self

    def _on_sigterm(self) -> None:
        self.flight.record("sigterm")
        self._dump_flight("sigterm")
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        os.kill(os.getpid(), signal.SIGTERM)

    async def stop(self) -> None:
        if self._sigterm_installed:
            try:
                asyncio.get_running_loop().remove_signal_handler(
                    signal.SIGTERM
                )
            except (NotImplementedError, RuntimeError, ValueError):
                pass
            self._sigterm_installed = False
        for task in self._dispatchers:
            task.cancel()
        for task in self._dispatchers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._dispatchers = []
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        if self._wal is not None:
            if self._journal_backlog:
                # One last chance for a degraded server to land its
                # backlog before the handle goes away.
                try:
                    while self._journal_backlog:
                        pending_key, pending_result = self._journal_backlog[0]
                        self._wal.record(pending_key, pending_result)
                        self._journal_backlog.pop(0)
                except StorageError:
                    self.flight.record(
                        "storage_backlog_dropped",
                        records=len(self._journal_backlog),
                    )
            self._wal.close()
        self._started = False

    async def __aenter__(self) -> "EncodingServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    def _register_metric_families(self) -> None:
        """Pre-register every serve.* family so a quiet run (zero
        sheds, zero retries) still passes the expected-family gate."""
        if not OBS.enabled:
            return
        for name, type_, help_ in SERVE_METRIC_FAMILIES:
            getattr(OBS.registry, type_)(name, help_)

    def _count(self, name: str, help_: str, **labels) -> None:
        if OBS.enabled:
            OBS.registry.counter(name, help_, **labels).inc()

    # -- flight recorder -----------------------------------------------

    def _dump_flight(self, reason: str, extra: dict | None = None) -> None:
        if self.config.flight_path is None:
            return
        try:
            self.flight.dump(self.config.flight_path, reason, extra)
        except OSError:
            # A full disk must not take the serve path down with it.
            pass

    def _note_breaker_open(self) -> None:
        self.stats["breaker_opens"] += 1
        self.flight.record(
            "breaker_open",
            consecutive_failures=self._breaker.consecutive_failures,
        )
        self._dump_flight("breaker_open")

    # -- process pool --------------------------------------------------

    def _build_pool(self) -> None:
        # Plain fork, explicitly: spawn/forkserver re-prepare the
        # parent's __main__ in each worker, which breaks under
        # embedded/stdin entry points; fork is what the campaign
        # pools already use and workers here are pure-compute.
        methods = multiprocessing.get_all_start_methods()
        ctx = (
            multiprocessing.get_context("fork") if "fork" in methods else None
        )
        self._pool = ProcessPoolExecutor(
            max_workers=self.config.workers,
            mp_context=ctx,
            initializer=pool_worker_init,
            initargs=(os.getpid(),),
        )

    def _rebuild_pool(self, seen_generation: int) -> None:
        """Replace a broken pool exactly once per breakage: dispatchers
        all see the same BrokenProcessPool, only the first rebuilds."""
        if self._pool_generation != seen_generation:
            return
        self._pool_generation += 1
        old = self._pool
        self._build_pool()
        self.stats["pool_rebuilds"] += 1
        self._count("serve.pool_rebuilds", "worker pools replaced after a crash")
        now = time.monotonic()
        self._rebuild_times = [
            t
            for t in self._rebuild_times
            if now - t <= self.config.rebuild_storm_window_s
        ]
        self._rebuild_times.append(now)
        self.flight.record(
            "pool_rebuild",
            generation=self._pool_generation,
            rebuilds_in_window=len(self._rebuild_times),
        )
        if len(self._rebuild_times) >= self.config.rebuild_storm_threshold:
            self._dump_flight(
                "pool_rebuild_storm",
                {
                    "rebuilds_in_window": len(self._rebuild_times),
                    "window_s": self.config.rebuild_storm_window_s,
                },
            )
        if old is not None:
            old.shutdown(wait=False, cancel_futures=True)

    # -- admission -----------------------------------------------------

    async def submit(self, raw: object) -> dict:
        """Admit one request; resolves to its final result wire dict
        (or an immediate ``shed``/``malformed`` response)."""
        if not self._started:
            raise RuntimeError("server not started")
        try:
            request = parse_request(raw)
        except JobValidationError as err:
            tenant, job_id, key = fallback_identity(raw)
            kind = ""
            if isinstance(raw, dict) and isinstance(raw.get("kind"), str):
                kind = raw["kind"]
            if self._wal is not None and key in self._wal:
                self.stats["replayed"] += 1
                return dict(self._wal.completed[key])
            result = make_result(
                tenant=tenant,
                job_id=job_id,
                kind=kind,
                outcome="malformed",
                error=str(err),
            )
            self.stats["malformed"] += 1
            self._count(
                "serve.jobs_malformed", "requests rejected by validation"
            )
            self._finish(key, result, admitted_at=None)
            return result

        key = request.key
        if self._wal is not None and key in self._wal:
            self.stats["replayed"] += 1
            self._count("serve.jobs_replayed", "results answered from the WAL")
            return dict(self._wal.completed[key])

        if self._queue.full():
            self.stats["shed"] += 1
            self._count("serve.jobs_shed", "jobs refused: queue at depth limit")
            self.flight.record(
                "job_shed", tenant=request.tenant, job_id=request.job_id
            )
            retry_after = round(
                0.05 * (1.0 + self._queue.qsize() / self.config.workers), 3
            )
            return {
                "tenant": request.tenant,
                "job_id": request.job_id,
                "kind": request.kind,
                "outcome": "shed",
                "payload": {},
                "error": "queue full",
                "attempts": 0,
                "duration_s": 0.0,
                "retry_after_s": retry_after,
            }

        future = asyncio.get_running_loop().create_future()
        self._queue.put_nowait(
            _QueuedJob(
                request=request,
                future=future,
                admitted_at=time.monotonic(),
            )
        )
        self.stats["accepted"] += 1
        self._count("serve.jobs_accepted", "jobs admitted to the queue")
        if OBS.enabled:
            OBS.registry.gauge(
                "serve.queue_depth", "jobs waiting for a dispatcher"
            ).set(self._queue.qsize())
        return await future

    # -- dispatch ------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            job = await self._queue.get()
            if OBS.enabled:
                OBS.registry.gauge(
                    "serve.queue_depth", "jobs waiting for a dispatcher"
                ).set(self._queue.qsize())
            try:
                result = await self._execute(job)
            except asyncio.CancelledError:
                if not job.future.done():
                    job.future.cancel()
                raise
            except BaseException as err:  # a dispatcher must never die
                result = make_result(
                    tenant=job.request.tenant,
                    job_id=job.request.job_id,
                    kind=job.request.kind,
                    outcome="error",
                    error=f"{type(err).__name__}: {err}",
                )
            try:
                self._finish(
                    job.request.key, result, admitted_at=job.admitted_at
                )
            except Exception as err:
                # Journalling failed (WAL lock lost, disk full): the
                # caller must hear about it — a dispatcher dying here
                # silently would stall the queue forever.
                if not job.future.done():
                    job.future.set_exception(err)
            else:
                if not job.future.done():
                    job.future.set_result(result)
            self._queue.task_done()

    async def _execute(self, job: _QueuedJob) -> dict:
        request = job.request
        wire = request.wire()
        loop = asyncio.get_running_loop()
        attempt_box = {"n": 0}
        deadline = request.deadline_s
        if deadline is None:
            deadline = self.config.default_deadline_s
            wire["deadline_s"] = deadline
        backstop = deadline + self.config.deadline_grace_s

        # Open the job's trace span *detached* (dispatchers interleave
        # many jobs on this one thread, so stack nesting would lie) and
        # ride its context on the envelope.  ``_trace`` is a transport
        # annotation: invisible to the job key, the WAL, and results.
        job_span = (
            OBS.tracer.begin(
                "serve.job",
                kind=request.kind,
                tenant=request.tenant,
                job_id=request.job_id,
            )
            if OBS.enabled
            else None
        )
        if job_span is not None:
            wire["_trace"] = OBS.tracer.context(
                job_span, tenant=request.tenant, job_id=request.job_id
            ).to_wire()

        pool_breaks = {"n": 0}

        async def attempt_once() -> dict:
            while True:
                # Every dispatch advances the attempt number — a job
                # whose own worker crashed must not replay its
                # attempt-0 behaviour (the kill chaos model) forever.
                attempt = attempt_box["n"]
                attempt_box["n"] += 1
                use_pool = (
                    self._breaker.allow()
                    and pool_breaks["n"] < self.config.pool_break_retries
                )
                generation = self._pool_generation
                try:
                    if use_pool and self._pool is not None:
                        outcome = await asyncio.wait_for(
                            loop.run_in_executor(
                                self._pool,
                                pool_execute,
                                wire,
                                attempt,
                                self.config.cache_dir,
                            ),
                            timeout=backstop,
                        )
                    else:
                        # Degraded mode: in-process, serial, kill-chaos
                        # disarmed; the in-worker watchdog still
                        # enforces the job deadline.
                        self.stats["serial_fallbacks"] += 1
                        self._count(
                            "serve.serial_fallbacks",
                            "jobs run on the in-process fallback path",
                        )
                        outcome = await asyncio.wait_for(
                            asyncio.to_thread(
                                serial_execute,
                                wire,
                                attempt,
                                self.config.cache_dir,
                            ),
                            timeout=backstop,
                        )
                except asyncio.TimeoutError:
                    # The in-worker guard should have fired first;
                    # getting here means the worker is truly wedged.
                    # The job's outcome is still a clean timeout.
                    if use_pool and self._breaker.record_failure():
                        self._note_breaker_open()
                    return {
                        "outcome": "deadline_exceeded",
                        "error": (
                            f"job {request.key} exceeded its {deadline:g}s "
                            "deadline"
                        ),
                    }
                except BrokenProcessPool:
                    # The pool died under this attempt — maybe this
                    # job's own worker crashed, maybe it was collateral
                    # damage from a neighbour's.  Either way the *pool*
                    # failed, not the job, so this has its own budget
                    # (pool_break_retries) and, once that is spent, the
                    # job stops waiting for healthy infrastructure and
                    # takes the serial path above.
                    if self._breaker.record_failure():
                        self._note_breaker_open()
                    self._rebuild_pool(generation)
                    pool_breaks["n"] += 1
                    self.stats["retried"] += 1
                    self._count(
                        "serve.jobs_retried",
                        "attempt retries after worker trouble",
                    )
                    await asyncio.sleep(
                        self.config.backoff.delay(
                            min(pool_breaks["n"] - 1, 6),
                            seed=f"pool:{self.config.seed}:{request.key}",
                        )
                    )
                    continue
                except Exception:
                    if use_pool and self._breaker.record_failure():
                        self._note_breaker_open()
                    raise
                if use_pool:
                    self._breaker.record_success()
                return outcome

        def on_retry(attempt: int, delay: float, err: BaseException) -> None:
            self.stats["retried"] += 1
            self._count(
                "serve.jobs_retried", "attempt retries after worker trouble"
            )

        policy = self.config.backoff
        if policy.max_attempts != self.config.retry_attempts:
            policy = BackoffPolicy(
                base=policy.base,
                factor=policy.factor,
                cap=policy.cap,
                max_attempts=self.config.retry_attempts,
            )
        try:
            outcome = await retry_call_async(
                attempt_once,
                policy=policy,
                seed=f"serve:{self.config.seed}:{request.key}",
                retry_on=(Exception,),
                on_retry=on_retry,
            )
        except Exception as err:
            outcome = {
                "outcome": "error",
                "error": f"{type(err).__name__}: {err}",
            }
        # The worker's piggybacked telemetry must come off the outcome
        # *before* it becomes a result: nothing timing-dependent may
        # reach the WAL or the byte-compared reports.
        self._merge_telemetry(outcome.pop("_telemetry", None))
        if job_span is not None:
            final = outcome.get("outcome", "error")
            job_span.set(outcome=final, attempts=attempt_box["n"])
            OBS.tracer.end(
                job_span, status="ok" if final == "ok" else "error"
            )
        duration = time.monotonic() - job.admitted_at
        return make_result(
            tenant=request.tenant,
            job_id=request.job_id,
            kind=request.kind,
            outcome=outcome.get("outcome", "error"),
            payload=outcome.get("payload"),
            error=outcome.get("error", ""),
            attempts=attempt_box["n"],
            duration_s=round(duration, 6),
        )

    def _merge_telemetry(self, telemetry: object) -> None:
        """Fold a worker's per-job delta into the server's registry and
        tracer.  Tolerant of anything: a mangled envelope from a dying
        worker degrades to "no telemetry", never to a failed job."""
        if not isinstance(telemetry, dict):
            return
        if not OBS.enabled:
            return
        merged = OBS.registry.merge_delta(telemetry.get("metrics"))
        adopted = OBS.tracer.adopt_spans(telemetry.get("spans"))
        OBS.registry.counter(
            "serve.telemetry_deltas_merged",
            "worker telemetry deltas folded into the server registry",
        ).inc()
        if adopted:
            OBS.registry.counter(
                "serve.worker_spans_adopted",
                "worker spans stitched into the server trace",
            ).inc(adopted)
        self.flight.record(
            "telemetry_merge", series=merged, spans=adopted
        )

    # -- completion ----------------------------------------------------

    def _finish(
        self, key: str, result: dict, admitted_at: float | None
    ) -> None:
        outcome = result["outcome"]
        self.stats["completed"] += 1
        if outcome == "deadline_exceeded":
            self.stats["deadline_exceeded"] += 1
            self._count(
                "serve.jobs_deadline_exceeded",
                "jobs that ran out of their wall-clock budget",
            )
        elif outcome == "error":
            self.stats["errors"] += 1
        self._count(
            "serve.jobs_completed", "jobs finished, by outcome", outcome=outcome
        )
        if admitted_at is not None:
            latency = time.monotonic() - admitted_at
            self.latencies.append(latency)
            ok = outcome == "ok"
            tenant = result.get("tenant") or DEFAULT_TENANT
            self.windows.observe(latency, ok=ok)
            self.slo.observe(tenant, latency, ok)
            self.flight.record(
                "job_finish",
                key=key,
                tenant=tenant,
                outcome=outcome,
                latency_ms=round(latency * 1000.0, 3),
            )
            if OBS.enabled:
                OBS.registry.histogram(
                    "serve.job_seconds",
                    "admission-to-completion latency",
                    kind=result.get("kind") or "unknown",
                ).observe(latency)
                OBS.registry.counter(
                    "slo.jobs_observed",
                    "jobs graded against the SLO policy",
                    tenant=tenant,
                ).inc()
                if not ok:
                    OBS.registry.counter(
                        "slo.bad_jobs",
                        "jobs that consumed error budget",
                        tenant=tenant,
                    ).inc()
                OBS.registry.gauge(
                    "slo.burn_rate",
                    "worst-window SLO budget burn, by tenant",
                    tenant=tenant,
                ).set(self.slo.verdict(tenant)["burn_rate"])
        if self._wal is not None:
            self._journal(key, deterministic_result(result))

    def _journal(self, key: str, result: dict) -> None:
        """Durably record one result, degrading on a full device.

        ENOSPC on the WAL must not take the serve path down — the job
        already finished; only its durability is at risk.  The result
        joins an in-memory backlog, a ``storage_degraded`` flight event
        fires once, and every later completion retries the whole
        backlog in order — so the moment space returns, journaling
        re-arms and catches up with nothing lost from this process.
        (A subsequent *kill* while degraded does lose the backlog; the
        flight record and ``status()`` say exactly that was the state.)
        """
        self._journal_backlog.append((key, result))
        try:
            while self._journal_backlog:
                pending_key, pending_result = self._journal_backlog[0]
                self._wal.record(pending_key, pending_result)
                self._journal_backlog.pop(0)
        except StorageFullError as err:
            if not self._wal_degraded:
                self._wal_degraded = True
                self.stats["storage_degraded"] += 1
                self._count(
                    "serve.storage_degraded",
                    "transitions to memory-only journaling on a full "
                    "WAL device",
                )
                self.flight.record(
                    "storage_degraded",
                    error=str(err),
                    backlog=len(self._journal_backlog),
                )
                self._dump_flight("storage_degraded")
            return
        if self._wal_degraded:
            self._wal_degraded = False
            self.stats["storage_recovered"] += 1
            self.flight.record("storage_recovered")

    # -- live views ----------------------------------------------------

    def status(self) -> dict:
        """One JSON-ready snapshot of everything `repro top` shows."""
        return {
            "stats": dict(self.stats),
            "queue_depth": self._queue.qsize() if self._queue else 0,
            "pool_generation": self._pool_generation,
            "breaker": {
                "state": self._breaker.state,
                "consecutive_failures": self._breaker.consecutive_failures,
            },
            "windows": self.windows.snapshot(),
            "slo": self.slo.snapshot(),
            "flight": self.flight.snapshot(),
            "storage": {
                "wal_degraded": self._wal_degraded,
                "journal_backlog": len(self._journal_backlog),
            },
        }

    def _window_families(self) -> dict:
        """The windowed rates and SLO burns as snapshot-form gauge
        families, so they render on /metrics next to the registry."""
        win = self.windows.snapshot()
        rate, errs, p99 = [], [], []
        for label, data in win.items():
            rate.append(({"window": label}, data["rate_per_s"]))
            errs.append(({"window": label}, data["error_rate"]))
            if data["latency"]["p99_ms"] is not None:
                p99.append(({"window": label}, data["latency"]["p99_ms"]))
        families = {
            "serve.window_rate_per_s": synthetic_gauge_family(
                rate, "job throughput over the trailing window"
            ),
            "serve.window_error_rate": synthetic_gauge_family(
                errs, "failed-job fraction over the trailing window"
            ),
        }
        if p99:
            families["serve.window_latency_p99_ms"] = synthetic_gauge_family(
                p99, "rolling p99 admission-to-completion latency"
            )
        burns = [
            ({"tenant": tenant}, verdict["burn_rate"])
            for tenant, verdict in self.slo.verdicts().items()
        ]
        if burns:
            families["slo.burn_rate"] = synthetic_gauge_family(
                burns, "worst-window SLO budget burn, by tenant"
            )
        return families

    def openmetrics(self) -> str:
        """The OpenMetrics exposition for this server: the process
        registry (when instrumented — including everything merged from
        workers) plus the always-on windowed/SLO families."""
        merged = dict(OBS.registry.snapshot()) if OBS.enabled else {}
        for name, family in self._window_families().items():
            # The registry's own family (e.g. slo.burn_rate under
            # --metrics) wins over the synthetic twin.
            merged.setdefault(name, family)
        return render_openmetrics(merged)

    # -- batch helper --------------------------------------------------

    async def run_batch(
        self, requests: list[dict], max_shed_retries: int = 200
    ) -> list[dict]:
        """Submit many requests concurrently with client-side
        backpressure: a shed response waits ``retry_after_s`` and
        resubmits, so every job eventually gets a final answer.
        Results come back in input order."""

        async def one(raw: dict) -> dict:
            for _ in range(max_shed_retries):
                result = await self.submit(raw)
                if result["outcome"] != "shed":
                    return result
                await asyncio.sleep(result.get("retry_after_s", 0.05))
            return result

        return list(await asyncio.gather(*(one(raw) for raw in requests)))


def format_status(status: dict) -> str:
    """Render a :meth:`EncodingServer.status` snapshot as the
    plain-text screen `repro top` refreshes."""
    stats = status.get("stats", {})
    breaker = status.get("breaker", {})
    lines = [
        "repro serve — live status",
        (
            f"queue={status.get('queue_depth', 0)}"
            f" pool_gen={status.get('pool_generation', 0)}"
            f" breaker={breaker.get('state', '?')}"
            f" fails={breaker.get('consecutive_failures', 0)}"
        ),
        (
            f"jobs: accepted={stats.get('accepted', 0)}"
            f" completed={stats.get('completed', 0)}"
            f" shed={stats.get('shed', 0)}"
            f" retried={stats.get('retried', 0)}"
            f" errors={stats.get('errors', 0)}"
            f" deadline={stats.get('deadline_exceeded', 0)}"
            f" rebuilds={stats.get('pool_rebuilds', 0)}"
        ),
        "",
        "window   jobs      rate/s    err%      p50ms     p99ms",
    ]
    for label, data in (status.get("windows") or {}).items():
        latency = data.get("latency", {})
        p50 = latency.get("p50_ms")
        p99 = latency.get("p99_ms")
        lines.append(
            f"{label:<8} {data.get('jobs', 0):<9g}"
            f" {data.get('rate_per_s', 0.0):<9.3f}"
            f" {100.0 * data.get('error_rate', 0.0):<9.2f}"
            f" {'-' if p50 is None else format(p50, '<9.2f')}"
            f" {'-' if p99 is None else format(p99, '<9.2f')}"
        )
    slo = status.get("slo") or {}
    tenants = slo.get("tenants") or {}
    if tenants:
        lines.append("")
        lines.append("tenant        status   burn     1m-burn  5m-burn")
        for tenant, verdict in tenants.items():
            windows = verdict.get("windows", {})
            one_m = (windows.get("1m") or {}).get("burn_rate", 0.0)
            five_m = (windows.get("5m") or {}).get("burn_rate", 0.0)
            lines.append(
                f"{tenant:<13} {verdict.get('status', '?'):<8}"
                f" {verdict.get('burn_rate', 0.0):<8.3f}"
                f" {one_m:<8.3f} {five_m:<8.3f}"
            )
    flight = status.get("flight") or {}
    if flight:
        lines.append("")
        lines.append(
            f"flight: recorded={flight.get('events_recorded', 0)}"
            f" retained={flight.get('events_retained', 0)}"
            f" dumps={flight.get('dumps_written', 0)}"
        )
    return "\n".join(lines) + "\n"
