"""Fault-campaign coverage for mixed-scheme bundles.

The ``scheme_tag_corruption`` model rewrites the per-region scheme tag
of a deployed mixed bundle.  Strict mode must raise the typed
:class:`~repro.errors.SchemeTagError` (classified ``detected``);
recover and degraded modes must re-fetch the region from the golden
bundle and finish the trace bit-identically (``recovered``).  On a
classic single-scheme deployment the model has nothing to corrupt and
must report ``not-applicable`` rather than inventing work.
"""

import pytest

from repro.errors import ReproError, SchemeTagError
from repro.faults import MODELS_BY_NAME
from repro.faults.campaign import DeploymentTarget, run_case

from tests.strategies import rng_for

MODEL = MODELS_BY_NAME["scheme_tag_corruption"]
TRIALS = 6


@pytest.fixture(scope="module")
def mixed_target():
    """A real mixed-scheme deployment (selector over the fft workload);
    module-scoped because the selector run costs ~1.5s."""
    return DeploymentTarget.prepare_mixed("fft")


class TestTypedError:
    def test_scheme_tag_error_is_a_repro_error(self):
        assert issubclass(SchemeTagError, ReproError)


class TestMixedTarget:
    def test_target_carries_regions(self, mixed_target):
        assert mixed_target.name == "fft-mixed"
        assert mixed_target.regions
        assert all("scheme" in region for region in mixed_target.regions)

    def test_injection_rewrites_one_region_tag(self, mixed_target):
        state = mixed_target.materialise()
        record = MODEL.inject(state, rng_for("tag-inject", 0))
        assert record.applicable
        assert record.detail["tag"] == MODEL.BOGUS_TAG
        corrupted = {
            pc
            for pc, tag in state.region_schemes.items()
            if tag == MODEL.BOGUS_TAG
        }
        assert len(corrupted) == record.detail["addresses"]
        assert record.detail["first_pc"] == min(corrupted)

    def test_strict_detects_every_trial(self, mixed_target):
        for i in range(TRIALS):
            result = run_case(mixed_target, MODEL, f"tag:strict:{i}", "strict")
            assert result.outcome == "detected", (i, result.outcome)

    @pytest.mark.parametrize("mode", ["recover", "degraded"])
    def test_recover_modes_recover_every_trial(self, mixed_target, mode):
        for i in range(TRIALS):
            result = run_case(mixed_target, MODEL, f"tag:{mode}:{i}", mode)
            assert result.outcome == "recovered", (mode, i, result.outcome)

    def test_case_is_deterministic(self, mixed_target):
        a = run_case(mixed_target, MODEL, "tag:det", "strict")
        b = run_case(mixed_target, MODEL, "tag:det", "strict")
        assert (a.outcome, a.detail) == (b.outcome, b.detail)


class TestClassicTargetNotApplicable:
    def test_no_regions_means_not_applicable(self):
        # Reuse the synthetic classic target from the campaign tests.
        from tests.faults.test_campaign import _synthetic_target

        target = _synthetic_target()
        for mode in ("strict", "recover", "degraded"):
            result = run_case(target, MODEL, f"tag:na:{mode}", mode)
            assert result.outcome == "not-applicable", mode
