"""Limited-weight code bus encoding with transition signalling.

After Valentini & Chiani, *Practical Low-Weight Codes for
Energy-Efficient Bus Encoding* (arXiv:2606.14203): map each k-bit
information chunk onto an n-bit codeword of Hamming weight at most m
(an "m-out-of-n-or-less" code), then apply transition signalling —
the bus drives the XOR of the previous driven value and the codeword,
so the number of toggles per transfer *is* the codeword weight.  With
k=4, n=5, m=2 there are exactly C(5,0)+C(5,1)+C(5,2) = 16 codewords,
enough for every chunk value, bounding a 32-bit word (8 chunks, 40
driven lines) at 16 toggles per transfer where the raw bus allows 32.

We encode the *difference* ``d_t = w_t ^ w_{t-1}`` rather than the
word itself, so an unchanged word costs zero toggles, and ``fit``
ranks each chunk position's difference values by dynamic frequency so
the most frequent difference gets the weight-0 codeword — the
application-specific half of the scheme.  The decoder XORs consecutive
driven values to recover the codeword, inverts the per-position table,
and XOR-accumulates the differences; it needs the previous transfer,
so the scheme is a bus codec, not an image-deployable recoder.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence

from repro.baselines.protocol import (
    EncodedStream,
    Encoder,
    HardwareBudget,
    register_encoder,
    register_reference_counter,
)
from repro.errors import EncodingError

CHUNK_WIDTH = 4
CODE_WIDTH = 5
MAX_CODEWORD_WEIGHT = 2

#: the 16 codewords of weight <= 2 over 5 lines, in (weight, value)
#: order so rank r gets the r-th cheapest codeword.  The verify
#: campaign's mutation self-test corrupts this table.
CODEWORDS: List[int] = sorted(
    (c for c in range(1 << CODE_WIDTH) if c.bit_count() <= MAX_CODEWORD_WEIGHT),
    key=lambda c: (c.bit_count(), c),
)


@register_encoder
class LowWeightCodeEncoder(Encoder):
    """m-out-of-n limited-weight codewords + transition signalling."""

    scheme = "low-weight"
    deployable = False

    def __init__(self, width: int = 32) -> None:
        if width % CHUNK_WIDTH != 0:
            raise EncodingError(
                f"width {width} is not a multiple of chunk width {CHUNK_WIDTH}"
            )
        self.width = width
        self._mask = (1 << width) - 1
        self.num_chunks = width // CHUNK_WIDTH
        self.code_width = CODE_WIDTH
        size = 1 << CHUNK_WIDTH
        if len(set(CODEWORDS)) < size:
            raise EncodingError("low-weight codeword table is too small")
        # identity ranking until fitted: difference value v -> codeword
        # CODEWORDS[v], keeping d=0 on the weight-0 codeword.
        self._tables: list[list[int]] = [
            [CODEWORDS[v] for v in range(size)] for _ in range(self.num_chunks)
        ]
        self._rebuild_inverse()

    def _rebuild_inverse(self) -> None:
        self._inverse: list[Dict[int, int]] = []
        for table in self._tables:
            inverse: Dict[int, int] = {}
            for value, code in enumerate(table):
                inverse[code] = value
            self._inverse.append(inverse)

    @property
    def max_weight_per_transfer(self) -> int:
        return self.num_chunks * MAX_CODEWORD_WEIGHT

    def _chunks(self, word: int) -> list[int]:
        mask = (1 << CHUNK_WIDTH) - 1
        return [
            (word >> (pos * CHUNK_WIDTH)) & mask for pos in range(self.num_chunks)
        ]

    def _differences(self, words: Sequence[int]) -> list[int]:
        prev = 0
        diffs = []
        for word in words:
            word &= self._mask
            diffs.append(word ^ prev)
            prev = word
        return diffs

    def fit(self, words: Sequence[int]) -> "LowWeightCodeEncoder":
        # steady-state differences only: the first transfer is free
        # under the shared convention, so d_0 = w_0 would skew ranks.
        diffs = self._differences(words)[1:]
        size = 1 << CHUNK_WIDTH
        for pos in range(self.num_chunks):
            counts = Counter(self._chunks(d)[pos] for d in diffs)
            ranked = sorted(range(size), key=lambda v: (-counts[v], v))
            table = [0] * size
            for rank, value in enumerate(ranked):
                table[value] = CODEWORDS[rank]
            self._tables[pos] = table
        self._rebuild_inverse()
        return self

    def _codeword(self, diff: int) -> int:
        out = 0
        for pos, chunk in enumerate(self._chunks(diff)):
            out |= self._tables[pos][chunk] << (pos * CODE_WIDTH)
        return out

    def encode(self, words: Sequence[int]) -> EncodedStream:
        stream = EncodedStream(self.scheme, self.num_chunks * CODE_WIDTH)
        driven = 0
        for diff in self._differences(words):
            driven ^= self._codeword(diff)
            stream.driven.append(driven)
        return stream

    def decode(self, stream: EncodedStream) -> list[int]:
        out: list[int] = []
        prev_driven = 0
        word = 0
        code_mask = (1 << CODE_WIDTH) - 1
        for driven in stream.driven:
            codeword = driven ^ prev_driven
            diff = 0
            for pos in range(self.num_chunks):
                code = (codeword >> (pos * CODE_WIDTH)) & code_mask
                try:
                    value = self._inverse[pos][code]
                except KeyError:
                    raise EncodingError(
                        f"invalid low-weight codeword {code:#07b} at chunk {pos}"
                    ) from None
                diff |= value << (pos * CHUNK_WIDTH)
            word ^= diff
            out.append(word)
            prev_driven = driven
        return out

    def budget(self) -> HardwareBudget:
        size = 1 << CHUNK_WIDTH
        return HardwareBudget(
            table_bits=self.num_chunks * size * (CODE_WIDTH + CHUNK_WIDTH),
            extra_lines=self.num_chunks * CODE_WIDTH - self.width,
            stateful=True,
        )

    def to_config(self) -> dict:
        return {"width": self.width, "tables": [list(t) for t in self._tables]}

    @classmethod
    def from_config(cls, config: dict) -> "LowWeightCodeEncoder":
        enc = cls(width=int(config.get("width", 32)))
        tables = config.get("tables")
        if tables is not None:
            if len(tables) != enc.num_chunks:
                raise EncodingError("low-weight config has wrong chunk count")
            enc._tables = [[int(c) for c in table] for table in tables]
            enc._rebuild_inverse()
        return enc


@register_reference_counter("low-weight")
def _lowweight_reference(encoder: Encoder, words: Sequence[int]) -> int:
    """Transition signalling means toggles-per-transfer equals the
    codeword weight of the difference — count weights directly from
    the words without building the driven stream."""
    total = 0
    prev = None
    for word in words:
        word &= encoder._mask
        if prev is not None:
            total += encoder._codeword(word ^ prev).bit_count()
        prev = word
    return total
