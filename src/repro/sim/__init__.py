"""In-order functional processor simulator (SimpleScalar substitute).

``memory`` is a paged byte-addressable store, ``cpu`` an in-order
one-instruction-at-a-time interpreter matching the paper's baseline
("a typical embedded processor front-end, which fetches and executes
instructions in order and one at a time"), ``tracer`` captures the
fetch address stream, and ``bus`` turns fetch traces plus memory
images into bit-transition and energy numbers.
"""

from repro.sim.memory import Memory
from repro.sim.cpu import Cpu, CpuError, run_program
from repro.sim.tracer import FetchTrace
from repro.sim.bus import BusModel, count_trace_transitions

__all__ = [
    "Memory",
    "Cpu",
    "CpuError",
    "run_program",
    "FetchTrace",
    "BusModel",
    "count_trace_transitions",
]
