"""Figure 6: transition-reduction results for the six benchmarks.

Paper (SimpleScalar, compiled C, 100x100 .. 256x256 data):

            mmul   sor     ej   fft   tri    lu
  #TR       14.0   3.3  113.4   0.2   8.1  63.8   (millions)
  k=4 red%  44.0  44.3   45.5  20.6  51.6  32.7
  k=5 red%  39.2  30.5   38.8  17.5  37.8  23.6
  k=6 red%  26.7  35.3   38.7  13.4  31.1  19.1
  k=7 red%  28.5  20.1   23.1   0.0  24.4   9.4

Ours (hand assembly, scaled data — DESIGN.md documents the
substitution).  Absolute counts necessarily differ; the shape targets:

* every benchmark improves at every block size (identity fallback);
* reductions fall as block size grows (averaged across benchmarks);
* the k=4/5 averages sit in the paper's 35-55% band and the k=6/7
  averages land lower;
* the hardware decode restores the instruction stream bit-exactly.
"""

import pytest

from repro.pipeline.report import fig6_table, format_fig6, summarize_results
from repro.workloads.registry import BENCHMARK_ORDER


def test_fig6_benchmarks(benchmark, figure6_results, record_result):
    results, _traces = figure6_results

    def _tabulate():
        return fig6_table(results, BENCHMARK_ORDER)

    table = benchmark.pedantic(_tabulate, rounds=1, iterations=1)

    # Every (benchmark, block size) point improves and was verified
    # through the behavioural fetch decoder.
    for name in BENCHMARK_ORDER:
        for k in (4, 5, 6, 7):
            result = results[name][k]
            assert result.decode_verified, (name, k)
            assert 0.0 < result.reduction_percent < 100.0, (name, k)
            assert result.tt_entries_used <= result.tt_capacity

    averages = summarize_results(results)
    # Reductions fall with block size on average (Figure 6's headline).
    assert averages[4] > averages[5] > averages[6]
    assert averages[4] > averages[7]
    # k=4/5 land in (or above) the paper's 35-55% band; k=6/7 lower.
    assert 35.0 < averages[4] < 70.0
    assert 30.0 < averages[5] < 65.0
    assert averages[7] < averages[4] - 10.0

    text = format_fig6(table)
    text += "\n\naverages: " + "  ".join(
        f"k={k}: {v:.1f}%" for k, v in sorted(averages.items())
    )
    record_result("fig6_benchmarks", text)


def test_fig6_tr_magnitudes(figure6_results):
    """The paper's #TR row spans two orders of magnitude with fft the
    smallest trace by far; the scaled reproduction keeps that shape."""
    results, _ = figure6_results
    tr = {
        name: results[name][5].baseline_transitions
        for name in BENCHMARK_ORDER
    }
    assert min(tr, key=tr.get) == "fft"
    assert max(tr.values()) > 5 * tr["fft"]


@pytest.mark.parametrize("name", BENCHMARK_ORDER)
def test_fig6_per_benchmark_block_size_trend(figure6_results, name):
    """Per benchmark, k=4 beats k=6 and k=7 (true for every paper
    column; k=5 vs k=7 is occasionally non-monotonic there too)."""
    results, _ = figure6_results
    per = results[name]
    assert per[4].reduction_percent > per[6].reduction_percent or (
        per[4].reduction_percent > per[7].reduction_percent
    )
