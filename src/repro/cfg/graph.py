"""Control-flow graph built on networkx."""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.cfg.basic_blocks import BasicBlock, build_basic_blocks
from repro.isa.assembler import Program


@dataclass
class ControlFlowGraph:
    """A program's CFG: blocks keyed by start address + a digraph."""

    program: Program
    blocks: dict[int, BasicBlock]
    graph: nx.DiGraph
    entry: int

    @classmethod
    def build(cls, program: Program) -> "ControlFlowGraph":
        blocks = build_basic_blocks(program)
        graph = nx.DiGraph()
        graph.add_nodes_from(blocks)
        for start, block in blocks.items():
            for successor in block.successors:
                graph.add_edge(start, successor)
        entry = program.entry if program.entry in blocks else program.text_base
        return cls(program=program, blocks=blocks, graph=graph, entry=entry)

    def block_of(self, address: int) -> BasicBlock:
        """The basic block containing an instruction address."""
        starts = sorted(self.blocks)
        lo, hi = 0, len(starts) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            block = self.blocks[starts[mid]]
            if address < block.start:
                hi = mid - 1
            elif address >= block.end:
                lo = mid + 1
            else:
                return block
        raise KeyError(f"address {address:#010x} not in any block")

    def reachable_blocks(self) -> set[int]:
        """Blocks reachable from the entry through static edges."""
        if self.entry not in self.graph:
            return set()
        return set(nx.descendants(self.graph, self.entry)) | {self.entry}

    def successors(self, start: int) -> list[int]:
        return list(self.graph.successors(start))

    def predecessors(self, start: int) -> list[int]:
        return list(self.graph.predecessors(start))

    def __len__(self) -> int:
        return len(self.blocks)
