"""Basic-block construction from an assembled program.

Classic leader analysis: the entry, every branch/jump target, and
every instruction following a control transfer start a block; a block
ends at a control transfer or just before the next leader.  The power
encoding "cannot span through basic block boundaries" (Section 7.1),
so these blocks are exactly the units the encoder works on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.assembler import Program
from repro.isa.instruction import Instruction
from repro.isa.opcodes import CONDITIONAL_BRANCHES, CONTROL_TRANSFER


@dataclass
class BasicBlock:
    """A maximal straight-line instruction sequence."""

    start: int  # address of the first instruction
    instructions: list[Instruction]
    words: list[int]
    successors: list[int] = field(default_factory=list)
    has_indirect_successor: bool = False  # jr/jalr: targets unknown

    @property
    def end(self) -> int:
        """Address one past the last instruction."""
        return self.start + 4 * len(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def addresses(self) -> range:
        return range(self.start, self.end, 4)

    @property
    def terminator(self) -> Instruction | None:
        return self.instructions[-1] if self.instructions else None

    def __repr__(self) -> str:
        return (
            f"BasicBlock({self.start:#010x}..{self.end:#010x}, "
            f"{len(self)} instructions)"
        )


def _branch_target(inst: Instruction, address: int) -> int:
    return address + 4 + 4 * inst.simm


def _jump_target(inst: Instruction) -> int:
    return inst.get("target") << 2


def find_leaders(program: Program) -> set[int]:
    """Addresses that begin basic blocks."""
    leaders = {program.text_base, program.entry}
    for i, inst in enumerate(program.instructions):
        address = program.text_base + 4 * i
        name = inst.name
        if name in ("beq", "bne", "blez", "bgtz", "bltz", "bgez", "bc1f", "bc1t"):
            leaders.add(_branch_target(inst, address))
            leaders.add(address + 4)
        elif name in ("j", "jal"):
            leaders.add(_jump_target(inst))
            leaders.add(address + 4)
        elif name in ("jr", "jalr", "syscall"):
            leaders.add(address + 4)
    end = program.text_end
    return {a for a in leaders if program.text_base <= a < end}


def build_basic_blocks(program: Program) -> dict[int, BasicBlock]:
    """Partition the text section into basic blocks, keyed by start
    address, with static successor edges filled in."""
    leaders = sorted(find_leaders(program))
    boundaries = leaders + [program.text_end]
    blocks: dict[int, BasicBlock] = {}
    for start, next_start in zip(boundaries, boundaries[1:]):
        lo = program.index_of(start)
        hi = (next_start - program.text_base) // 4
        block = BasicBlock(
            start=start,
            instructions=program.instructions[lo:hi],
            words=program.words[lo:hi],
        )
        blocks[start] = block

    for block in blocks.values():
        terminator = block.terminator
        if terminator is None:
            continue
        name = terminator.name
        last_address = block.end - 4
        fallthrough = block.end
        if name in CONDITIONAL_BRANCHES:
            block.successors.append(_branch_target(terminator, last_address))
            if fallthrough < program.text_end:
                block.successors.append(fallthrough)
        elif name == "j":
            block.successors.append(_jump_target(terminator))
        elif name == "jal":
            # Calls return; model the call edge and the return-site
            # fall-through (the conventional CFG contraction).
            block.successors.append(_jump_target(terminator))
            if fallthrough < program.text_end:
                block.successors.append(fallthrough)
        elif name in ("jr", "jalr"):
            block.has_indirect_successor = True
        elif name not in CONTROL_TRANSFER:
            if fallthrough < program.text_end:
                block.successors.append(fallthrough)
        elif name == "syscall":
            if fallthrough < program.text_end:
                block.successors.append(fallthrough)
        block.successors = [
            s for s in block.successors if s in blocks
        ]
    return blocks
