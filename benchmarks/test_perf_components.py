"""Component performance benchmarks (throughput, not paper figures).

These keep the library honest as an engineering artefact: encoder
throughput on long streams, vertical block encoding, the behavioural
fetch decoder, and the CPU interpreter.  pytest-benchmark measures
them with real repetition (unlike the figure benches, which run their
workload once and assert shapes).
"""

import random

from repro.core.program_codec import encode_basic_block
from repro.core.stream_codec import StreamEncoder
from repro.hw.bbit import BasicBlockIdentificationTable, BBITEntry
from repro.hw.fetch_decoder import FetchDecoder
from repro.hw.tt import TransformationTable
from repro.isa.assembler import assemble
from repro.sim.cpu import Cpu

_rng = random.Random(1234)
STREAM = [_rng.randint(0, 1) for _ in range(5000)]
WORDS = [_rng.getrandbits(32) for _ in range(64)]

COUNT_LOOP = assemble(
    """
    .text
    main: li $t0, 20000
    loop: addiu $t0, $t0, -1
    bnez $t0, loop
    li $v0, 10
    syscall
    """
)


def test_perf_stream_encoder_greedy(benchmark):
    encoder = StreamEncoder(5, strategy="greedy")
    result = benchmark(encoder.encode, STREAM)
    assert result.encoded_transitions < result.original_transitions


def test_perf_stream_encoder_greedy_reference(benchmark):
    encoder = StreamEncoder(5, strategy="greedy", use_codebook=False)
    result = benchmark(encoder.encode, STREAM)
    assert result.encoded_transitions < result.original_transitions


def test_perf_stream_encoder_optimal(benchmark):
    encoder = StreamEncoder(5, strategy="optimal")
    result = benchmark(encoder.encode, STREAM)
    assert result.encoded_transitions < result.original_transitions


def test_perf_stream_encoder_optimal_reference(benchmark):
    encoder = StreamEncoder(5, strategy="optimal", use_codebook=False)
    result = benchmark(encoder.encode, STREAM)
    assert result.encoded_transitions < result.original_transitions


def test_perf_encode_basic_block(benchmark):
    encoding = benchmark(encode_basic_block, WORDS, 5)
    assert encoding.num_segments == len(encoding.bounds)


def test_perf_encode_basic_block_reference(benchmark):
    encoding = benchmark(encode_basic_block, WORDS, 5, use_codebook=False)
    assert encoding.num_segments == len(encoding.bounds)


def test_perf_fetch_decoder(benchmark):
    encoding = encode_basic_block(WORDS, 5)
    tt = TransformationTable(32)
    bbit = BasicBlockIdentificationTable(4)
    base = tt.allocate(encoding)
    bbit.install(BBITEntry(pc=0x400000, tt_index=base, num_instructions=len(WORDS)))
    addresses = [0x400000 + 4 * i for i in range(len(WORDS))] * 16
    stored = {0x400000 + 4 * i: w for i, w in enumerate(encoding.encoded_words)}

    def _decode():
        decoder = FetchDecoder(tt, bbit, 5)
        return decoder.decode_trace(addresses, stored.__getitem__)

    decoded = benchmark(_decode)
    assert decoded[: len(WORDS)] == list(WORDS)


def test_perf_cpu_interpreter(benchmark):
    def _run():
        cpu = Cpu(COUNT_LOOP)
        cpu.run()
        return cpu.steps

    steps = benchmark(_run)
    # li + 20000 x (addiu + bnez) + li $v0 + syscall
    assert steps == 1 + 2 * 20000 + 2
