"""T0 address-bus encoding (Benini et al., GLS-VLSI 1997) — reference [2].

Instruction addresses are mostly sequential.  T0 adds one redundant
*increment* line: when the new address equals the previous address
plus the fetch stride, the bus is frozen (zero transitions) and the
increment line is asserted; otherwise the raw address is driven.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass
class T0Coder:
    """Stateful T0 encoder for an address bus."""

    width: int = 32
    stride: int = 4  # instruction word size

    def __post_init__(self) -> None:
        self._mask = (1 << self.width) - 1
        self.reset()

    def reset(self, initial_address: int = 0) -> None:
        self._bus = initial_address & self._mask
        self._expected = (initial_address + self.stride) & self._mask
        self._inc_line = 0
        self.transitions = 0
        self.transfers = 0
        self.frozen_transfers = 0

    def send(self, address: int) -> tuple[int, int]:
        """Encode one address; returns (bus value, increment bit)."""
        address &= self._mask
        if address == self._expected:
            inc = 1
            driven = self._bus  # bus frozen
            self.frozen_transfers += 1
        else:
            inc = 0
            driven = address
        self.transitions += (driven ^ self._bus).bit_count()
        self.transitions += inc ^ self._inc_line
        self._bus = driven
        self._inc_line = inc
        self._expected = (address + self.stride) & self._mask
        self.transfers += 1
        return driven, inc

    def send_all(self, addresses: Iterable[int]) -> int:
        for address in addresses:
            self.send(address)
        return self.transitions


def t0_transitions(addresses: Sequence[int], width: int = 32, stride: int = 4) -> int:
    """Total transitions for an address stream under T0."""
    if not addresses:
        return 0
    coder = T0Coder(width, stride)
    coder.reset(initial_address=addresses[0])
    coder.send_all(addresses[1:])
    return coder.transitions


def raw_address_transitions(addresses: Sequence[int]) -> int:
    """Unencoded address-bus transitions (the T0 baseline's baseline)."""
    return sum(
        (a ^ b).bit_count() for a, b in zip(addresses, addresses[1:])
    )


from repro.baselines.protocol import (  # noqa: E402  (adapter after legacy API)
    EncodedStream,
    Encoder,
    HardwareBudget,
    register_encoder,
    register_reference_counter,
)


@register_encoder
class T0Encoder(Encoder):
    """:class:`T0Coder` behind the common Encoder protocol.

    The increment line is packed into bit ``width`` of each driven
    value.  Decoding is a stateful walk: when the increment bit is set
    the receiver regenerates ``previous + stride`` locally, otherwise
    it takes the driven value verbatim.
    """

    scheme = "t0"
    deployable = False

    def __init__(self, width: int = 32, stride: int = 4) -> None:
        self.width = width
        self.stride = stride
        self._mask = (1 << width) - 1

    def encode(self, words: Sequence[int]) -> EncodedStream:
        stream = EncodedStream(self.scheme, self.width + 1)
        if not words:
            return stream
        coder = T0Coder(self.width, self.stride)
        coder.reset(initial_address=words[0])
        stream.driven.append(words[0] & self._mask)
        for word in words[1:]:
            driven, inc = coder.send(word)
            stream.driven.append((inc << self.width) | driven)
        return stream

    def decode(self, stream: EncodedStream) -> list[int]:
        out: list[int] = []
        for packed in stream.driven:
            if not out:
                out.append(packed & self._mask)
                continue
            inc = (packed >> self.width) & 1
            if inc:
                out.append((out[-1] + self.stride) & self._mask)
            else:
                out.append(packed & self._mask)
        return out

    def to_config(self) -> dict:
        return {"width": self.width, "stride": self.stride}

    @classmethod
    def from_config(cls, config: dict) -> "T0Encoder":
        return cls(
            width=int(config.get("width", 32)), stride=int(config.get("stride", 4))
        )

    def budget(self) -> HardwareBudget:
        return HardwareBudget(table_bits=0, extra_lines=1, stateful=True)


@register_reference_counter("t0")
def _t0_reference(encoder: Encoder, words: Sequence[int]) -> int:
    return t0_transitions(list(words), encoder.width, getattr(encoder, "stride", 4))
