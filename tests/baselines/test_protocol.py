"""The common Encoder protocol, across every registered backend."""

import pytest
from hypothesis import given, settings

from repro.baselines.protocol import (
    ENCODER_REGISTRY,
    HardwareBudget,
    encoder_from_config,
    make_encoder,
    reference_transitions,
    registered_schemes,
)
from repro.errors import EncodingError

from tests.strategies import fetch_word_streams

MASK32 = (1 << 32) - 1


class TestRegistry:
    def test_all_six_backends_registered(self):
        assert registered_schemes() == (
            "bus-invert",
            "frequency",
            "gray",
            "low-weight",
            "memoryless",
            "t0",
        )

    def test_make_encoder_rejects_unknown_scheme(self):
        with pytest.raises(EncodingError):
            make_encoder("nope")

    def test_registry_maps_scheme_to_class(self):
        for scheme, cls in ENCODER_REGISTRY.items():
            assert cls.scheme == scheme


@pytest.mark.parametrize("scheme", registered_schemes())
class TestProtocolContract:
    def test_roundtrip_on_seeded_stream(self, scheme, seeded_hot_words):
        words = seeded_hot_words(f"proto:{scheme}", 120)
        encoder = make_encoder(scheme).fit(words)
        assert encoder.decode(encoder.encode(words)) == [
            w & MASK32 for w in words
        ]

    def test_fast_count_matches_reference(self, scheme, seeded_hot_words):
        words = seeded_hot_words(f"ref:{scheme}", 90)
        encoder = make_encoder(scheme).fit(words)
        assert encoder.encode(words).transitions() == reference_transitions(
            encoder, words
        )

    def test_config_digest_is_deterministic_and_rebuildable(
        self, scheme, seeded_hot_words
    ):
        words = seeded_hot_words(f"digest:{scheme}", 70)
        a = make_encoder(scheme).fit(words)
        b = make_encoder(scheme).fit(words)
        assert a.config_digest() == b.config_digest()
        assert len(a.config_digest()) == 64
        rebuilt = encoder_from_config(scheme, a.to_config())
        assert rebuilt.config_digest() == a.config_digest()
        assert rebuilt.encode(words).driven == a.encode(words).driven

    def test_budget_metadata_shape(self, scheme):
        budget = make_encoder(scheme).budget()
        assert isinstance(budget, HardwareBudget)
        assert budget.table_bits >= 0
        assert budget.extra_lines >= 0

    def test_empty_and_single_word_streams(self, scheme):
        encoder = make_encoder(scheme).fit([])
        assert encoder.decode(encoder.encode([])) == []
        # The first transfer of any stream is free under the shared
        # convention, so a single word costs zero transitions.
        single = make_encoder(scheme).fit([0xCAFEF00D])
        stream = single.encode([0xCAFEF00D])
        assert stream.transitions() == 0
        assert single.decode(stream) == [0xCAFEF00D]

    def test_deployable_split(self, scheme, seeded_hot_words):
        """Deployable recoders decode per word with no history; bus
        codecs refuse the per-word API (their state lives on the bus)."""
        words = seeded_hot_words(f"deploy:{scheme}", 50)
        encoder = make_encoder(scheme).fit(words)
        if encoder.deployable:
            stream = encoder.encode(words)
            assert [
                encoder.decode_word(w) for w in stream.driven
            ] == [w & MASK32 for w in words]
        else:
            with pytest.raises(EncodingError):
                encoder.encode_word(0)


class TestBudgetFits:
    def test_fits_enforces_both_axes(self):
        budget = HardwareBudget(table_bits=1024, extra_lines=2, stateful=True)
        assert budget.fits(max_table_bits=1024, max_extra_lines=2)
        assert not budget.fits(max_table_bits=1023, max_extra_lines=2)
        assert not budget.fits(max_table_bits=1024, max_extra_lines=1)


@given(fetch_word_streams(max_length=60))
@settings(max_examples=40, deadline=None)
def test_every_backend_roundtrips_any_fetch_stream(words):
    expected = [w & MASK32 for w in words]
    for scheme in registered_schemes():
        encoder = make_encoder(scheme).fit(words)
        assert encoder.decode(encoder.encode(words)) == expected, scheme
