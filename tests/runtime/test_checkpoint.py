"""CheckpointLog / atomic_write_text tests: WAL replay, run-key
mismatch, torn-line tolerance, and crash-safe artifact writes."""

import json
import os

import pytest

from repro.runtime import CheckpointLog, atomic_write_text
from repro.runtime.checkpoint import CheckpointMismatchError


class TestAtomicWriteText:
    def test_writes_content(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_text(target, '{"ok": true}\n')
        assert target.read_text() == '{"ok": true}\n'

    def test_replaces_existing_file(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "out.txt"
        atomic_write_text(target, "deep")
        assert target.read_text() == "deep"

    def test_no_temp_file_left_behind(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "x")
        assert os.listdir(tmp_path) == ["out.txt"]


class TestCheckpointLog:
    def test_record_then_replay(self, tmp_path):
        path = tmp_path / "run.wal"
        with CheckpointLog(path, run_key="k1") as log:
            log.record("case-a", {"outcome": "detected"})
            log.record("case-b", {"outcome": "masked"})
        replay = CheckpointLog(path, run_key="k1")
        completed = replay.load()
        assert completed == {
            "case-a": {"outcome": "detected"},
            "case-b": {"outcome": "masked"},
        }
        assert "case-a" in replay and "case-c" not in replay

    def test_result_dicts_roundtrip_key_order(self, tmp_path):
        # Byte-identical resume relies on the WAL preserving the
        # caller's key order, not canonicalising it.
        path = tmp_path / "run.wal"
        record = {"z": 1, "a": {"nested_z": 2, "nested_a": 3}}
        with CheckpointLog(path, run_key="k") as log:
            log.record("case", record)
        loaded = CheckpointLog(path, run_key="k").load()["case"]
        assert json.dumps(loaded) == json.dumps(record)

    def test_missing_file_loads_empty(self, tmp_path):
        log = CheckpointLog(tmp_path / "absent.wal", run_key="k")
        assert log.load() == {}

    def test_run_key_mismatch_refuses(self, tmp_path):
        path = tmp_path / "run.wal"
        with CheckpointLog(path, run_key="old-config") as log:
            log.record("case", {})
        with pytest.raises(CheckpointMismatchError, match="old-config"):
            CheckpointLog(path, run_key="new-config").load()

    def test_torn_trailing_line_ignored(self, tmp_path):
        path = tmp_path / "run.wal"
        with CheckpointLog(path, run_key="k") as log:
            log.record("done", {"outcome": "masked"})
        with path.open("a") as handle:
            handle.write('{"key": "torn", "resu')  # killed mid-append
        completed = CheckpointLog(path, run_key="k").load()
        assert completed == {"done": {"outcome": "masked"}}

    def test_append_after_resume_continues_log(self, tmp_path):
        path = tmp_path / "run.wal"
        with CheckpointLog(path, run_key="k") as log:
            log.record("first", {})
        with CheckpointLog(path, run_key="k") as log:
            log.load()
            log.record("second", {})
        completed = CheckpointLog(path, run_key="k").load()
        assert set(completed) == {"first", "second"}
        # Exactly one header line.
        lines = path.read_text().strip().splitlines()
        assert sum(1 for l in lines if "run_key" in l) == 1

    def test_appends_survive_without_close(self, tmp_path):
        # fsync-per-append: the record is on disk even if the process
        # is killed before close() runs.
        path = tmp_path / "run.wal"
        log = CheckpointLog(path, run_key="k")
        log.record("durable", {"outcome": "detected"})
        completed = CheckpointLog(path, run_key="k").load()
        assert "durable" in completed
        log.close()
