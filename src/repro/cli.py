"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the paper's artefacts:

=============  =====================================================
command        what it prints
=============  =====================================================
``codebook``   a Figure-2/4 style optimal codebook for a block size
``theory``     the Figure-3 TTN/RTN/improvement table
``streams``    the Section-6 random-stream experiment
``encode``     the full flow on one named benchmark (Figure-6 cell)
``suite``      the whole Figure-6 table + Figure-7 chart
``compile``    compile a minicc kernel, run it, encode its hot loops
``cost``       the Section-7.2 hardware cost table
``bench``      codec throughput (fast path vs reference solver),
               written to BENCH_codec.json
``faults``     the fault-injection campaign: per-model detection and
               recovery rates, written to FAULTS_report.json
               (``--wal``/``--resume`` checkpoint and resume the sweep)
``experiment`` the parameter-sweep grid (workloads x block sizes x TT
               capacities x strategies) as CSV, also resumable
``metrics``    metric families from a RUN_report.json (``--check``
               gates on the expected encode families, or the serve
               families with ``--expect serve``)
``trace``      span timings from a RUN_report.json (``--top N``)
``verify``     the differential verification campaign: seeded inputs
               through every decode path plus exhaustive sweeps,
               written to VERIFY_report.json (``--check`` gates on
               zero mismatches and 100% gated coverage;
               ``--replay`` reproduces a recorded counterexample)
``serve``      the fault-tolerant async encoding service:
               ``--selftest`` runs the seeded chaos/load harness
               (SERVE_report.json + BENCH_serve.json), ``--jobs``
               serves a batch file; ``--wal``/``--resume`` make a
               SIGKILLed run replay to byte-identical results
=============  =====================================================

``encode``, ``faults``, ``verify`` and ``serve`` accept ``--metrics``:
the run is executed with the observability layer on and a
machine-readable snapshot (metrics + spans + provenance) is written to
``RUN_report.json`` (``verify`` and ``serve`` name it ``--run-report``,
since their ``--report`` is the campaign report itself).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.workloads.registry import BENCHMARK_ORDER, EXTENDED_WORKLOADS

#: Everything ``repro encode`` accepts: the Figure-6 benchmarks plus
#: the extended kernels (``fir`` & co.) the fault campaign deploys.
ENCODABLE_WORKLOADS = BENCHMARK_ORDER + EXTENDED_WORKLOADS


def _obs_begin(args: argparse.Namespace) -> bool:
    """Flip the observability layer on when ``--metrics`` was given."""
    if not getattr(args, "metrics", False):
        return False
    from repro import obs

    obs.reset()
    obs.enable(jsonl_path=args.trace_jsonl)
    return True


def _obs_finish(
    args: argparse.Namespace, command: str, seed: int | None = None
) -> None:
    """Snapshot the enabled observability state into ``args.report``."""
    from repro import obs

    report = obs.collect_report(command=command, seed=seed)
    path = report.write(args.report)
    obs.OBS.tracer.close_jsonl()
    print(f"wrote {path}")


def _cmd_codebook(args: argparse.Namespace) -> int:
    from repro.core.codebook import build_codebook
    from repro.core.transformations import ALL_TRANSFORMATIONS, OPTIMAL_SET

    transformations = ALL_TRANSFORMATIONS if args.full else OPTIMAL_SET
    book = build_codebook(args.block_size, transformations)
    print(book.format_table())
    print(
        f"\nTTN = {book.total_transitions}, RTN = {book.reduced_transitions}, "
        f"improvement = {book.improvement_percent:.1f}%"
    )
    return 0


def _cmd_theory(args: argparse.Namespace) -> int:
    from repro.core.theory import format_theory_table, theory_table

    rows = theory_table(tuple(args.sizes))
    print(format_theory_table(rows))
    return 0


def _cmd_streams(args: argparse.Namespace) -> int:
    from repro.core.analysis import random_streams, summarize_streams

    streams = random_streams(args.count, args.length, seed=args.seed)
    summary = summarize_streams(streams, args.block_size, strategy=args.strategy)
    print(
        f"{args.count} x {args.length}-bit uniform streams, "
        f"k={args.block_size}, {args.strategy} strategy"
    )
    print(
        f"pooled reduction {summary.reduction_percent:.2f}% "
        f"(mean {summary.mean_percent:.2f}%, "
        f"stdev {summary.stdev_percent:.2f}%)"
    )
    return 0


def _cmd_encode(args: argparse.Namespace) -> int:
    import hashlib

    from repro.obs import OBS
    from repro.pipeline.bundle import EncodingBundle
    from repro.pipeline.flow import EncodingFlow
    from repro.sim.cpu import run_program
    from repro.workloads.registry import build_workload

    name = args.workload_opt or args.workload
    if name is None:
        print(
            "encode: a workload is required (positional or --workload)",
            file=sys.stderr,
        )
        return 2
    if (
        args.workload_opt
        and args.workload
        and args.workload_opt != args.workload
    ):
        print(
            f"encode: conflicting workloads {args.workload!r} and "
            f"--workload {args.workload_opt!r}",
            file=sys.stderr,
        )
        return 2
    observed = _obs_begin(args)
    workload = build_workload(name)
    program = workload.assemble()
    with OBS.tracer.span("flow.simulate", workload=workload.name):
        cpu, trace = run_program(program)
        if workload.verify is not None:
            workload.verify(cpu)
    if args.select_per_region:
        code = _encode_select_per_region(args, workload, program, trace)
        if observed:
            _obs_finish(args, command=f"repro encode {name} --select-per-region")
        return code
    flow = EncodingFlow(
        block_size=args.block_size,
        tt_capacity=args.tt_entries,
        strategy=args.strategy,
        use_codebook=not args.reference,
        parallel=args.parallel,
    )
    result = flow.run(program, trace, name=workload.name)
    bundle_json = EncodingBundle.from_flow_result(program, result).to_json()
    bundle_digest = hashlib.sha256(bundle_json.encode()).hexdigest()
    print(f"workload:      {workload.description}")
    print(
        f"encoder:       "
        f"{'reference BlockSolver' if args.reference else 'compiled codebook fast path'}"
        + (f", {args.parallel} workers" if args.parallel else "")
    )
    print(f"trace:         {result.trace_length} fetches")
    print(
        f"blocks:        {len(result.selected_blocks)} encoded, "
        f"{result.tt_entries_used}/{result.tt_capacity} TT entries, "
        f"{result.hot_coverage:.0%} of fetches covered"
    )
    print(
        f"transitions:   {result.baseline_transitions} -> "
        f"{result.encoded_transitions} "
        f"({result.reduction_percent:.1f}% reduction)"
    )
    print(f"decode:        {'verified bit-exact' if result.decode_verified else 'n/a'}")
    # The same digest a serve-side encode job reports for this config:
    # the CLI and the service vouch for each other result-for-result.
    print(f"bundle:        sha256 {bundle_digest} ({args.strategy} strategy)")
    if observed:
        _obs_finish(args, command=f"repro encode {name}")
    return 0


def _encode_select_per_region(args, workload, program, trace) -> int:
    """``repro encode --select-per-region``: measure every registered
    backend per hot region, emit and validate the mixed-scheme bundle."""
    import hashlib

    from repro.pipeline.selector import SchemeSelector, SelectorBudget

    selector = SchemeSelector(
        block_size=args.block_size,
        tt_capacity=args.tt_entries,
        budget=SelectorBudget(
            max_table_bits=args.budget_table_bits,
            max_extra_lines=args.budget_extra_lines,
        ),
    )
    result = selector.run(program, trace, name=workload.name)
    print(f"workload:      {workload.description}")
    print(f"trace:         {len(trace)} fetches")
    print(
        f"budget:        <= {args.budget_table_bits} table bits, "
        f"<= {args.budget_extra_lines} extra lines"
    )
    print(f"regions:       {len(result.choices)}")
    for choice in result.choices:
        ranked = ", ".join(
            f"{scheme}={cost if cost is not None else 'over-budget'}"
            for scheme, cost in sorted(
                choice.candidates.items(),
                key=lambda kv: (kv[1] is None, kv[1] if kv[1] is not None else 0),
            )
        )
        print(
            f"  region {choice.header:#010x}: {choice.scheme} "
            f"({choice.raw_transitions} -> {choice.transitions} transitions, "
            f"saves {choice.savings}; {choice.fetches} fetches)"
        )
        print(f"    candidates: {ranked}")
    best_single = min(
        (
            result.single_scheme_transitions(scheme)
            for scheme in {s for c in result.choices for s in c.candidates}
        ),
        default=result.baseline_transitions,
    )
    print(
        f"transitions:   {result.baseline_transitions} -> "
        f"{result.mixed_transitions} mixed "
        f"({result.reduction_percent:.1f}% reduction; "
        f"best single scheme {best_single})"
    )
    if result.mixed_transitions > best_single:
        print(
            "selector:      REGRESSION: mixed-scheme configuration is worse "
            "than the best single scheme",
            file=sys.stderr,
        )
        return 1
    # the selector already deploy-and-checked; repeat through the
    # serialised form so the gate covers the JSON round trip too
    from repro.pipeline.bundle import EncodingBundle

    bundle_json = result.bundle.to_json()
    reloaded = EncodingBundle.from_json(bundle_json)
    if not reloaded.deploy_and_check(program, trace):
        print("decode:        MISMATCH after bundle round trip", file=sys.stderr)
        return 1
    digest = hashlib.sha256(bundle_json.encode()).hexdigest()
    print("decode:        verified bit-exact (mixed-scheme bundle)")
    print(f"bundle:        sha256 {digest} ({len(bundle_json)} bytes)")
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    from repro.pipeline.flow import EncodingFlow
    from repro.pipeline.report import (
        fig6_table,
        fig7_series,
        format_fig6,
        format_fig7_ascii,
    )
    from repro.sim.cpu import run_program
    from repro.workloads.registry import build_workload

    results = {}
    for name in BENCHMARK_ORDER:
        workload = build_workload(name)
        program = workload.assemble()
        cpu, trace = run_program(program)
        if workload.verify is not None:
            workload.verify(cpu)
        results[name] = {
            k: EncodingFlow(block_size=k).run(program, trace, name)
            for k in args.block_sizes
        }
        print(f"{name}: done ({len(trace)} fetches)", file=sys.stderr)
    print(format_fig6(fig6_table(results, BENCHMARK_ORDER)))
    if args.chart:
        print()
        print(
            format_fig7_ascii(
                fig7_series(results, BENCHMARK_ORDER), BENCHMARK_ORDER
            )
        )
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    from repro.minicc import compile_kernel
    from repro.pipeline.flow import EncodingFlow

    with open(args.file) as handle:
        source = handle.read()
    kernel = compile_kernel(source, name=args.file, opt_level=args.opt)
    program = kernel.assemble()
    print(f"compiled {args.file}: {len(program.words)} instructions")
    if args.show_asm:
        print(kernel.assembly)
    cpu, trace = kernel.run()
    print(f"executed {cpu.steps} instructions")
    result = EncodingFlow(block_size=args.block_size).run(
        program, trace, args.file
    )
    print(
        f"encoding (k={args.block_size}): {result.baseline_transitions} -> "
        f"{result.encoded_transitions} transitions "
        f"({result.reduction_percent:.1f}% reduction), decode "
        f"{'verified' if result.decode_verified else 'n/a'}"
    )
    return 0


def _cmd_cost(args: argparse.Namespace) -> int:
    from repro.hw.cost import cost_sweep

    print(
        f"{'k':>2s} {'TT bits':>8s} {'BBIT bits':>9s} {'gates':>6s} "
        f"{'max loop instrs':>15s}"
    )
    for cost in cost_sweep(tuple(args.sizes), tt_entries=args.tt_entries):
        print(
            f"{cost.block_size:2d} {cost.tt_bits:8d} {cost.bbit_bits:9d} "
            f"{cost.decode_gates:6d} {cost.max_instructions:15d}"
        )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.pipeline.benchmark import (
        run_codec_benchmarks,
        run_encoder_zoo_benchmarks,
    )

    if args.encoders:
        report = run_encoder_zoo_benchmarks(repeats=args.repeats)
        print(report.format_table())
        path = report.write(
            args.json if args.json != "BENCH_codec.json" else "BENCH_encoders.json"
        )
        print(f"\nwrote {path}")
        return 0

    report = run_codec_benchmarks(
        stream_length=args.stream_length,
        num_words=args.words,
        block_size=args.block_size,
        repeats=args.repeats,
    )
    print(report.format_table())
    path = report.write(args.json)
    print(f"\nwrote {path}")
    if args.decode_floor is not None:
        failures = [
            case
            for case in report.cases
            if "decode" in case.name and case.speedup < args.decode_floor
        ]
        for case in failures:
            print(
                f"decode floor: {case.name} {case.speedup:.1f}x < "
                f"required {args.decode_floor:.1f}x",
                file=sys.stderr,
            )
        if failures:
            return 1
        print(f"decode floor: all decode rows >= {args.decode_floor:.1f}x")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.faults import DEFAULT_MODELS, MODELS_BY_NAME, CampaignConfig, run_campaign

    if args.storage:
        return _cmd_faults_storage(args)
    if args.models:
        unknown = [name for name in args.models if name not in MODELS_BY_NAME]
        if unknown:
            print(
                f"unknown fault model(s): {', '.join(unknown)}; "
                f"available: {', '.join(MODELS_BY_NAME)}",
                file=sys.stderr,
            )
            return 2
        models = tuple(MODELS_BY_NAME[name] for name in args.models)
    else:
        models = DEFAULT_MODELS
    config = CampaignConfig(
        workloads=tuple(args.workload or ["fir"]),
        mixed_workloads=tuple(args.mixed_workload or []),
        block_size=args.block_size,
        seed=args.seed,
        trials=args.trials,
        models=models,
        parity=not args.no_parity,
        workers=args.workers,
        case_timeout=args.timeout,
    )
    if args.resume and not args.wal:
        print("faults: --resume requires --wal PATH", file=sys.stderr)
        return 2
    observed = _obs_begin(args)
    for workload in config.workloads:
        print(f"preparing {workload} deployment ...", file=sys.stderr)
    for workload in config.mixed_workloads:
        print(
            f"preparing {workload} mixed-scheme deployment ...",
            file=sys.stderr,
        )
    report = run_campaign(config, wal_path=args.wal, resume=args.resume)
    print(report.format_table())
    silent = len(report.silent_cases())
    print(
        f"\n{len(report.cases)} cases, {silent} silently corrupted, "
        f"protected models "
        f"{'all detected or recovered' if report.protected_ok() else 'NOT fully covered'}"
    )
    path = report.write(args.json, deterministic=args.deterministic)
    print(f"wrote {path}")
    if observed:
        _obs_finish(args, command="repro faults", seed=config.seed)
    if args.check and not report.protected_ok():
        print(
            "FAIL: a parity-protected or protocol fault model shows "
            "silent corruption or an escaped exception",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_faults_storage(args: argparse.Namespace) -> int:
    """``repro faults --storage``: the crash-consistency matrix.

    Runs every durability surface through the crash-at-every-syscall-
    prefix sweep plus the non-crash fault models (EIO, ENOSPC, torn),
    prints the matrix, and writes it as the campaign report.  With
    ``--check``, exits 1 on any violation — a lost fsync-acknowledged
    record, a torn report, a bare OSError."""
    from repro.faults.storage import run_storage_campaign

    observed = _obs_begin(args)
    report = run_storage_campaign(
        seed=args.seed, max_states=args.storage_states
    )
    print(report.format_table())
    total = report.total_violations()
    print(
        f"\n{len(report.matrix)} matrix rows, {total} violations, "
        f"crash-consistency "
        f"{'holds on every surface' if report.storage_ok() else 'VIOLATED'}"
    )
    path = report.write(args.json)
    print(f"wrote {path}")
    if observed:
        _obs_finish(args, command="repro faults --storage", seed=args.seed)
    if args.check and not report.storage_ok():
        print(
            "FAIL: a durability surface lost an acknowledged record, "
            "exposed a torn file, or leaked a bare OSError",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.pipeline.experiment import run_sweep

    if args.resume and not args.wal:
        print("experiment: --resume requires --wal PATH", file=sys.stderr)
        return 2
    workloads = args.workload or ["fir"]
    unknown = [name for name in workloads if name not in ENCODABLE_WORKLOADS]
    if unknown:
        print(
            f"unknown workload(s): {', '.join(unknown)}; "
            f"available: {', '.join(ENCODABLE_WORKLOADS)}",
            file=sys.stderr,
        )
        return 2
    sweep = run_sweep(
        workloads,
        block_sizes=tuple(args.block_sizes),
        tt_capacities=tuple(args.tt_capacities),
        strategies=tuple(args.strategies),
        wal_path=args.wal,
        resume=args.resume,
    )
    print(sweep.to_csv())
    if args.csv:
        path = sweep.write_csv(args.csv)
        print(f"wrote {path}", file=sys.stderr)
    return 0


def _load_report_or_complain(path: str) -> dict | None:
    from repro.obs.report import load_run_report, validate_run_report

    try:
        data = load_run_report(path)
    except FileNotFoundError:
        print(
            f"no run report at {path}; produce one with "
            "`repro encode --workload fir --metrics`",
            file=sys.stderr,
        )
        return None
    problems = validate_run_report(data)
    if problems:
        for problem in problems:
            print(f"invalid report: {problem}", file=sys.stderr)
        return None
    return data


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json

    from repro.obs.report import (
        EXPECTED_ENCODE_FAMILIES,
        EXPECTED_SERVE_FAMILIES,
        EXPECTED_STORAGE_FAMILIES,
        missing_families,
    )

    data = _load_report_or_complain(args.report)
    if data is None:
        return 2
    metrics = data["metrics"]
    if getattr(args, "openmetrics", False):
        from repro.obs.export import render_openmetrics

        print(render_openmetrics(metrics), end="")
    elif args.json:
        print(json.dumps(metrics, indent=1))
    else:
        meta = data.get("meta", {})
        print(
            f"run {meta.get('run_id', '?')} "
            f"({meta.get('command') or 'unknown command'}, "
            f"git {str(meta.get('git_sha', '?'))[:12]})"
        )
        header = f"{'family':<34s} {'type':<9s} {'series':>6s} {'total':>14s}"
        print(header)
        print("-" * len(header))
        for name in sorted(metrics):
            family = metrics[name]
            series = family.get("series", [])
            if family.get("type") == "histogram":
                total = sum(entry.get("count", 0) for entry in series)
            else:
                total = sum(entry.get("value", 0) for entry in series)
            total_text = (
                f"{total:,.4f}".rstrip("0").rstrip(".")
                if isinstance(total, float)
                else f"{total:,}"
            )
            print(
                f"{name:<34s} {family.get('type', '?'):<9s} "
                f"{len(series):>6d} {total_text:>14s}"
            )
    if args.check:
        expected = {
            "encode": EXPECTED_ENCODE_FAMILIES,
            "serve": EXPECTED_SERVE_FAMILIES,
            "storage": EXPECTED_STORAGE_FAMILIES,
        }[args.expect]
        missing = missing_families(data, expected=expected)
        if missing:
            print(
                "FAIL: expected metric families missing from the report: "
                + ", ".join(missing),
                file=sys.stderr,
            )
            return 1
        print(f"all expected {args.expect} metric families present")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    data = _load_report_or_complain(args.report)
    if data is None:
        return 2
    trace = data["trace"]
    if args.json:
        print(json.dumps(trace, indent=1))
        return 0
    print(
        f"run {trace.get('run_id', '?')}: "
        f"{trace.get('spans_recorded', 0)} spans recorded, "
        f"{trace.get('spans_dropped', 0)} dropped"
    )
    by_name = trace.get("by_name", {})
    if by_name:
        header = (
            f"{'span':<28s} {'count':>6s} {'total s':>10s} "
            f"{'min s':>10s} {'max s':>10s}"
        )
        print(header)
        print("-" * len(header))
        for name in sorted(
            by_name, key=lambda n: by_name[n]["total_s"], reverse=True
        ):
            row = by_name[name]
            print(
                f"{name:<28s} {row['count']:>6d} {row['total_s']:>10.5f} "
                f"{row['min_s']:>10.5f} {row['max_s']:>10.5f}"
            )
    spans = trace.get("spans", [])
    if spans and args.top:
        slowest = sorted(
            spans, key=lambda s: s.get("duration_s", 0.0), reverse=True
        )[: args.top]
        print(f"\nslowest {len(slowest)} spans:")
        for span in slowest:
            indent = "  " * int(span.get("depth", 0))
            attrs = span.get("attrs", {})
            attr_text = (
                " " + " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
                if attrs
                else ""
            )
            print(
                f"  {span.get('duration_s', 0.0):>10.5f}s "
                f"{indent}{span.get('name', '?')}{attr_text}"
            )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    import json

    from repro.verify import (
        MUTATIONS,
        VerifyConfig,
        apply_mutation,
        load_verify_report,
        replay_counterexample,
        run_verify,
    )

    if args.replay is not None:
        try:
            data = load_verify_report(args.replay)
        except FileNotFoundError:
            print(f"no verify report at {args.replay}", file=sys.stderr)
            return 2
        records = data.get("counterexamples", [])
        if not records:
            print(
                f"{args.replay} records no counterexamples; nothing to replay",
                file=sys.stderr,
            )
            return 2
        if not 0 <= args.replay_index < len(records):
            print(
                f"--replay-index {args.replay_index} out of range "
                f"[0, {len(records)})",
                file=sys.stderr,
            )
            return 2
        record = records[args.replay_index]
        for name in record.get("mutations", []):
            apply_mutation(name)
        observed = replay_counterexample(record)
        print(
            f"counterexample {args.replay_index}: kind={record['kind']} "
            f"seed={record.get('seed_key', '?')} "
            f"recorded mismatch={record['mismatch']['kind']}"
        )
        if observed is None:
            print(
                "replay: divergence did NOT reproduce (fixed code, or a "
                "mutation that is no longer armed)"
            )
            return 3
        print(f"replay: reproduced -> {json.dumps(observed)}")
        return 0

    if args.mutation is not None and args.mutation not in MUTATIONS:
        print(
            f"unknown mutation {args.mutation!r}; "
            f"available: {', '.join(MUTATIONS)}",
            file=sys.stderr,
        )
        return 2
    config = VerifyConfig(
        cases=args.cases,
        seed=args.seed,
        bias=tuple(args.bias),
        block_sizes=tuple(args.block_sizes),
        sweeps=not args.no_sweeps,
        workers=args.workers or 0,
        chunk_timeout=args.timeout,
        mutation=args.mutation,
    )
    observed = _obs_begin(args)
    report = run_verify(config)
    print(report.format_summary())
    path = report.write(args.report, deterministic=args.deterministic)
    print(f"wrote {path}")
    if observed:
        _obs_finish_to(args.run_report, command="repro verify", seed=config.seed)
    if args.check and not report.check_ok:
        print(
            f"FAIL: {report.mismatch_count} differential mismatch(es), "
            f"{len(report.gate_problems)} coverage gate problem(s)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import hashlib
    import json

    from repro.errors import ReproError
    from repro.faults.service import CHAOS_KINDS, parse_chaos_spec

    if bool(args.selftest) == bool(args.jobs):
        print(
            "serve: exactly one of --selftest or --jobs FILE is required",
            file=sys.stderr,
        )
        return 2
    try:
        chaos = (
            CHAOS_KINDS
            if args.chaos is None
            else parse_chaos_spec(args.chaos)
        )
    except ReproError as err:
        print(f"serve: {err}", file=sys.stderr)
        return 2

    observed = _obs_begin(args)
    if args.selftest:
        from repro.serve import SelftestOptions, run_selftest

        options = SelftestOptions(
            seed=args.seed,
            tenants=args.tenants,
            jobs_per_tenant=args.jobs_per_tenant,
            workers=args.workers,
            queue_depth=args.queue_depth,
            chaos=chaos,
            deterministic=args.deterministic,
            transport=args.transport,
            default_deadline_s=args.deadline,
            wal_path=args.wal,
            resume=args.resume,
            cache_dir=args.cache_dir,
            report_path=args.report,
            bench_path=args.bench_json,
            openmetrics_path=args.openmetrics,
            flight_path=args.flight_record,
            rebuild_storm_threshold=args.flight_threshold,
            slo_latency_target_s=args.slo_target,
        )
        report, problems = run_selftest(options)
        summary = report["summary"]
        outcome_text = ", ".join(
            f"{k}={v}" for k, v in summary["outcomes"].items()
        )
        print(
            f"selftest: {summary['jobs']} jobs, {options.tenants} tenants, "
            f"{options.transport} transport, chaos "
            f"{'+'.join(sorted(chaos)) or 'off'}"
        )
        print(f"outcomes:  {outcome_text}")
        ops = report.get("ops")
        if ops:
            stats = ops["stats"]
            print(
                f"handled:   {stats['shed']} shed, {stats['retried']} retried, "
                f"{stats['pool_rebuilds']} pool rebuilds, "
                f"{stats['serial_fallbacks']} serial fallbacks, "
                f"{stats['replayed']} replayed from WAL "
                f"(wall {ops['wall_s']:.2f}s)"
            )
        print(f"wrote {args.report}")
        print(f"wrote {args.bench_json}")
        if args.openmetrics:
            print(f"wrote {args.openmetrics}")
        for problem in problems:
            print(f"PROBLEM: {problem}", file=sys.stderr)
        if observed:
            _obs_finish_to(
                args.run_report, command="repro serve --selftest", seed=args.seed
            )
        if problems:
            print(
                f"FAIL: {len(problems)} problem(s) — wrong results or "
                "taxonomy violations",
                file=sys.stderr,
            )
            return 1 if args.check else 0
        print("selftest: zero wrong results, taxonomy holds")
        return 0

    from repro.runtime import atomic_write_text
    from repro.serve import EncodingServer, ServeConfig
    from repro.serve.jobs import deterministic_result

    try:
        with open(args.jobs) as handle:
            text = handle.read()
    except OSError as err:
        print(f"serve: cannot read {args.jobs}: {err}", file=sys.stderr)
        return 2
    try:
        loaded = json.loads(text)
        requests = loaded if isinstance(loaded, list) else [loaded]
    except json.JSONDecodeError:
        # JSONL fallback: one request object per non-blank line.
        requests = [json.loads(line) for line in text.splitlines() if line.strip()]
    batch_key = hashlib.sha256(
        json.dumps(requests, sort_keys=True).encode()
    ).hexdigest()[:16]
    config = ServeConfig(
        workers=args.workers,
        queue_depth=args.queue_depth,
        default_deadline_s=args.deadline,
        seed=args.seed,
        cache_dir=args.cache_dir,
        wal_path=args.wal,
        resume=args.resume,
        batch_key=batch_key,
        flight_path=args.flight_record,
        rebuild_storm_threshold=args.flight_threshold,
        slo_latency_target_s=args.slo_target,
    )

    async def _run_batch():
        async with EncodingServer(config) as server:
            return await server.run_batch(requests), server

    results, server = asyncio.run(_run_batch())
    outcome_counts: dict[str, int] = {}
    for result in results:
        outcome_counts[result["outcome"]] = (
            outcome_counts.get(result["outcome"], 0) + 1
        )
    print(
        f"batch: {len(results)} jobs, outcomes "
        + ", ".join(f"{k}={v}" for k, v in sorted(outcome_counts.items()))
    )
    ordered = sorted(results, key=lambda r: (r["tenant"], r["job_id"]))
    if args.deterministic:
        ordered = [deterministic_result(r) for r in ordered]
    report = {
        "schema": "repro.serve.batch/1",
        "seed": args.seed,
        "batch_key": batch_key,
        "deterministic": args.deterministic,
        "summary": {
            "jobs": len(results),
            "outcomes": dict(sorted(outcome_counts.items())),
        },
        "jobs": ordered,
    }
    if not args.deterministic:
        report["ops"] = {"stats": dict(server.stats)}
    atomic_write_text(args.report, json.dumps(report, indent=1) + "\n")
    print(f"wrote {args.report}")
    if observed:
        _obs_finish_to(args.run_report, command="repro serve", seed=args.seed)
    errors = outcome_counts.get("error", 0)
    if args.check and errors:
        print(f"FAIL: {errors} job(s) ended outcome 'error'", file=sys.stderr)
        return 1
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.serve.client import ServeClient
    from repro.serve.server import format_status

    host, _, port_text = args.connect.rpartition(":")
    host = host or "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        print(
            f"top: --connect must be HOST:PORT, got {args.connect!r}",
            file=sys.stderr,
        )
        return 2

    async def watch() -> int:
        shown = 0
        async with ServeClient(host, port) as client:
            while True:
                response = await client.control("status")
                status = response.get("status")
                if not isinstance(status, dict):
                    print(
                        f"top: unexpected response: {json.dumps(response)}",
                        file=sys.stderr,
                    )
                    return 2
                if not args.no_clear and shown:
                    # ANSI clear+home, plain text otherwise: works in
                    # any terminal and stays pipe-friendly.
                    print("\x1b[2J\x1b[H", end="")
                print(format_status(status), end="", flush=True)
                shown += 1
                if args.iterations and shown >= args.iterations:
                    return 0
                await asyncio.sleep(args.interval)

    try:
        return asyncio.run(watch())
    except KeyboardInterrupt:
        return 0
    except (ConnectionError, OSError) as err:
        print(f"top: cannot reach {host}:{port}: {err}", file=sys.stderr)
        return 2


def _obs_finish_to(path: str, command: str, seed: int | None = None) -> None:
    """Like :func:`_obs_finish` but with an explicit report path, for
    commands whose ``--report`` means something else."""
    from repro import obs

    report = obs.collect_report(command=command, seed=seed)
    written = report.write(path)
    obs.OBS.tracer.close_jsonl()
    print(f"wrote {written}")


def _add_obs_arguments(p: argparse.ArgumentParser) -> None:
    """The ``--metrics`` family shared by instrumented commands."""
    p.add_argument(
        "--metrics",
        action="store_true",
        help="run with observability on and write a RUN_report.json",
    )
    p.add_argument(
        "--report",
        default="RUN_report.json",
        metavar="PATH",
        help="where --metrics writes the run report",
    )
    p.add_argument(
        "--trace-jsonl",
        default=None,
        metavar="PATH",
        help="also stream one JSON span event per line to PATH",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("codebook", help="Figure-2/4 style codebook")
    p.add_argument("-k", "--block-size", type=int, default=3)
    p.add_argument(
        "--full", action="store_true", help="search all 16 functions"
    )
    p.set_defaults(func=_cmd_codebook)

    p = sub.add_parser("theory", help="Figure-3 TTN/RTN table")
    p.add_argument(
        "--sizes", type=int, nargs="+", default=[2, 3, 4, 5, 6, 7]
    )
    p.set_defaults(func=_cmd_theory)

    p = sub.add_parser("streams", help="Section-6 random streams")
    p.add_argument("-k", "--block-size", type=int, default=5)
    p.add_argument("--count", type=int, default=50)
    p.add_argument("--length", type=int, default=1000)
    p.add_argument("--seed", type=int, default=2003)
    p.add_argument(
        "--strategy", choices=("greedy", "optimal", "disjoint"), default="greedy"
    )
    p.set_defaults(func=_cmd_streams)

    p = sub.add_parser("encode", help="run the flow on one benchmark")
    p.add_argument(
        "workload",
        nargs="?",
        default=None,
        choices=ENCODABLE_WORKLOADS,
        help="workload to encode (or use --workload)",
    )
    p.add_argument(
        "--workload",
        dest="workload_opt",
        default=None,
        choices=ENCODABLE_WORKLOADS,
        metavar="NAME",
        help="workload to encode (alias for the positional)",
    )
    p.add_argument("-k", "--block-size", type=int, default=5)
    p.add_argument("--tt-entries", type=int, default=16)
    mode = p.add_mutually_exclusive_group()
    mode.add_argument(
        "--fast",
        dest="reference",
        action="store_false",
        help="compiled codebook fast path (default)",
    )
    mode.add_argument(
        "--reference",
        dest="reference",
        action="store_true",
        help="seed per-block BlockSolver (bit-identical, slower)",
    )
    p.set_defaults(reference=False)
    p.add_argument(
        "--strategy",
        choices=("greedy", "optimal"),
        default="greedy",
        help="block-selection strategy (the same two repro serve accepts)",
    )
    p.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help="encode basic blocks across N worker processes",
    )
    p.add_argument(
        "--select-per-region",
        action="store_true",
        help="measure every registered encoder backend per hot region "
        "and emit a validated mixed-scheme bundle",
    )
    p.add_argument(
        "--budget-table-bits",
        type=int,
        default=8192,
        metavar="BITS",
        help="selector hardware budget: max mapping-table storage per "
        "region scheme (default 8192)",
    )
    p.add_argument(
        "--budget-extra-lines",
        type=int,
        default=8,
        metavar="N",
        help="selector hardware budget: max bus lines beyond the 32 "
        "data lines (default 8)",
    )
    _add_obs_arguments(p)
    p.set_defaults(func=_cmd_encode)

    p = sub.add_parser("suite", help="Figure 6 (+7) over all benchmarks")
    p.add_argument(
        "--block-sizes", type=int, nargs="+", default=[4, 5, 6, 7]
    )
    p.add_argument("--chart", action="store_true", help="also print Figure 7")
    p.set_defaults(func=_cmd_suite)

    p = sub.add_parser("compile", help="compile and encode a minicc kernel")
    p.add_argument("file", help="minicc source file")
    p.add_argument("-k", "--block-size", type=int, default=5)
    p.add_argument("-O", "--opt", type=int, choices=(0, 1), default=0)
    p.add_argument("--show-asm", action="store_true")
    p.set_defaults(func=_cmd_compile)

    p = sub.add_parser("cost", help="Section-7.2 hardware cost table")
    p.add_argument("--sizes", type=int, nargs="+", default=[4, 5, 6, 7])
    p.add_argument("--tt-entries", type=int, default=16)
    p.set_defaults(func=_cmd_cost)

    p = sub.add_parser(
        "bench", help="codec throughput: fast path vs reference solver"
    )
    p.add_argument("--json", default="BENCH_codec.json", metavar="PATH")
    p.add_argument("--repeats", type=int, default=3)
    p.add_argument("--stream-length", type=int, default=5000)
    p.add_argument("--words", type=int, default=64)
    p.add_argument("-k", "--block-size", type=int, default=5)
    p.add_argument(
        "--decode-floor",
        type=float,
        default=None,
        metavar="X",
        help="exit 1 unless every decode row's bitplane speedup is >= X "
        "(the CI decode-throughput smoke)",
    )
    p.add_argument(
        "--encoders",
        action="store_true",
        help="benchmark the encoder zoo instead (every registered "
        "backend, fast count vs reference counter; BENCH_encoders.json)",
    )
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "faults",
        help="fault-injection campaign over the decode/deploy path",
    )
    p.add_argument(
        "--workload",
        action="append",
        default=None,
        metavar="NAME",
        help="workload(s) to deploy and corrupt (repeatable; default fir)",
    )
    p.add_argument(
        "--mixed-workload",
        action="append",
        default=None,
        metavar="NAME",
        help="workload(s) additionally deployed as mixed-scheme bundles "
        "through the per-region selector (targets the scheme-tag "
        "corruption model; repeatable)",
    )
    p.add_argument("-k", "--block-size", type=int, default=5)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--trials", type=int, default=25, help="trials per model")
    p.add_argument(
        "--models",
        nargs="+",
        default=None,
        metavar="MODEL",
        help="restrict the sweep to these fault models",
    )
    p.add_argument(
        "--no-parity",
        action="store_true",
        help="disable TT/BBIT parity words (measure the unhardened path)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="fan cases out across N worker processes",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="per-case worker timeout in seconds",
    )
    p.add_argument(
        "--storage",
        action="store_true",
        help="run the storage crash-consistency matrix instead: every "
        "durability surface under crash-at-every-syscall, EIO, ENOSPC "
        "and torn-append faults",
    )
    p.add_argument(
        "--storage-states",
        type=int,
        default=96,
        metavar="N",
        help="cap on enumerated torn-write states per crash point "
        "(deterministically sampled beyond; --storage only)",
    )
    p.add_argument("--json", default="FAULTS_report.json", metavar="PATH")
    p.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless every protected model is fully detected/recovered "
        "(with --storage: unless the crash matrix is violation-free)",
    )
    p.add_argument(
        "--wal",
        default=None,
        metavar="PATH",
        help="journal finished cases to a JSONL write-ahead log",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="replay the --wal log and skip already-finished cases",
    )
    p.add_argument(
        "--deterministic",
        action="store_true",
        help="zero wall-clock aggregates so identical runs (and resumed "
        "runs) write byte-identical reports",
    )
    _add_obs_arguments(p)
    p.set_defaults(func=_cmd_faults)

    p = sub.add_parser(
        "experiment",
        help="parameter-sweep grid over workloads (CSV, resumable)",
    )
    p.add_argument(
        "--workload",
        action="append",
        default=None,
        metavar="NAME",
        help="workload(s) to sweep (repeatable; default fir)",
    )
    p.add_argument(
        "--block-sizes", type=int, nargs="+", default=[4, 5, 6, 7]
    )
    p.add_argument("--tt-capacities", type=int, nargs="+", default=[16])
    p.add_argument(
        "--strategies",
        nargs="+",
        choices=("greedy", "optimal", "disjoint"),
        default=["greedy"],
    )
    p.add_argument(
        "--csv",
        default=None,
        metavar="PATH",
        help="also write the grid to PATH (atomic)",
    )
    p.add_argument(
        "--wal",
        default=None,
        metavar="PATH",
        help="journal finished grid points to a JSONL write-ahead log",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="replay the --wal log and skip already-finished points",
    )
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser(
        "verify",
        help="differential verification of every decode path",
    )
    p.add_argument(
        "--cases",
        type=int,
        default=200,
        help="randomised differential cases to run (plus the sweeps)",
    )
    p.add_argument("--seed", type=int, default=7)
    p.add_argument(
        "--bias",
        type=float,
        nargs="+",
        default=[0.05, 0.25, 0.5, 0.75, 0.95],
        metavar="P",
        help="stream one-bit probabilities cycled across stream cases",
    )
    p.add_argument(
        "--block-sizes", type=int, nargs="+", default=[2, 3, 4, 5, 6, 7]
    )
    p.add_argument(
        "--no-sweeps",
        action="store_true",
        help="skip the exhaustive codebook/tau/boundary sweeps "
        "(the coverage gate will not be reachable)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="fan case chunks out across N worker processes",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="per-chunk worker timeout in seconds",
    )
    p.add_argument(
        "--report",
        default="VERIFY_report.json",
        metavar="PATH",
        help="where to write the verification report",
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless zero mismatches and 100%% gated coverage",
    )
    p.add_argument(
        "--inject-mutation",
        dest="mutation",
        default=None,
        metavar="NAME",
        help="arm a named decoder mutation (self-test: the campaign "
        "MUST then report mismatches)",
    )
    p.add_argument(
        "--replay",
        default=None,
        metavar="REPORT",
        help="re-run a counterexample recorded in REPORT instead of "
        "running a campaign (exit 0 if it reproduces, 3 if stale)",
    )
    p.add_argument(
        "--replay-index",
        type=int,
        default=0,
        metavar="I",
        help="which counterexample in the report to replay",
    )
    p.add_argument(
        "--deterministic",
        action="store_true",
        help="zero wall-clock fields so seed-pinned runs write "
        "byte-identical reports",
    )
    p.add_argument(
        "--metrics",
        action="store_true",
        help="run with observability on and write a run report",
    )
    p.add_argument(
        "--run-report",
        default="RUN_report.json",
        metavar="PATH",
        help="where --metrics writes the observability snapshot "
        "(--report is the verification report)",
    )
    p.add_argument(
        "--trace-jsonl",
        default=None,
        metavar="PATH",
        help="also stream one JSON span event per line to PATH",
    )
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser(
        "serve",
        help="fault-tolerant async encoding service (selftest or batch)",
    )
    mode = p.add_mutually_exclusive_group()
    mode.add_argument(
        "--selftest",
        action="store_true",
        help="run the seeded chaos/load harness against a live server",
    )
    mode.add_argument(
        "--jobs",
        default=None,
        metavar="FILE",
        help="serve a batch of job requests from FILE (JSON list or JSONL)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--tenants", type=int, default=6, help="selftest: concurrent tenants"
    )
    p.add_argument(
        "--jobs-per-tenant",
        type=int,
        default=25,
        help="selftest: jobs each tenant submits",
    )
    p.add_argument(
        "--workers", type=int, default=2, help="encoding worker processes"
    )
    p.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        help="admission-control bound; beyond it jobs are shed with "
        "retry-after",
    )
    p.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="selftest chaos models, comma-separated from "
        "kill,slow,malformed (default all; '' disables)",
    )
    p.add_argument(
        "--transport",
        choices=("inproc", "tcp"),
        default="inproc",
        help="selftest: in-process submits or one TCP client per tenant",
    )
    p.add_argument(
        "--deadline",
        type=float,
        default=30.0,
        help="default per-job deadline in seconds",
    )
    p.add_argument(
        "--wal",
        default=None,
        metavar="PATH",
        help="journal finished jobs to a JSONL write-ahead log",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="replay the --wal log and serve already-finished jobs from it",
    )
    p.add_argument(
        "--deterministic",
        action="store_true",
        help="zero attempt/latency fields so identical (and resumed) runs "
        "write byte-identical reports",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="warm-start bundle cache directory shared across runs",
    )
    p.add_argument(
        "--report",
        default="SERVE_report.json",
        metavar="PATH",
        help="where to write the serve report",
    )
    p.add_argument(
        "--bench-json",
        default="BENCH_serve.json",
        metavar="PATH",
        help="selftest: where to write latency/throughput benchmarks",
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="exit 1 on selftest problems (or batch jobs ending 'error')",
    )
    p.add_argument(
        "--metrics",
        action="store_true",
        help="run with observability on and write a run report",
    )
    p.add_argument(
        "--run-report",
        default="RUN_report.json",
        metavar="PATH",
        help="where --metrics writes the observability snapshot "
        "(--report is the serve report)",
    )
    p.add_argument(
        "--trace-jsonl",
        default=None,
        metavar="PATH",
        help="also stream one JSON span event per line to PATH",
    )
    p.add_argument(
        "--openmetrics",
        default=None,
        metavar="PATH",
        help="selftest: scrape the live /metrics endpoint (or the "
        "in-process equivalent) once and write the exposition to PATH",
    )
    p.add_argument(
        "--flight-record",
        default="FLIGHT_serve.jsonl",
        metavar="PATH",
        help="flight-recorder dump file for breaker/rebuild/SIGTERM "
        "incidents (appended, one JSON event per line)",
    )
    p.add_argument(
        "--flight-threshold",
        type=int,
        default=3,
        metavar="N",
        help="pool rebuilds within the storm window that trigger a "
        "flight dump",
    )
    p.add_argument(
        "--slo-target",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="per-job latency target the SLO tracker counts against",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "top",
        help="live status view of a running serve endpoint",
    )
    p.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="serve endpoint to poll (e.g. 127.0.0.1:7521)",
    )
    p.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh interval",
    )
    p.add_argument(
        "--iterations",
        type=int,
        default=0,
        metavar="N",
        help="stop after N refreshes (0 = run until interrupted)",
    )
    p.add_argument(
        "--no-clear",
        action="store_true",
        help="append refreshes instead of clearing the screen",
    )
    p.set_defaults(func=_cmd_top)

    p = sub.add_parser(
        "metrics", help="metric families from a RUN_report.json"
    )
    p.add_argument(
        "--report",
        default="RUN_report.json",
        metavar="PATH",
        help="run report to read",
    )
    p.add_argument(
        "--json", action="store_true", help="dump the raw metrics object"
    )
    p.add_argument(
        "--openmetrics",
        action="store_true",
        help="render the families as OpenMetrics text exposition",
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless every expected metric family is present",
    )
    p.add_argument(
        "--expect",
        choices=("encode", "serve", "storage"),
        default="encode",
        help="which family set --check gates on (default: encode)",
    )
    p.set_defaults(func=_cmd_metrics)

    p = sub.add_parser("trace", help="span timings from a RUN_report.json")
    p.add_argument(
        "--report",
        default="RUN_report.json",
        metavar="PATH",
        help="run report to read",
    )
    p.add_argument(
        "--json", action="store_true", help="dump the raw trace object"
    )
    p.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="how many slowest spans to list (0 to skip)",
    )
    p.set_defaults(func=_cmd_trace)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
