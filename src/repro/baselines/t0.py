"""T0 address-bus encoding (Benini et al., GLS-VLSI 1997) — reference [2].

Instruction addresses are mostly sequential.  T0 adds one redundant
*increment* line: when the new address equals the previous address
plus the fetch stride, the bus is frozen (zero transitions) and the
increment line is asserted; otherwise the raw address is driven.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass
class T0Coder:
    """Stateful T0 encoder for an address bus."""

    width: int = 32
    stride: int = 4  # instruction word size

    def __post_init__(self) -> None:
        self._mask = (1 << self.width) - 1
        self.reset()

    def reset(self, initial_address: int = 0) -> None:
        self._bus = initial_address & self._mask
        self._expected = (initial_address + self.stride) & self._mask
        self._inc_line = 0
        self.transitions = 0
        self.transfers = 0
        self.frozen_transfers = 0

    def send(self, address: int) -> tuple[int, int]:
        """Encode one address; returns (bus value, increment bit)."""
        address &= self._mask
        if address == self._expected:
            inc = 1
            driven = self._bus  # bus frozen
            self.frozen_transfers += 1
        else:
            inc = 0
            driven = address
        self.transitions += (driven ^ self._bus).bit_count()
        self.transitions += inc ^ self._inc_line
        self._bus = driven
        self._inc_line = inc
        self._expected = (address + self.stride) & self._mask
        self.transfers += 1
        return driven, inc

    def send_all(self, addresses: Iterable[int]) -> int:
        for address in addresses:
            self.send(address)
        return self.transitions


def t0_transitions(addresses: Sequence[int], width: int = 32, stride: int = 4) -> int:
    """Total transitions for an address stream under T0."""
    if not addresses:
        return 0
    coder = T0Coder(width, stride)
    coder.reset(initial_address=addresses[0])
    coder.send_all(addresses[1:])
    return coder.transitions


def raw_address_transitions(addresses: Sequence[int]) -> int:
    """Unencoded address-bus transitions (the T0 baseline's baseline)."""
    return sum(
        (a ^ b).bit_count() for a, b in zip(addresses, addresses[1:])
    )
