"""Reduction summaries and stream statistics.

Backs the Section 6 random-stream experiment ("sizable experiments ...
on randomly generated bit sequences of length 1000 show ... within 1%
of the expected value of 50% for codes with block size of five") and
the per-benchmark reporting of Figure 6.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from statistics import fmean, pstdev
from typing import Sequence

from repro.core.stream_codec import StreamEncoder
from repro.core.transformations import OPTIMAL_SET, Transformation


@dataclass(frozen=True)
class ReductionSummary:
    """Aggregate transition statistics over a set of streams."""

    streams: int
    original_transitions: int
    encoded_transitions: int
    per_stream_percent: tuple[float, ...]

    @property
    def reduction_percent(self) -> float:
        """Pooled reduction (total transitions removed / total)."""
        if self.original_transitions == 0:
            return 0.0
        return (
            100.0
            * (self.original_transitions - self.encoded_transitions)
            / self.original_transitions
        )

    @property
    def mean_percent(self) -> float:
        """Mean of per-stream reduction percentages."""
        return fmean(self.per_stream_percent) if self.per_stream_percent else 0.0

    @property
    def stdev_percent(self) -> float:
        return pstdev(self.per_stream_percent) if self.per_stream_percent else 0.0


def summarize_streams(
    streams: Sequence[Sequence[int]],
    block_size: int,
    transformations: Sequence[Transformation] = OPTIMAL_SET,
    strategy: str = "greedy",
) -> ReductionSummary:
    """Encode each stream and aggregate the transition reductions."""
    encoder = StreamEncoder(block_size, transformations, strategy)
    original = 0
    encoded = 0
    percents: list[float] = []
    for stream in streams:
        encoding = encoder.encode(stream)
        original += encoding.original_transitions
        encoded += encoding.encoded_transitions
        percents.append(encoding.reduction_percent)
    return ReductionSummary(
        streams=len(streams),
        original_transitions=original,
        encoded_transitions=encoded,
        per_stream_percent=tuple(percents),
    )


def random_streams(
    count: int,
    length: int,
    seed: int = 2003,
    bias: float = 0.5,
) -> list[list[int]]:
    """Uniform (or biased) random bit streams for the Section 6 study.

    ``bias`` is the probability of a 1; the paper's experiment uses the
    uniform case ``bias == 0.5``.
    """
    if not 0.0 <= bias <= 1.0:
        raise ValueError(f"bias must be in [0, 1], got {bias}")
    rng = random.Random(seed)
    return [
        [1 if rng.random() < bias else 0 for _ in range(length)]
        for _ in range(count)
    ]


def section6_experiment(
    block_size: int = 5,
    count: int = 50,
    length: int = 1000,
    seed: int = 2003,
    strategy: str = "greedy",
) -> ReductionSummary:
    """Reproduce the Section 6 random-sequence experiment."""
    streams = random_streams(count, length, seed)
    return summarize_streams(streams, block_size, strategy=strategy)


def theoretical_uniform_reduction(block_size: int) -> float:
    """Expected reduction percentage on uniform streams for anchored
    blocks of ``block_size`` (the Figure 3 Impr row)."""
    from repro.core.theory import theory_row

    return theory_row(block_size).improvement_percent
