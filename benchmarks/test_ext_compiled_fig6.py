"""Extension: the full Figure 6 on *compiled* code.

The closest methodological match to the paper's setup this repository
can produce: all six benchmarks compiled by minicc (naive, -O0-shaped
code generation, like era-appropriate embedded toolchains) and pushed
through the identical encoding flow.  Compare against the paper:

              mmul   sor    ej    fft   tri    lu
  paper k=4   44.0  44.3  45.5  20.6  51.6  32.7
  paper k=5   39.2  30.5  38.8  17.5  37.8  23.6
  paper k=6   26.7  35.3  38.7  13.4  31.1  19.1
  paper k=7   28.5  20.1  23.1   0.0  24.4   9.4
"""

from repro.minicc.kernels import compiled_workload
from repro.pipeline.flow import EncodingFlow
from repro.pipeline.report import fig6_table, format_fig6, summarize_results
from repro.workloads.registry import BENCHMARK_ORDER

PAPER_K4 = {"mmul": 44.0, "sor": 44.3, "ej": 45.5, "fft": 20.6, "tri": 51.6, "lu": 32.7}


def _run_compiled_suite():
    results = {}
    for name in BENCHMARK_ORDER:
        kernel, verify = compiled_workload(name)
        program = kernel.assemble()
        cpu, trace = kernel.run()
        verify(cpu)
        results[name] = {
            k: EncodingFlow(block_size=k).run(program, trace, name)
            for k in (4, 5, 6, 7)
        }
    return results


def test_ext_compiled_fig6(benchmark, record_result):
    results = benchmark.pedantic(_run_compiled_suite, rounds=1, iterations=1)

    for name in BENCHMARK_ORDER:
        for k in (4, 5, 6, 7):
            result = results[name][k]
            assert result.decode_verified, (name, k)
            assert result.reduction_percent > 5.0, (name, k)

    averages = summarize_results(results)
    # The paper's outlier finding reproduces on compiled code: fft is
    # the worst benchmark at every block size (its bit-reversal phase
    # and scattered butterflies yield short/irregular vertical runs).
    for k in (4, 5, 6, 7):
        fft_red = results["fft"][k].reduction_percent
        for name in BENCHMARK_ORDER:
            assert results[name][k].reduction_percent >= fft_red, (name, k)
    # mmul (moderate block sizes, no TT pressure beyond k=4) follows
    # the paper's falling trend.
    mmul = results["mmul"]
    assert mmul[4].reduction_percent > mmul[6].reduction_percent
    assert mmul[4].reduction_percent > mmul[7].reduction_percent
    # The naive compiler's giant single-expression stencil blocks put
    # real pressure on the 16-entry TT: at k=4 they truncate harder
    # (ceil((m-1)/3) entries) than at k=7, flattening or reversing the
    # block-size trend for sor/ej/tri — a genuine hardware interaction
    # the paper's sizing discussion anticipates.  We assert the
    # mechanism: coverage at k=4 is never higher than at k=7.
    for name in BENCHMARK_ORDER:
        assert (
            results[name][4].hot_coverage
            <= results[name][7].hot_coverage + 1e-9
        ), name
    # The k=4 compiled mmul lands essentially on the paper's number.
    assert abs(mmul[4].reduction_percent - PAPER_K4["mmul"]) < 5.0

    table = format_fig6(fig6_table(results, BENCHMARK_ORDER))
    deltas = []
    for name in BENCHMARK_ORDER:
        ours = results[name][4].reduction_percent
        deltas.append(f"{name}: ours {ours:.1f}% vs paper {PAPER_K4[name]:.1f}%")
    text = "\n".join(
        [
            "Figure 6 regenerated on minicc-compiled benchmarks",
            "",
            table,
            "",
            "averages: "
            + "  ".join(f"k={k}: {v:.1f}%" for k, v in sorted(averages.items())),
            "",
            "k=4 comparison with the paper's compiled results:",
            *(f"  {d}" for d in deltas),
            "",
            "fft is the worst benchmark at every k (the paper's "
            "outlier finding); giant compiled stencil blocks put TT "
            "pressure on small k, flattening the block-size trend for "
            "sor/ej/tri",
        ]
    )
    record_result("ext_compiled_fig6", text)
