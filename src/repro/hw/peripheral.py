"""The Section 7.1 table-programming peripheral.

The paper offers two ways to get the transformation information into
the fetch hardware: load it with the program image, or have it
"transferred by software: the tables containing the power
transformation information can be accessed as a memory of a special
peripheral device ... written to this memory by a set of instructions
inserted within the application code and executed just prior to
entering the loop under consideration."

This module implements that peripheral as an MMIO window.  Register
map (word offsets from the window base):

======  =============  ==================================================
offset  register       effect on write
======  =============  ==================================================
0x00    ``TT_INDEX``   select the TT entry being staged
0x04    ``TT_SEL0``    selector bits for bus lines 0..9   (3 bits each)
0x08    ``TT_SEL1``    selector bits for bus lines 10..19
0x0C    ``TT_SEL2``    selector bits for bus lines 20..31 (packed 3b)
0x10    ``TT_FLAGS``   bit0 = E, bits 8..15 = CT
0x14    ``TT_COMMIT``  commit the staged entry at ``TT_INDEX``
0x18    ``BBIT_PC``    basic-block start PC being staged
0x1C    ``BBIT_META``  bits 0..7 = TT base index, 8..23 = #instructions
0x20    ``BBIT_COMMIT`` commit the staged BBIT entry
0x24    ``CONTROL``    write 1 to clear both tables
======  =============  ==================================================

Selectors pack 10 bus lines per register at 3 bits each: SEL0 carries
lines 0..9, SEL1 lines 10..19, SEL2 lines 20..29, and the remaining
two selectors (lines 30..31) ride in ``TT_FLAGS`` bits 16..21.
:func:`programming_words` hides the packing; software (and the
generated loader code in ``examples/software_reload.py``) treats it as
a black box.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.program_codec import BlockEncoding
from repro.hw.bbit import BasicBlockIdentificationTable, BBITEntry
from repro.hw.tt import TransformationTable, TTEntry
from repro.sim.memory import MmioRegion

REG_TT_INDEX = 0x00
REG_TT_SEL0 = 0x04
REG_TT_SEL1 = 0x08
REG_TT_SEL2 = 0x0C
REG_TT_FLAGS = 0x10
REG_TT_COMMIT = 0x14
REG_BBIT_PC = 0x18
REG_BBIT_META = 0x1C
REG_BBIT_COMMIT = 0x20
REG_CONTROL = 0x24

WINDOW_SIZE = 0x28

#: Conventional base address for the peripheral window (unused RAM
#: region well away from text/data/stack).
DEFAULT_BASE = 0x90000000


def _pack_selectors(selectors: list[int]) -> tuple[int, int, int, int]:
    """Pack 32 3-bit selectors into (SEL0, SEL1, SEL2, extra).

    SEL0: lines 0..9, SEL1: lines 10..19, SEL2: lines 20..29;
    ``extra`` carries lines 30..31 (placed in TT_FLAGS bits 16..21).
    """
    if len(selectors) != 32:
        raise ValueError(f"expected 32 selectors, got {len(selectors)}")
    words = []
    for group in range(3):
        word = 0
        for i in range(10):
            word |= (selectors[10 * group + i] & 7) << (3 * i)
        words.append(word)
    extra = (selectors[30] & 7) | ((selectors[31] & 7) << 3)
    return words[0], words[1], words[2], extra


def _unpack_selectors(sel0: int, sel1: int, sel2: int, extra: int) -> list[int]:
    selectors = []
    for word in (sel0, sel1, sel2):
        for i in range(10):
            selectors.append((word >> (3 * i)) & 7)
    selectors.append(extra & 7)
    selectors.append((extra >> 3) & 7)
    return selectors


@dataclass
class _Staging:
    tt_index: int = 0
    sel: tuple[int, int, int] = (0, 0, 0)
    flags: int = 0
    bbit_pc: int = 0
    bbit_meta: int = 0


class EncodingLoaderPeripheral:
    """MMIO front-end that programs a TT and a BBIT.

    Attach to a simulator memory with :meth:`region` + ``add_mmio``;
    the application then programs its own decode tables with plain
    ``sw`` instructions (the paper's software-reload alternative).
    """

    def __init__(
        self,
        tt: TransformationTable | None = None,
        bbit: BasicBlockIdentificationTable | None = None,
        base: int = DEFAULT_BASE,
    ):
        self.tt = tt if tt is not None else TransformationTable(16)
        self.bbit = bbit if bbit is not None else BasicBlockIdentificationTable(16)
        self.base = base
        self._staging = _Staging()
        self._entries: dict[int, TTEntry] = {}
        self.commits = 0

    # ------------------------------------------------------------------
    # MMIO handlers
    # ------------------------------------------------------------------

    def region(self) -> MmioRegion:
        return MmioRegion(
            self.base, WINDOW_SIZE, read_u32=self._read, write_u32=self._write
        )

    def _read(self, offset: int) -> int:
        if offset == REG_TT_INDEX:
            return self._staging.tt_index
        if offset == REG_CONTROL:
            return len(self.tt.entries) | (len(self.bbit) << 8)
        return 0

    def _write(self, offset: int, value: int) -> None:
        staging = self._staging
        if offset == REG_TT_INDEX:
            staging.tt_index = value & 0xFF
        elif offset == REG_TT_SEL0:
            staging.sel = (value, staging.sel[1], staging.sel[2])
        elif offset == REG_TT_SEL1:
            staging.sel = (staging.sel[0], value, staging.sel[2])
        elif offset == REG_TT_SEL2:
            staging.sel = (staging.sel[0], staging.sel[1], value)
        elif offset == REG_TT_FLAGS:
            staging.flags = value
        elif offset == REG_TT_COMMIT:
            self._commit_tt_entry()
        elif offset == REG_BBIT_PC:
            staging.bbit_pc = value
        elif offset == REG_BBIT_META:
            staging.bbit_meta = value
        elif offset == REG_BBIT_COMMIT:
            self.bbit.install(
                BBITEntry(
                    pc=staging.bbit_pc,
                    tt_index=staging.bbit_meta & 0xFF,
                    num_instructions=(staging.bbit_meta >> 8) & 0xFFFF,
                )
            )
            self.commits += 1
        elif offset == REG_CONTROL:
            if value & 1:
                self.tt.clear()
                self.bbit.clear()
                self._entries.clear()

    def _commit_tt_entry(self) -> None:
        staging = self._staging
        extra = (staging.flags >> 16) & 0x3F
        selectors = _unpack_selectors(*staging.sel, extra)
        entry = TTEntry(
            selectors=tuple(selectors),
            end=bool(staging.flags & 1),
            count=(staging.flags >> 8) & 0xFF,
        )
        # write() pads any gap with identity rows and keeps the row's
        # parity word in sync (TableCapacityError subclasses ValueError,
        # so software sees the same failure mode as before).
        self.tt.write(staging.tt_index, entry)
        self.commits += 1


def programming_words(
    encodings: list[tuple[int, BlockEncoding]],
    tt_base_index: int = 0,
) -> list[tuple[int, int]]:
    """The (register offset, value) store sequence that programs the
    peripheral for a set of basic blocks.

    ``encodings`` is a list of (block start PC, encoding).  This is
    what a compiler would bake into the application prologue — see
    ``examples/software_reload.py`` for the generated assembly.
    """
    stores: list[tuple[int, int]] = []
    tt_index = tt_base_index
    for pc, encoding in encodings:
        base_for_block = tt_index
        bounds = encoding.bounds
        for row, (start, seg_len) in zip(encoding.selectors(), bounds):
            sel0, sel1, sel2, extra = _pack_selectors(list(row))
            is_tail = start + seg_len >= len(encoding.original_words)
            count = (
                (seg_len if start == 0 else seg_len - 1) if is_tail else 0
            )
            flags = (1 if is_tail else 0) | (count << 8) | (extra << 16)
            stores += [
                (REG_TT_INDEX, tt_index),
                (REG_TT_SEL0, sel0),
                (REG_TT_SEL1, sel1),
                (REG_TT_SEL2, sel2),
                (REG_TT_FLAGS, flags),
                (REG_TT_COMMIT, 1),
            ]
            tt_index += 1
        stores += [
            (REG_BBIT_PC, pc),
            (REG_BBIT_META, base_for_block | (len(encoding.original_words) << 8)),
            (REG_BBIT_COMMIT, 1),
        ]
    return stores
