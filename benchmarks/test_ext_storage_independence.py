"""Section 8 claim: "the type of storage bears no impact on the bit
transition reductions we attain."

Runs one benchmark's trace through instruction caches of very
different geometries and checks the CPU-side transitions (baseline and
encoded) are bit-identical to the cacheless counts — plus the bonus
the paper hints at for off-chip memories: the refill bus carries the
encoded image too, so a thrashing cache's memory-side traffic also
shrinks.
"""

from repro.pipeline.flow import EncodingFlow
from repro.sim.cpu import run_program
from repro.sim.icache import InstructionCache, simulate_cache_buses
from repro.workloads.registry import build_workload

GEOMETRIES = (
    ("tiny direct-mapped", {"size_bytes": 128, "line_bytes": 16, "associativity": 1}),
    ("1 KiB 2-way", {"size_bytes": 1024, "line_bytes": 16, "associativity": 2}),
    ("8 KiB 4-way", {"size_bytes": 8192, "line_bytes": 32, "associativity": 4}),
)


def _run():
    workload = build_workload("tri", n=64, sweeps=6)
    program = workload.assemble()
    cpu, trace = run_program(program)
    workload.verify(cpu)
    result = EncodingFlow(block_size=5).run(program, trace, "tri")
    rows = []
    for label, geometry in GEOMETRIES:
        base = simulate_cache_buses(
            InstructionCache(**geometry),
            trace,
            list(program.words),
            program.text_base,
        )
        enc = simulate_cache_buses(
            InstructionCache(**geometry),
            trace,
            result.encoded_image,
            program.text_base,
        )
        rows.append((label, base, enc))
    return result, rows


def test_ext_storage_independence(benchmark, record_result):
    result, rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    for label, base, enc in rows:
        # CPU-side transitions are exactly the cacheless counts, for
        # both images, under every geometry — the paper's claim.
        assert base.cpu_side_transitions == result.baseline_transitions, label
        assert enc.cpu_side_transitions == result.encoded_transitions, label
        # Same trace -> same miss pattern regardless of image.
        assert base.stats.misses == enc.stats.misses
        # Where refills happen, the encoded image helps there too.
        if base.stats.misses > 100:
            assert enc.refill_transitions < base.refill_transitions

    lines = [
        "Section 8 — storage independence (tri benchmark, k=5)",
        "",
        f"cacheless CPU-side transitions: baseline "
        f"{result.baseline_transitions}, encoded "
        f"{result.encoded_transitions} "
        f"({result.reduction_percent:.1f}% reduction)",
        "",
        f"{'cache':22s} {'hit rate':>8s} {'refill base':>12s} "
        f"{'refill enc':>11s} {'refill red%':>11s}",
    ]
    for label, base, enc in rows:
        red = (
            100.0
            * (base.refill_transitions - enc.refill_transitions)
            / base.refill_transitions
            if base.refill_transitions
            else 0.0
        )
        lines.append(
            f"{label:22s} {base.stats.hit_rate:7.1%} "
            f"{base.refill_transitions:12d} {enc.refill_transitions:11d} "
            f"{red:10.1f}%"
        )
    lines += [
        "",
        "CPU-side reductions identical under every geometry (claim "
        "verified); the refill bus benefits wherever misses occur",
    ]
    record_result("ext_storage_independence", "\n".join(lines))
