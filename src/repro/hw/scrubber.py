"""Background scrubbing for the decode-table SRAMs.

SEC-DED (see :mod:`repro.hw.integrity`) corrects one flipped bit per
row — but only per *accumulation window*: two soft errors landing in
the same row between reads become uncorrectable.  Real table memories
therefore pair the code with a **scrubber**, a background walker that
re-reads every row on a fixed cadence so single-bit upsets are cleaned
long before a second one can join them.

:class:`TableScrubber` models exactly that:

* :meth:`TableScrubber.tick` advances a cycle counter; every
  ``cadence`` ticks it triggers a full :meth:`TableScrubber.sweep`.
* A sweep walks every TT row and every BBIT row, correcting single-bit
  errors in place (the tables count them in ``ecc_corrections`` /
  ``hw.ecc_corrections``) and quarantining uncorrectable rows.
* With a golden :class:`~repro.pipeline.bundle.EncodingBundle`
  attached — the bundle the tables were built from — quarantined rows
  are **repaired** from the bundle instead of staying dead, and the
  BBIT is additionally cross-checked against the bundle's row set, so
  even an aliased multi-bit corruption (one that fooled the code) or a
  stale CAM tag is caught and rewritten.
* When a :class:`~repro.hw.fetch_decoder.FetchDecoder` is attached and
  a repairing sweep leaves no quarantined rows, the decoder's demoted
  (degraded) blocks are re-armed via ``restore_degraded``.

Each sweep is summarised in a :class:`ScrubReport` and counted on the
metrics registry (``hw.scrub_sweeps``, ``hw.scrub_rows_checked``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.bbit import BasicBlockIdentificationTable, BBITEntry
from repro.hw.tt import TransformationTable, TTEntry
from repro.obs import OBS

DEFAULT_CADENCE = 64


@dataclass
class ScrubReport:
    """Outcome tallies for one sweep (or a merged run of sweeps)."""

    rows_checked: int = 0
    corrected: int = 0
    quarantined: int = 0
    repaired: int = 0
    dropped: int = 0
    restored_addresses: int = 0

    def merge(self, other: "ScrubReport") -> "ScrubReport":
        for key in vars(self):
            setattr(self, key, getattr(self, key) + getattr(other, key))
        return self

    def to_dict(self) -> dict:
        return dict(vars(self))


@dataclass
class TableScrubber:
    """Cadenced SEC-DED sweep over one TT/BBIT pair.

    ``bundle`` (optional) must be the golden
    :class:`~repro.pipeline.bundle.EncodingBundle` the tables were
    materialised from (``build_tables`` installs rows in bundle list
    order, so TT row ``i`` corresponds to ``bundle.tt_entries[i]``).
    """

    tt: TransformationTable
    bbit: BasicBlockIdentificationTable
    cadence: int = DEFAULT_CADENCE
    bundle: object | None = None
    decoder: object | None = None
    sweeps: int = 0
    _cycles: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.cadence < 1:
            raise ValueError("scrub cadence must be >= 1")

    def attach_bundle(self, bundle) -> None:
        """Arm golden-repair using the bundle the tables came from."""
        self.bundle = bundle

    def attach_decoder(self, decoder) -> None:
        """Let clean repair sweeps re-arm the decoder's demoted blocks."""
        self.decoder = decoder

    def tick(self, cycles: int = 1) -> ScrubReport | None:
        """Advance the cycle counter; runs a sweep (returning its
        report) each time the cadence elapses, else returns None."""
        if cycles < 0:
            raise ValueError("cycles must be >= 0")
        self._cycles += cycles
        report: ScrubReport | None = None
        while self._cycles >= self.cadence:
            self._cycles -= self.cadence
            swept = self.sweep()
            report = swept if report is None else report.merge(swept)
        return report

    # ------------------------------------------------------------------

    def _golden_tt_entry(self, index: int) -> TTEntry | None:
        if self.bundle is None:
            return None
        entries = self.bundle.tt_entries
        if index >= len(entries):
            return None
        raw = entries[index]
        return TTEntry(
            selectors=tuple(raw["selectors"]),
            end=bool(raw["end"]),
            count=int(raw["count"]),
        )

    def _golden_bbit_rows(self) -> dict[int, BBITEntry] | None:
        if self.bundle is None:
            return None
        return {
            int(raw["pc"]): BBITEntry(
                pc=int(raw["pc"]),
                tt_index=int(raw["tt_index"]),
                num_instructions=int(raw["num_instructions"]),
            )
            for raw in self.bundle.bbit_entries
        }

    def sweep(self) -> ScrubReport:
        """Walk every row of both tables once."""
        report = ScrubReport()
        self._sweep_tt(report)
        self._sweep_bbit(report)
        self.sweeps += 1
        if (
            self.decoder is not None
            and self.bundle is not None
            and not self.tt.quarantined
            and not self.bbit.quarantined
        ):
            report.restored_addresses += self.decoder.restore_degraded()
        if OBS.enabled:
            OBS.registry.counter(
                "hw.scrub_sweeps", "full table scrub sweeps"
            ).inc()
            OBS.registry.counter(
                "hw.scrub_rows_checked", "table rows walked by the scrubber"
            ).inc(report.rows_checked)
        return report

    def _sweep_tt(self, report: ScrubReport) -> None:
        for index in range(len(self.tt.entries)):
            was_quarantined = index in self.tt.quarantined
            status = self.tt.check_row(index)
            report.rows_checked += 1
            if status == "corrected":
                report.corrected += 1
            elif status == "quarantined":
                if not was_quarantined:
                    report.quarantined += 1
                golden = self._golden_tt_entry(index)
                if golden is not None:
                    self.tt.repair_row(index, golden)
                    report.repaired += 1

    def _sweep_bbit(self, report: ScrubReport) -> None:
        golden = self._golden_bbit_rows()
        for pc in list(self.bbit._by_pc) + [
            pc for pc in self.bbit.quarantined if pc not in self.bbit._by_pc
        ]:
            was_quarantined = pc in self.bbit.quarantined
            status = self.bbit.check_row(pc)
            report.rows_checked += 1
            if status == "corrected":
                report.corrected += 1
            elif status == "quarantined":
                if not was_quarantined:
                    report.quarantined += 1
                if golden is not None:
                    if pc in golden:
                        self.bbit.repair_row(golden[pc])
                        report.repaired += 1
                    else:
                        # No golden row under this tag: the tag itself
                        # is corrupt; drop it (the true row is restored
                        # by the cross-check below).
                        self.bbit.drop_row(pc)
                        report.dropped += 1
        if golden is None:
            return
        # Cross-check against the golden row set: catches aliased
        # multi-bit corruptions that still satisfy the code, and stale
        # CAM tags that moved a consistent row under the wrong key.
        for pc in list(self.bbit._by_pc):
            if pc not in golden:
                self.bbit.drop_row(pc)
                report.dropped += 1
        for pc, entry in golden.items():
            stored = self.bbit.peek(pc)
            if stored != entry:
                self.bbit.repair_row(entry)
                report.repaired += 1
