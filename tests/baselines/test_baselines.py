"""Tests for the related-work baseline encoders.

Input generation lives in :mod:`tests.strategies` (the same
distributions the ``repro verify`` campaign draws from): hypothesis
property tests use ``fetch_word_streams``/``instruction_words``, plain
tests take the seeded factory fixtures from ``conftest``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bus_invert import (
    BusInvertCoder,
    BusInvertEncoder,
    bus_invert_transitions,
)
from repro.baselines.frequency import FrequencyEncoder, FrequencyRemapper
from repro.baselines.gray import gray_decode, gray_encode, gray_transitions
from repro.baselines.t0 import (
    T0Coder,
    T0Encoder,
    raw_address_transitions,
    t0_transitions,
)

from tests.strategies import fetch_word_streams, instruction_words

MASK32 = (1 << 32) - 1


class TestBusInvert:
    def test_inversion_triggers_above_half(self):
        coder = BusInvertCoder(width=8)
        coder.reset(initial_word=0x00)
        driven, invert = coder.send(0xFF)  # distance 8 > 4 -> invert
        assert invert == 1
        assert driven == 0x00
        # 0 bus transitions + 1 invert-line transition
        assert coder.transitions == 1

    def test_no_inversion_below_half(self):
        coder = BusInvertCoder(width=8)
        coder.reset(initial_word=0x00)
        driven, invert = coder.send(0x03)
        assert invert == 0 and driven == 0x03
        assert coder.transitions == 2

    def test_decode_restores(self, seeded_words):
        coder = BusInvertCoder(width=8)
        for word in [w & 0xFF for w in seeded_words("bi-decode", 100)]:
            driven, invert = coder.send(word)
            assert BusInvertCoder.decode(driven, invert, width=8) == word

    @given(instruction_words)
    @settings(max_examples=100)
    def test_worst_case_bound(self, words):
        # Per transfer: at most width/2 line transitions + 1 invert.
        coder = BusInvertCoder(width=32)
        coder.reset(initial_word=words[0])
        before = 0
        for word in words[1:]:
            coder.send(word)
            assert coder.transitions - before <= 17
            before = coder.transitions

    @given(fetch_word_streams())
    @settings(max_examples=100)
    def test_never_worse_than_raw_plus_signal(self, words):
        raw = sum(
            (a ^ b).bit_count() for a, b in zip(words, words[1:])
        )
        encoded = bus_invert_transitions(words)
        # The invert line can add at most one transition per transfer.
        assert encoded <= raw + max(0, len(words) - 1)

    @given(fetch_word_streams())
    @settings(max_examples=100)
    def test_invert_bit_consistency(self, words):
        """The driven word is the original or its complement exactly
        as the packed invert bit (line 32) says, and the decision is
        the Stan/Burleson rule: invert iff more than half the lines
        would toggle against the previously *driven* word."""
        encoder = BusInvertEncoder().fit(words)
        stream = encoder.encode(words)
        prev_driven = None
        for word, packed in zip(words, stream.driven):
            word &= MASK32
            invert = (packed >> 32) & 1
            driven = packed & MASK32
            if invert:
                assert driven == word ^ MASK32
            else:
                assert driven == word
            if prev_driven is not None:
                distance = (word ^ prev_driven).bit_count()
                assert invert == (1 if distance > 16 else 0)
            assert BusInvertCoder.decode(driven, invert, width=32) == word
            prev_driven = driven
        assert encoder.decode(stream) == [w & MASK32 for w in words]


class TestT0:
    def test_sequential_stream_freezes_bus(self):
        addresses = [0x400000 + 4 * i for i in range(100)]
        # Only the initial rise of the increment line toggles; the
        # address lines never move.
        assert t0_transitions(addresses) <= 1

    def test_branch_costs_transitions(self):
        addresses = [0x400000, 0x400004, 0x400100]
        assert t0_transitions(addresses) > 0

    def test_t0_beats_raw_on_sequential(self):
        addresses = [0x400000 + 4 * i for i in range(64)]
        assert t0_transitions(addresses) < raw_address_transitions(addresses)

    def test_frozen_counter(self):
        coder = T0Coder()
        coder.reset(0x100)
        coder.send(0x104)
        coder.send(0x108)
        coder.send(0x200)
        assert coder.frozen_transfers == 2

    def test_empty(self):
        assert t0_transitions([]) == 0
        assert bus_invert_transitions([]) == 0

    @given(
        st.integers(min_value=0, max_value=MASK32 - 4 * 40),
        st.integers(min_value=2, max_value=40),
    )
    @settings(max_examples=60)
    def test_sequential_run_compression(self, base, length):
        """Inside a sequential run the T0 bus is frozen: every packed
        transfer after the first re-drives the same address lines with
        the inc bit high, so the whole run costs at most one toggle
        (the inc line's initial rise)."""
        base &= ~0x3
        addresses = [base + 4 * i for i in range(length)]
        encoder = T0Encoder().fit(addresses)
        stream = encoder.encode(addresses)
        assert stream.transitions() <= 1
        # Every non-first transfer rides the increment line.
        for packed in stream.driven[1:]:
            assert (packed >> 32) & 1 == 1
        assert encoder.decode(stream) == addresses

    @given(fetch_word_streams())
    @settings(max_examples=60)
    def test_t0_roundtrip_on_arbitrary_streams(self, words):
        encoder = T0Encoder().fit(words)
        assert encoder.decode(encoder.encode(words)) == [
            w & MASK32 for w in words
        ]


class TestGray:
    @given(st.integers(min_value=0, max_value=(1 << 30) - 1))
    def test_roundtrip(self, value):
        assert gray_decode(gray_encode(value)) == value

    @given(st.integers(min_value=0, max_value=(1 << 30) - 2))
    def test_adjacent_differ_in_one_bit(self, value):
        a, b = gray_encode(value), gray_encode(value + 1)
        assert (a ^ b).bit_count() == 1

    def test_sequential_stream_one_transition_per_fetch(self):
        addresses = [4 * i for i in range(100)]
        assert gray_transitions(addresses) == 99


class TestFrequencyRemapper:
    def test_fit_assigns_small_codes_to_frequent_words(self):
        words = [0xAAAAAAAA] * 100 + [0x55555555] * 50 + [0x12345678] * 10
        remapper = FrequencyRemapper().fit(words)
        code_a, escape_a = remapper.encode(0xAAAAAAAA)
        assert escape_a == 0
        assert code_a == 0  # most frequent gets the all-zero code

    def test_unknown_word_escapes(self):
        remapper = FrequencyRemapper().fit([1, 2, 3])
        word, escape = remapper.encode(0xDEAD)
        assert word == 0xDEAD and escape == 1

    def test_transitions_reduced_on_skewed_stream(self, seeded_hot_words):
        words = seeded_hot_words("freq-skew", 2000, alphabet=4, noise=0.0)
        remapper = FrequencyRemapper().fit(words)
        raw = sum((a ^ b).bit_count() for a, b in zip(words, words[1:]))
        assert remapper.transitions(words) < raw

    def test_dictionary_cost_reported(self):
        remapper = FrequencyRemapper(max_entries=8).fit(list(range(20)))
        assert remapper.dictionary_bits == 8 * 64

    def test_capacity_respected(self):
        remapper = FrequencyRemapper(max_entries=4).fit(list(range(100)))
        assert len(remapper.mapping) == 4

    @given(fetch_word_streams())
    @settings(max_examples=100)
    def test_remap_bijectivity(self, words):
        """The fitted dictionary is injective in both directions —
        distinct hot words get distinct codes, no code collides with
        another, so the escape-tagged channel decodes uniquely."""
        encoder = FrequencyEncoder().fit(words)
        mapping = encoder._remapper.mapping
        codes = list(mapping.values())
        assert len(set(mapping)) == len(mapping)
        assert len(set(codes)) == len(codes)
        stream = encoder.encode(words)
        assert encoder.decode(stream) == [w & MASK32 for w in words]
        # Escape bit discriminates: unescaped transfers carry a code
        # in the dictionary's image, escaped transfers the raw word.
        code_image = set(codes)
        for word, packed in zip(words, stream.driven):
            escape = (packed >> 32) & 1
            driven = packed & MASK32
            if escape:
                assert driven == word & MASK32
            else:
                assert driven in code_image
