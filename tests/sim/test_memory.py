"""Tests for the paged memory."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.memory import PAGE_SIZE, Memory


class TestScalarAccess:
    def test_u8(self):
        mem = Memory()
        mem.write_u8(100, 0xAB)
        assert mem.read_u8(100) == 0xAB

    def test_u32_little_endian(self):
        mem = Memory()
        mem.write_u32(0, 0x12345678)
        assert mem.read_u8(0) == 0x78
        assert mem.read_u8(3) == 0x12
        assert mem.read_u32(0) == 0x12345678

    def test_u16(self):
        mem = Memory()
        mem.write_u16(10, 0xBEEF)
        assert mem.read_u16(10) == 0xBEEF

    def test_signed_reads(self):
        mem = Memory()
        mem.write_u8(0, 0xFF)
        assert mem.read_s8(0) == -1
        mem.write_u16(2, 0x8000)
        assert mem.read_s16(2) == -0x8000

    def test_f64(self):
        mem = Memory()
        mem.write_f64(8, 3.141592653589793)
        assert mem.read_f64(8) == 3.141592653589793

    def test_f32(self):
        mem = Memory()
        mem.write_f32(4, 1.5)
        assert mem.read_f32(4) == 1.5

    def test_default_zero(self):
        mem = Memory()
        assert mem.read_u32(0xDEAD0000) == 0


class TestPageBoundaries:
    def test_u32_across_page(self):
        mem = Memory()
        address = PAGE_SIZE - 2
        mem.write_u32(address, 0xCAFEBABE)
        assert mem.read_u32(address) == 0xCAFEBABE

    def test_bytes_across_pages(self):
        mem = Memory()
        data = bytes(range(256)) * 20  # > one page
        mem.write_bytes(PAGE_SIZE - 100, data)
        assert mem.read_bytes(PAGE_SIZE - 100, len(data)) == data

    def test_f64_across_page(self):
        mem = Memory()
        address = PAGE_SIZE - 4
        mem.write_f64(address, -2.5)
        assert mem.read_f64(address) == -2.5

    def test_page_allocation_is_lazy(self):
        mem = Memory()
        assert mem.allocated_pages == 0
        mem.write_u8(0, 1)
        mem.write_u8(10 * PAGE_SIZE, 1)
        assert mem.allocated_pages == 2


class TestCString:
    def test_read(self):
        mem = Memory()
        mem.write_bytes(50, b"hello\x00world")
        assert mem.read_cstring(50) == "hello"

    def test_limit(self):
        mem = Memory()
        mem.write_bytes(0, b"x" * 100)
        assert len(mem.read_cstring(0, limit=10)) == 10


class TestProperties:
    @given(
        st.integers(min_value=0, max_value=(1 << 24)),
        st.integers(min_value=0, max_value=(1 << 32) - 1),
    )
    def test_u32_roundtrip(self, address, value):
        mem = Memory()
        mem.write_u32(address, value)
        assert mem.read_u32(address) == value

    @given(st.floats(allow_nan=False), st.integers(min_value=0, max_value=1 << 20))
    def test_f64_roundtrip(self, value, address):
        mem = Memory()
        mem.write_f64(address, value)
        assert mem.read_f64(address) == value
