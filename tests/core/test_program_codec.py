"""Tests for vertical per-bus-line encoding of instruction blocks."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitstream import word_column
from repro.core.program_codec import (
    BlockEncoding,
    decode_basic_block,
    encode_basic_block,
    tt_entries_required,
)
from repro.core.stream_codec import encode_stream

word_lists = st.lists(
    st.integers(min_value=0, max_value=(1 << 32) - 1), min_size=1, max_size=30
)


class TestRoundTrip:
    @given(word_lists, st.integers(min_value=2, max_value=7))
    @settings(max_examples=100, deadline=None)
    def test_decode_restores_words(self, words, block_size):
        encoding = encode_basic_block(words, block_size)
        assert decode_basic_block(encoding) == words

    def test_empty_block(self):
        encoding = encode_basic_block([], 5)
        assert encoding.encoded_words == ()
        assert decode_basic_block(encoding) == []

    def test_single_instruction_block(self):
        encoding = encode_basic_block([0xDEADBEEF], 5)
        assert encoding.encoded_words == (0xDEADBEEF,)
        assert encoding.num_segments == 1
        assert all(t.is_identity for t in encoding.segment_plans[0])


class TestTransitionAccounting:
    @given(word_lists, st.integers(min_value=4, max_value=7))
    @settings(max_examples=60, deadline=None)
    def test_never_worse(self, words, block_size):
        encoding = encode_basic_block(words, block_size)
        assert encoding.encoded_transitions <= encoding.original_transitions

    def test_word_transitions_equal_column_sums(self):
        rng = random.Random(5)
        words = [rng.getrandbits(32) for _ in range(20)]
        encoding = encode_basic_block(words, 5)
        per_column = sum(
            encode_stream(word_column(words, b), 5).encoded_transitions
            for b in range(32)
        )
        assert encoding.encoded_transitions == per_column

    def test_loop_like_code_reduces_well(self):
        # A register-stepping loop body: high vertical regularity.
        base = 0x8C880000  # lw-style opcode
        words = [base | (i & 0x1F) << 16 | (i * 4) & 0xFFFF for i in range(16)]
        encoding = encode_basic_block(words, 5)
        assert encoding.reduction_percent > 20.0

    def test_reduction_percent_zero_guard(self):
        encoding = encode_basic_block([7, 7, 7, 7], 4)
        assert encoding.original_transitions == 0
        assert encoding.reduction_percent == 0.0


class TestSegmentPlans:
    def test_plan_shape(self):
        words = list(range(12))
        encoding = encode_basic_block(words, 5)
        assert encoding.num_segments == len(encoding.bounds)
        for plan in encoding.segment_plans:
            assert len(plan) == 32

    def test_selectors_within_three_bits(self):
        rng = random.Random(11)
        words = [rng.getrandbits(32) for _ in range(17)]
        encoding = encode_basic_block(words, 6)
        for row in encoding.selectors():
            for selector in row:
                assert 0 <= selector < 8

    def test_selectors_reject_unmapped_transformations(self):
        from repro.core.transformations import ALL_TRANSFORMATIONS, by_name

        words = [0b100, 0b010, 0b100, 0b001, 0b111]
        encoding = encode_basic_block(words, 5, transformations=ALL_TRANSFORMATIONS)
        has_unmapped = any(
            t.selector is None
            for plan in encoding.segment_plans
            for t in plan
        )
        if has_unmapped:
            with pytest.raises(ValueError):
                encoding.selectors()
        else:
            encoding.selectors()  # must not raise

    def test_word_width_validation(self):
        with pytest.raises(ValueError):
            encode_basic_block([1 << 32], 5)
        with pytest.raises(ValueError):
            encode_basic_block([-1], 5)


class TestTtCapacityAccounting:
    def test_paper_sizing_example(self):
        # Section 7.2: "if the low-power code utilizes sequences of
        # size 7, then a 16 entry TT can handle a total of 7 * 16 = 112
        # instructions".  With the one-bit overlap each non-initial
        # entry contributes k-1 new instructions, so 16 entries cover
        # 1 + 16 * 6 = 97 instructions; we assert our accounting.
        assert tt_entries_required(7, 7) == 1
        assert tt_entries_required(97, 7) == 16

    @pytest.mark.parametrize(
        "instructions,block_size,expected",
        [(1, 5, 1), (2, 5, 1), (5, 5, 1), (6, 5, 2), (9, 5, 2), (10, 5, 3)],
    )
    def test_entry_counts(self, instructions, block_size, expected):
        assert tt_entries_required(instructions, block_size) == expected

    def test_matches_actual_encoding(self):
        for m in range(1, 40):
            for k in (4, 5, 6, 7):
                words = [(m * 37 + i) & 0xFFFFFFFF for i in range(m)]
                encoding = encode_basic_block(words, k)
                assert encoding.num_segments == tt_entries_required(m, k)


class TestNarrowBuses:
    def test_width_16(self):
        words = [i & 0xFFFF for i in range(100, 120)]
        encoding = encode_basic_block(words, 5, width=16)
        assert decode_basic_block(encoding) == words
        for plan in encoding.segment_plans:
            assert len(plan) == 16

    def test_width_8_roundtrip(self):
        words = [0xA5, 0x5A, 0xFF, 0x00, 0x81]
        encoding = encode_basic_block(words, 4, width=8)
        assert decode_basic_block(encoding) == words
