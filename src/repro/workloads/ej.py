"""Extrapolated Jacobi iteration (``ej``) — reference [9] in the paper.

Weighted-Jacobi sweeps on a 5-point stencil with double buffering:

    v[i][j] = (1 - w) * u[i][j] + (w/4) * (u[i-1][j] + u[i+1][j]
                                            + u[i][j-1] + u[i][j+1])

then the roles of ``u`` and ``v`` swap (pointer swap, no copying).
The paper uses a 128x128 grid; the default here is 32x32.
"""

from __future__ import annotations

from repro.workloads.common import (
    Workload,
    assert_close,
    format_doubles,
    pseudo_values,
    read_doubles,
)

DEFAULT_N = 32
DEFAULT_SWEEPS = 6
W = 0.8


def _reference(u0: list[float], n: int, sweeps: int, w: float) -> list[float]:
    u = list(u0)
    v = list(u0)  # boundary cells keep their initial values
    for _ in range(sweeps):
        for i in range(1, n - 1):
            for j in range(1, n - 1):
                idx = i * n + j
                v[idx] = (1.0 - w) * u[idx] + (w / 4.0) * (
                    u[idx - n] + u[idx + n] + u[idx - 1] + u[idx + 1]
                )
        u, v = v, u
    return u


def build(n: int = DEFAULT_N, sweeps: int = DEFAULT_SWEEPS) -> Workload:
    """Build the ej workload on an ``n`` x ``n`` grid."""
    if n < 3:
        raise ValueError(f"grid must be at least 3x3, got {n}")
    u0 = pseudo_values(n * n, seed=4)
    expected = _reference(u0, n, sweeps, W)
    # After an even number of sweeps the final values live in U; after
    # an odd number, in V.  Verify whichever buffer is final.
    final_label = "U" if sweeps % 2 == 0 else "V"

    source = f"""
# ej: extrapolated (weighted) Jacobi, {n}x{n} grid, {sweeps} sweeps
        .data
U:
{format_doubles(u0)}
V:
{format_doubles(u0)}
coef:   .double {1.0 - W!r}, {W / 4.0!r}
        .text
main:
        li    $s0, {n}          # N
        sll   $s4, $s0, 3       # row stride
        la    $s5, U            # src
        la    $s7, V            # dst
        la    $t9, coef
        l.d   $f2, 0($t9)       # 1-w
        l.d   $f14, 8($t9)      # w/4
        li    $s6, 0            # sweep counter
sweep:
        li    $s1, 1            # i
iloop:
        mul   $t5, $s1, $s0
        addiu $t5, $t5, 1
        sll   $t5, $t5, 3
        addu  $t3, $s5, $t5     # &src[i][1]
        addu  $t4, $s7, $t5     # &dst[i][1]
        li    $s2, 1            # j
jloop:
        subu  $t6, $t3, $s4
        l.d   $f6, 0($t6)       # north
        addu  $t6, $t3, $s4
        l.d   $f8, 0($t6)       # south
        l.d   $f10, -8($t3)     # west
        l.d   $f12, 8($t3)      # east
        add.d $f6, $f6, $f8
        add.d $f6, $f6, $f10
        add.d $f6, $f6, $f12
        mul.d $f6, $f6, $f14    # (w/4) * neighbours
        l.d   $f4, 0($t3)
        mul.d $f4, $f4, $f2     # (1-w) * u
        add.d $f4, $f4, $f6
        s.d   $f4, 0($t4)
        addiu $t3, $t3, 8
        addiu $t4, $t4, 8
        addiu $s2, $s2, 1
        addiu $t7, $s0, -1
        bne   $s2, $t7, jloop
        addiu $s1, $s1, 1
        bne   $s1, $t7, iloop
        move  $t5, $s5          # swap src/dst
        move  $s5, $s7
        move  $s7, $t5
        addiu $s6, $s6, 1
        li    $t8, {sweeps}
        bne   $s6, $t8, sweep
        li    $v0, 10
        syscall
"""

    def verify(cpu) -> None:
        measured = read_doubles(cpu, final_label, n * n)
        assert_close(measured, expected, tolerance=1e-12, what="ej grid")

    return Workload(
        name="ej",
        description=f"extrapolated Jacobi, {n}x{n} grid (paper: 128x128)",
        source=source,
        params={"n": n, "sweeps": sweeps, "w": W},
        verify=verify,
    )
