"""Unit tests for the two-input boolean function algebra."""

import pytest

from repro.core.boolfunc import (
    NUM_FUNCTIONS,
    TT_NAND,
    TT_NOR,
    TT_NOT_X,
    TT_NOT_Y,
    TT_ONE,
    TT_X,
    TT_XNOR,
    TT_XOR,
    TT_Y,
    TT_ZERO,
    BoolFunc,
    all_functions,
    compose_history_chain,
    dual,
)


class TestTruthTables:
    def test_sixteen_functions(self):
        assert len(list(all_functions())) == NUM_FUNCTIONS == 16

    def test_identity_returns_x(self):
        f = BoolFunc(TT_X)
        for x in (0, 1):
            for y in (0, 1):
                assert f(x, y) == x

    def test_inversion_returns_not_x(self):
        f = BoolFunc(TT_NOT_X)
        for x in (0, 1):
            for y in (0, 1):
                assert f(x, y) == 1 - x

    def test_history_functions(self):
        y_func = BoolFunc(TT_Y)
        ny_func = BoolFunc(TT_NOT_Y)
        for x in (0, 1):
            for y in (0, 1):
                assert y_func(x, y) == y
                assert ny_func(x, y) == 1 - y

    def test_xor_xnor(self):
        xor = BoolFunc(TT_XOR)
        xnor = BoolFunc(TT_XNOR)
        for x in (0, 1):
            for y in (0, 1):
                assert xor(x, y) == (x ^ y)
                assert xnor(x, y) == 1 - (x ^ y)

    def test_nor_nand(self):
        nor = BoolFunc(TT_NOR)
        nand = BoolFunc(TT_NAND)
        for x in (0, 1):
            for y in (0, 1):
                assert nor(x, y) == (1 - (x | y))
                assert nand(x, y) == (1 - (x & y))

    def test_constants(self):
        zero = BoolFunc(TT_ZERO)
        one = BoolFunc(TT_ONE)
        for x in (0, 1):
            for y in (0, 1):
                assert zero(x, y) == 0
                assert one(x, y) == 1

    def test_out_of_range_truth_table_rejected(self):
        with pytest.raises(ValueError):
            BoolFunc(16)
        with pytest.raises(ValueError):
            BoolFunc(-1)

    def test_names_roundtrip(self):
        for f in all_functions():
            assert BoolFunc.from_name(f.name) == f

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            BoolFunc.from_name("frobnicate")


class TestSolveX:
    def test_identity_forces_x(self):
        f = BoolFunc(TT_X)
        assert f.solve_x(1, 0) == (1,)
        assert f.solve_x(0, 1) == (0,)

    def test_history_function_leaves_x_free_or_impossible(self):
        f = BoolFunc(TT_NOT_Y)
        # ~y with y=0 produces 1 regardless of x.
        assert f.solve_x(1, 0) == (0, 1)
        assert f.solve_x(0, 0) == ()

    def test_xor_forces_unique_x(self):
        f = BoolFunc(TT_XOR)
        for result in (0, 1):
            for y in (0, 1):
                options = f.solve_x(result, y)
                assert len(options) == 1
                assert f(options[0], y) == result

    def test_solve_x_consistency_all_functions(self):
        for f in all_functions():
            for result in (0, 1):
                for y in (0, 1):
                    for x in f.solve_x(result, y):
                        assert f(x, y) == result
                    # No valid x outside the returned options.
                    excluded = set((0, 1)) - set(f.solve_x(result, y))
                    for x in excluded:
                        assert f(x, y) != result


class TestDuality:
    def test_dual_is_involution(self):
        for f in all_functions():
            assert dual(dual(f)) == f

    def test_paper_symmetry_pairs(self):
        # Section 5.2: XOR <-> XNOR, NOR <-> NAND, identity and
        # inversion self-dual.
        assert dual(BoolFunc(TT_XOR)) == BoolFunc(TT_XNOR)
        assert dual(BoolFunc(TT_NOR)) == BoolFunc(TT_NAND)
        assert dual(BoolFunc(TT_X)) == BoolFunc(TT_X)
        assert dual(BoolFunc(TT_NOT_X)) == BoolFunc(TT_NOT_X)

    def test_history_inversion_self_dual(self):
        assert dual(BoolFunc(TT_NOT_Y)) == BoolFunc(TT_NOT_Y)
        assert dual(BoolFunc(TT_Y)) == BoolFunc(TT_Y)

    def test_dual_semantics(self):
        for f in all_functions():
            g = dual(f)
            for x in (0, 1):
                for y in (0, 1):
                    assert g(x, y) == 1 - f(1 - x, 1 - y)


class TestDependencePredicates:
    def test_identity_depends_only_on_x(self):
        f = BoolFunc(TT_X)
        assert f.depends_on_x()
        assert not f.depends_on_y()

    def test_history_depends_only_on_y(self):
        f = BoolFunc(TT_Y)
        assert not f.depends_on_x()
        assert f.depends_on_y()

    def test_constants_depend_on_nothing(self):
        for tt in (TT_ZERO, TT_ONE):
            f = BoolFunc(tt)
            assert not f.depends_on_x()
            assert not f.depends_on_y()

    def test_always_decodable_functions(self):
        decodable = {f.name for f in all_functions() if f.is_decodable()}
        # x, ~x, xor, xnor are bijections in x for every history value.
        assert decodable == {"x", "~x", "xor", "xnor"}


class TestHistoryChain:
    def test_identity_chain_passthrough(self):
        f = BoolFunc(TT_X)
        assert compose_history_chain(f, [1, 0, 1, 1], seed=0) == [1, 0, 1, 1]

    def test_not_y_chain_alternates(self):
        f = BoolFunc(TT_NOT_Y)
        # Output depends only on history: alternation from the seed.
        assert compose_history_chain(f, [0, 0, 0, 0], seed=0) == [1, 0, 1, 0]

    def test_xor_chain_is_transition_signal(self):
        f = BoolFunc(TT_XOR)
        # Stored bits are the transition indicators of the decoded stream.
        stored = [1, 1, 0, 1]
        decoded = compose_history_chain(f, stored, seed=0)
        assert decoded == [1, 0, 0, 1]
