"""Abstract syntax tree for minicc."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------

INT = "int"
DOUBLE = "double"


@dataclass(frozen=True)
class VarDecl:
    """A global declaration: scalar or (up to 2-D) array."""

    name: str
    base_type: str  # INT or DOUBLE
    dims: tuple[int, ...] = ()  # () scalar, (n,), or (rows, cols)

    @property
    def element_size(self) -> int:
        return 4 if self.base_type == INT else 8

    @property
    def element_count(self) -> int:
        count = 1
        for dim in self.dims:
            count *= dim
        return count

    @property
    def byte_size(self) -> int:
        return self.element_size * self.element_count


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IntLit:
    value: int


@dataclass(frozen=True)
class FloatLit:
    value: float


@dataclass(frozen=True)
class VarRef:
    name: str
    indices: tuple["Expr", ...] = ()  # 0, 1 or 2 index expressions


@dataclass(frozen=True)
class Unary:
    op: str  # '-' or '!'
    operand: "Expr"


@dataclass(frozen=True)
class Binary:
    op: str  # + - * / % < <= > >= == != && ||
    left: "Expr"
    right: "Expr"


Expr = Union[IntLit, FloatLit, VarRef, Unary, Binary]

# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Assign:
    target: VarRef
    value: Expr


@dataclass(frozen=True)
class If:
    condition: Expr
    then_body: "Stmt"
    else_body: "Stmt | None" = None


@dataclass(frozen=True)
class While:
    condition: Expr
    body: "Stmt"


@dataclass(frozen=True)
class For:
    init: Assign
    condition: Expr
    step: Assign
    body: "Stmt"


@dataclass(frozen=True)
class Block:
    statements: tuple["Stmt", ...] = ()


Stmt = Union[Assign, If, While, For, Block]


@dataclass(frozen=True)
class Kernel:
    """A parsed program: declarations followed by statements."""

    decls: tuple[VarDecl, ...]
    body: tuple[Stmt, ...]
    decl_by_name: dict[str, VarDecl] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "decl_by_name", {d.name: d for d in self.decls}
        )
