"""Tridiagonal system solver (``tri``) — the Thomas algorithm.

Forward elimination followed by back substitution on a diagonally
dominant system.  The paper solves a 128x128 system; the default here
keeps n = 128 and repeats the solve for several sweeps so the hot
loops dominate the trace the way a 128x128 *matrix* of right-hand
sides would.
"""

from __future__ import annotations

from repro.workloads.common import (
    Workload,
    assert_close,
    format_doubles,
    pseudo_values,
    read_doubles,
)

DEFAULT_N = 128
DEFAULT_SWEEPS = 20


def _reference(
    a: list[float], b: list[float], c: list[float], d: list[float]
) -> list[float]:
    n = len(b)
    cp = [0.0] * n
    dp = [0.0] * n
    cp[0] = c[0] / b[0]
    dp[0] = d[0] / b[0]
    for i in range(1, n):
        m = b[i] - a[i] * cp[i - 1]
        cp[i] = c[i] / m
        dp[i] = (d[i] - a[i] * dp[i - 1]) / m
    x = [0.0] * n
    x[n - 1] = dp[n - 1]
    for i in range(n - 2, -1, -1):
        x[i] = dp[i] - cp[i] * x[i + 1]
    return x


def build(n: int = DEFAULT_N, sweeps: int = DEFAULT_SWEEPS) -> Workload:
    """Build the tri workload for an ``n``-unknown system."""
    if n < 2:
        raise ValueError(f"system size must be >= 2, got {n}")
    sub = [0.0] + [1.0 + v * 0.1 for v in pseudo_values(n - 1, seed=7)]
    main_diag = [4.0 + v * 0.2 for v in pseudo_values(n, seed=8)]
    sup = [1.0 + v * 0.1 for v in pseudo_values(n - 1, seed=9)] + [0.0]
    rhs = pseudo_values(n, seed=10)
    expected = _reference(sub, main_diag, sup, rhs)

    source = f"""
# tri: Thomas tridiagonal solver, n={n}, {sweeps} sweeps
        .data
A:
{format_doubles(sub)}
B:
{format_doubles(main_diag)}
C:
{format_doubles(sup)}
D:
{format_doubles(rhs)}
CP:
        .space {8 * n}
DP:
        .space {8 * n}
X:
        .space {8 * n}
        .text
main:
        li    $s0, {n}
        li    $s6, 0            # sweep counter
sweep:
        la    $t0, A
        la    $t1, B
        la    $t2, C
        la    $t3, D
        la    $t4, CP
        la    $t5, DP
# cp[0] = c[0]/b[0]; dp[0] = d[0]/b[0]
        l.d   $f2, 0($t1)       # b[0]
        l.d   $f4, 0($t2)       # c[0]
        div.d $f4, $f4, $f2
        s.d   $f4, 0($t4)       # cp[0], stays in $f4
        l.d   $f6, 0($t3)       # d[0]
        div.d $f6, $f6, $f2
        s.d   $f6, 0($t5)       # dp[0], stays in $f6
        li    $s1, 1            # i
floop:
        addiu $t0, $t0, 8
        addiu $t1, $t1, 8
        addiu $t2, $t2, 8
        addiu $t3, $t3, 8
        addiu $t4, $t4, 8
        addiu $t5, $t5, 8
        l.d   $f8, 0($t0)       # a[i]
        l.d   $f2, 0($t1)       # b[i]
        mul.d $f10, $f8, $f4    # a[i]*cp[i-1]
        sub.d $f2, $f2, $f10    # m
        l.d   $f4, 0($t2)       # c[i]
        div.d $f4, $f4, $f2     # cp[i]
        s.d   $f4, 0($t4)
        l.d   $f10, 0($t3)      # d[i]
        mul.d $f12, $f8, $f6    # a[i]*dp[i-1]
        sub.d $f10, $f10, $f12
        div.d $f6, $f10, $f2    # dp[i]
        s.d   $f6, 0($t5)
        addiu $s1, $s1, 1
        bne   $s1, $s0, floop
# back substitution
        la    $t4, CP
        la    $t5, DP
        la    $t6, X
        addiu $t7, $s0, -1
        sll   $t8, $t7, 3
        addu  $t4, $t4, $t8     # &cp[n-1]
        addu  $t5, $t5, $t8     # &dp[n-1]
        addu  $t6, $t6, $t8     # &x[n-1]
        l.d   $f4, 0($t5)       # x[n-1] = dp[n-1]
        s.d   $f4, 0($t6)
        move  $s1, $t7          # i+1 counter (runs n-1 .. 1)
bloop:
        addiu $t4, $t4, -8
        addiu $t5, $t5, -8
        addiu $t6, $t6, -8
        l.d   $f6, 0($t4)       # cp[i]
        l.d   $f8, 0($t5)       # dp[i]
        mul.d $f6, $f6, $f4     # cp[i]*x[i+1]
        sub.d $f4, $f8, $f6     # x[i]
        s.d   $f4, 0($t6)
        addiu $s1, $s1, -1
        bnez  $s1, bloop
        addiu $s6, $s6, 1
        li    $t9, {sweeps}
        bne   $s6, $t9, sweep
        li    $v0, 10
        syscall
"""

    def verify(cpu) -> None:
        measured = read_doubles(cpu, "X", n)
        assert_close(measured, expected, tolerance=1e-9, what="tri x")

    return Workload(
        name="tri",
        description=f"Thomas tridiagonal solver, n={n} (paper: 128)",
        source=source,
        params={"n": n, "sweeps": sweeps},
        verify=verify,
    )
