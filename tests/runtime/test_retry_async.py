"""retry_call_async under a real event loop.

Three contracts: the jitter schedule is a pure function of the seed
(identical to the synchronous path's), a task cancelled during the
backoff sleep stops immediately (no further attempts), and plain
coroutines are retried/returned like callables are in retry_call.
"""

import asyncio

import pytest

from repro.runtime import BackoffPolicy, retry_call, retry_call_async


def run(coro):
    return asyncio.run(coro)


class TestAsyncRetry:
    def test_wraps_coroutines(self):
        calls = {"n": 0}

        async def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        async def main():
            return await retry_call_async(
                flaky,
                policy=BackoffPolicy(max_attempts=3, base=0.0),
                seed="s",
                retry_on=(OSError,),
            )

        assert run(main()) == "ok"
        assert calls["n"] == 3

    def test_final_failure_propagates(self):
        async def always_fails():
            raise OSError("still broken")

        async def main():
            await retry_call_async(
                always_fails,
                policy=BackoffPolicy(max_attempts=2, base=0.0),
                retry_on=(OSError,),
            )

        with pytest.raises(OSError, match="still broken"):
            run(main())

    def test_unmatched_exception_is_not_retried(self):
        calls = {"n": 0}

        async def wrong_kind():
            calls["n"] += 1
            raise KeyError("not transient")

        async def main():
            await retry_call_async(
                wrong_kind,
                policy=BackoffPolicy(max_attempts=5, base=0.0),
                retry_on=(OSError,),
            )

        with pytest.raises(KeyError):
            run(main())
        assert calls["n"] == 1

    def test_jitter_schedule_matches_sync_path_per_seed(self):
        policy = BackoffPolicy(base=0.05, factor=2.0, cap=1.0, max_attempts=4)

        def sync_schedule():
            slept, calls = [], {"n": 0}

            def flaky():
                calls["n"] += 1
                if calls["n"] < 4:
                    raise OSError()

            retry_call(
                flaky,
                policy=policy,
                seed="case:9",
                retry_on=(OSError,),
                sleep=slept.append,
            )
            return slept

        def async_schedule():
            slept, calls = [], {"n": 0}

            async def flaky():
                calls["n"] += 1
                if calls["n"] < 4:
                    raise OSError()

            async def fake_sleep(seconds):
                slept.append(seconds)

            async def main():
                await retry_call_async(
                    flaky,
                    policy=policy,
                    seed="case:9",
                    retry_on=(OSError,),
                    sleep=fake_sleep,
                )

            run(main())
            return slept

        schedule = async_schedule()
        assert len(schedule) == 3
        assert schedule == sync_schedule()
        assert schedule == async_schedule()  # deterministic rerun

    def test_cancellation_during_backoff_sleep(self):
        calls = {"n": 0}

        async def flaky():
            calls["n"] += 1
            raise OSError("again")

        async def main():
            task = asyncio.ensure_future(
                retry_call_async(
                    flaky,
                    # A backoff long enough that the cancel always
                    # lands inside the first sleep.
                    policy=BackoffPolicy(base=30.0, cap=30.0, max_attempts=5),
                    seed="cancel",
                    retry_on=(OSError,),
                )
            )
            await asyncio.sleep(0.05)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task

        run(main())
        assert calls["n"] == 1  # no attempt after the cancel

    def test_on_retry_hook_sees_each_attempt(self):
        seen = []

        async def flaky():
            if len(seen) < 2:
                raise ValueError("again")
            return 1

        async def main():
            return await retry_call_async(
                flaky,
                policy=BackoffPolicy(max_attempts=3, base=0.0),
                seed="hook",
                retry_on=(ValueError,),
                on_retry=lambda attempt, delay, err: seen.append(attempt),
            )

        assert run(main()) == 1
        assert seen == [0, 1]
