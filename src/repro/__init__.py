"""Reproduction of *Power Efficiency through Application-Specific
Instruction Memory Transformations* (Petrov & Orailoglu, DATE 2003).

The package is organised as one subpackage per subsystem:

``repro.core``
    The paper's contribution: two-input boolean transformation algebra,
    per-block optimal code-word search, chained overlapped-block stream
    encoding, and the vertical per-bit-line program encoder.
``repro.isa``
    A MIPS-like 32-bit instruction set with a two-pass assembler and a
    disassembler (substitute for the SimpleScalar PISA toolchain).
``repro.sim``
    An in-order functional processor simulator with fetch tracing and a
    bus transition/energy model.
``repro.cfg``
    Control-flow analysis: basic blocks, dominators, natural loops, and
    trace-driven profiling.
``repro.hw``
    Behavioural model of the fetch-side decode hardware (Transformation
    Table, Basic Block Identification Table) and its cost model.
``repro.baselines``
    Bus-encoding baselines from the related work (bus-invert, T0, Gray,
    frequency remapping).
``repro.workloads``
    The paper's six DSP/numerical benchmarks written for our ISA.
``repro.pipeline``
    The end-to-end flow: program -> trace -> hot-spot selection ->
    encoding -> transition measurement -> report.
``repro.obs``
    The shared observability layer: metric families, tracing spans,
    and machine-readable run reports (``RUN_report.json``).
"""

from repro.core.transformations import (
    ALL_TRANSFORMATIONS,
    OPTIMAL_SET,
    Transformation,
)
from repro.core.stream_codec import StreamEncoder, decode_stream, encode_stream
from repro.core.program_codec import encode_basic_block

__version__ = "1.0.0"


_LAZY_EXPORTS = {
    "EncodingFlow": ("repro.pipeline.flow", "EncodingFlow"),
    "FlowResult": ("repro.pipeline.flow", "FlowResult"),
    "RegionalEncodingFlow": ("repro.pipeline.regional", "RegionalEncodingFlow"),
    "EncodingBundle": ("repro.pipeline.bundle", "EncodingBundle"),
    "run_sweep": ("repro.pipeline.experiment", "run_sweep"),
    "compile_kernel": ("repro.minicc", "compile_kernel"),
    "build_workload": ("repro.workloads.registry", "build_workload"),
    "ReproError": ("repro.errors", "ReproError"),
    "CampaignConfig": ("repro.faults", "CampaignConfig"),
    "run_campaign": ("repro.faults", "run_campaign"),
    "FaultCampaignReport": ("repro.faults", "FaultCampaignReport"),
    "OBS": ("repro.obs", "OBS"),
    "MetricsRegistry": ("repro.obs", "MetricsRegistry"),
    "Tracer": ("repro.obs", "Tracer"),
    "RunReport": ("repro.obs", "RunReport"),
}


def __getattr__(name: str):
    # The flow layers pull in every subsystem; import them lazily so
    # the core encoding library stays usable on its own.
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)

__all__ = [
    "ALL_TRANSFORMATIONS",
    "OPTIMAL_SET",
    "Transformation",
    "StreamEncoder",
    "encode_stream",
    "decode_stream",
    "encode_basic_block",
    "EncodingFlow",
    "FlowResult",
    "RegionalEncodingFlow",
    "EncodingBundle",
    "run_sweep",
    "compile_kernel",
    "build_workload",
    "ReproError",
    "CampaignConfig",
    "run_campaign",
    "FaultCampaignReport",
    "OBS",
    "MetricsRegistry",
    "Tracer",
    "RunReport",
    "__version__",
]
