"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in (
            "codebook",
            "theory",
            "streams",
            "encode",
            "suite",
            "cost",
            "bench",
            "faults",
            "metrics",
            "trace",
        ):
            args = parser.parse_args(
                [command] + (["mmul"] if command == "encode" else [])
            )
            assert args.command == command


class TestCommands:
    def test_codebook(self, capsys):
        assert main(["codebook", "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "TTN = 8" in out and "RTN = 2" in out
        assert "000" in out

    def test_codebook_full_search(self, capsys):
        assert main(["codebook", "-k", "4", "--full"]) == 0
        assert "TTN = 24" in capsys.readouterr().out

    def test_theory(self, capsys):
        assert main(["theory", "--sizes", "2", "3"]) == 0
        out = capsys.readouterr().out
        assert "100.0" in out and "75.0" in out

    def test_streams(self, capsys):
        assert main(
            ["streams", "--count", "3", "--length", "300", "-k", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "pooled reduction" in out

    def test_encode(self, capsys):
        assert main(["encode", "lu", "-k", "5"]) == 0
        out = capsys.readouterr().out
        assert "reduction" in out
        assert "verified bit-exact" in out

    def test_encode_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["encode", "quicksort"])

    def test_cost(self, capsys):
        assert main(["cost", "--sizes", "5"]) == 0
        out = capsys.readouterr().out
        assert "TT bits" in out

    def test_module_entry_point(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "theory", "--sizes", "2"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "100.0" in result.stdout


class TestFaultsCommand:
    def test_small_campaign_runs_and_writes_report(self, tmp_path, capsys):
        import json

        report_path = tmp_path / "FAULTS_report.json"
        assert (
            main(
                [
                    "faults",
                    "--workload",
                    "fir",
                    "--seed",
                    "1",
                    "--trials",
                    "1",
                    "--models",
                    "tt_selector_flip",
                    "mid_block_entry",
                    "--check",
                    "--json",
                    str(report_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "tt_selector_flip" in out
        assert "all detected or recovered" in out
        data = json.loads(report_path.read_text())
        assert data["protected_ok"] is True
        assert data["config"]["models"] == ["tt_selector_flip", "mid_block_entry"]
        # One trial x two modes x two models.
        assert len(data["cases"]) == 4

    def test_unknown_model_rejected(self, tmp_path, capsys):
        assert (
            main(
                [
                    "faults",
                    "--models",
                    "cosmic_ray",
                    "--json",
                    str(tmp_path / "r.json"),
                ]
            )
            == 2
        )
        assert "unknown fault model" in capsys.readouterr().err


class TestCompileCommand:
    def test_compile_kernel_file(self, tmp_path, capsys):
        source = tmp_path / "kernel.mc"
        source.write_text(
            "int i; int s;\n"
            "for (i = 0; i < 10; i = i + 1) s = s + i;\n"
        )
        assert main(["compile", str(source), "-k", "4"]) == 0
        out = capsys.readouterr().out
        assert "compiled" in out
        assert "reduction" in out

    def test_show_asm(self, tmp_path, capsys):
        source = tmp_path / "kernel.mc"
        source.write_text("int x; x = 1;")
        assert main(["compile", str(source), "--show-asm"]) == 0
        out = capsys.readouterr().out
        assert ".text" in out

    def test_missing_file(self):
        with pytest.raises(FileNotFoundError):
            main(["compile", "/nonexistent/file.mc"])
