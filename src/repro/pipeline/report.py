"""Figure-6/7 style reporting.

Figure 6 is a table: one column per benchmark, a baseline #TR row
(millions of transitions) and, per block size 4..7, an absolute
encoded count plus a percentage reduction.  Figure 7 plots the same
reductions as grouped bars; :func:`format_fig7_ascii` renders an
equivalent terminal chart.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.pipeline.flow import FlowResult

BLOCK_SIZES = (4, 5, 6, 7)


def fig6_table(
    results: Mapping[str, Mapping[int, FlowResult]],
    benchmarks: Sequence[str] | None = None,
) -> dict:
    """Structured Figure-6 data.

    ``results[benchmark][block_size]`` holds the flow result.  Returns
    ``{"benchmarks": [...], "tr": {...}, "encoded": {k: {...}},
    "reduction": {k: {...}}}`` with transition counts in millions.
    """
    names = list(benchmarks) if benchmarks else list(results)
    table = {
        "benchmarks": names,
        "tr": {},
        "encoded": {k: {} for k in BLOCK_SIZES},
        "reduction": {k: {} for k in BLOCK_SIZES},
    }
    for name in names:
        per_size = results[name]
        any_result = next(iter(per_size.values()))
        table["tr"][name] = any_result.transitions_millions
        for k in BLOCK_SIZES:
            if k not in per_size:
                continue
            result = per_size[k]
            table["encoded"][k][name] = result.encoded_millions
            table["reduction"][k][name] = result.reduction_percent
    return table


def format_fig6(table: dict) -> str:
    """Render the Figure 6 layout."""
    names = table["benchmarks"]
    width = max(8, max(len(n) for n in names) + 2)
    header = "              " + "".join(f"{n:>{width}}" for n in names)
    lines = [header, "-" * len(header)]
    lines.append(
        "#TR           "
        + "".join(f"{table['tr'][n]:>{width}.3f}" for n in names)
    )
    for k in BLOCK_SIZES:
        if not table["encoded"][k]:
            continue
        lines.append(
            f"#{k}-block      "
            + "".join(
                f"{table['encoded'][k].get(n, float('nan')):>{width}.3f}"
                for n in names
            )
        )
        lines.append(
            "Reduction(%)  "
            + "".join(
                f"{table['reduction'][k].get(n, float('nan')):>{width}.1f}"
                for n in names
            )
        )
    return "\n".join(lines)


def fig7_series(
    results: Mapping[str, Mapping[int, FlowResult]],
    benchmarks: Sequence[str] | None = None,
) -> dict[int, list[float]]:
    """Figure 7's chart series: reduction percentage per block size,
    one value per benchmark (same order as ``benchmarks``)."""
    names = list(benchmarks) if benchmarks else list(results)
    series: dict[int, list[float]] = {}
    for k in BLOCK_SIZES:
        row = []
        for name in names:
            if k in results[name]:
                row.append(results[name][k].reduction_percent)
        if row:
            series[k] = row
    return series


def format_fig7_ascii(
    series: Mapping[int, Sequence[float]],
    benchmarks: Sequence[str],
    bar_width: int = 40,
) -> str:
    """Grouped horizontal bar chart of percentage reductions."""
    lines = ["Percentage reduction by benchmark and block size", ""]
    for i, name in enumerate(benchmarks):
        lines.append(f"{name}:")
        for k, row in series.items():
            value = row[i]
            bar = "#" * max(0, round(bar_width * value / 60.0))
            lines.append(f"  k={k}  {bar:<{bar_width}} {value:5.1f}%")
        lines.append("")
    return "\n".join(lines)


def format_per_line_table(
    baseline: Sequence[int],
    encoded: Sequence[int],
    columns: int = 8,
) -> str:
    """Per-bus-line transition table (before/after/reduction).

    The paper's premise is per-line: each line's power is proportional
    to its own toggle count.  This view shows where the savings land —
    opcode-field lines (high bits) barely toggle, register/immediate
    lines carry most of the traffic.
    """
    if len(baseline) != len(encoded):
        raise ValueError("baseline/encoded length mismatch")
    lines = []
    for start in range(0, len(baseline), columns):
        group = range(start, min(start + columns, len(baseline)))
        lines.append(
            "line      " + "".join(f"{b:>9d}" for b in group)
        )
        lines.append(
            "  before  " + "".join(f"{baseline[b]:>9d}" for b in group)
        )
        lines.append(
            "  after   " + "".join(f"{encoded[b]:>9d}" for b in group)
        )
        reductions = []
        for b in group:
            if baseline[b] == 0:
                reductions.append("      -  ")
            else:
                percent = 100.0 * (baseline[b] - encoded[b]) / baseline[b]
                reductions.append(f"{percent:>8.1f}%")
        lines.append("  saved   " + "".join(reductions))
        lines.append("")
    return "\n".join(lines).rstrip()


def fig6_to_csv(table: dict) -> str:
    """Figure 6 as CSV (one row per metric, one column per benchmark)."""
    names = table["benchmarks"]
    lines = ["metric," + ",".join(names)]
    lines.append(
        "tr_millions," + ",".join(f"{table['tr'][n]:.6f}" for n in names)
    )
    for k in BLOCK_SIZES:
        if not table["encoded"][k]:
            continue
        lines.append(
            f"encoded_k{k},"
            + ",".join(
                f"{table['encoded'][k].get(n, float('nan')):.6f}"
                for n in names
            )
        )
        lines.append(
            f"reduction_k{k},"
            + ",".join(
                f"{table['reduction'][k].get(n, float('nan')):.3f}"
                for n in names
            )
        )
    return "\n".join(lines)


def fig6_to_markdown(table: dict) -> str:
    """Figure 6 as a GitHub-flavoured markdown table."""
    names = table["benchmarks"]
    lines = [
        "| metric | " + " | ".join(names) + " |",
        "|---" * (len(names) + 1) + "|",
        "| #TR (M) | "
        + " | ".join(f"{table['tr'][n]:.3f}" for n in names)
        + " |",
    ]
    for k in BLOCK_SIZES:
        if not table["encoded"][k]:
            continue
        lines.append(
            f"| #{k}-block (M) | "
            + " | ".join(
                f"{table['encoded'][k].get(n, float('nan')):.3f}"
                for n in names
            )
            + " |"
        )
        lines.append(
            f"| reduction k={k} | "
            + " | ".join(
                f"{table['reduction'][k].get(n, float('nan')):.1f}%"
                for n in names
            )
            + " |"
        )
    return "\n".join(lines)


def summarize_results(
    results: Mapping[str, Mapping[int, FlowResult]]
) -> dict[int, float]:
    """Average reduction per block size across benchmarks (the paper's
    '35%-40% for ... four and five' / '20%-25% ... six and seven')."""
    averages = {}
    for k in BLOCK_SIZES:
        values = [
            per_size[k].reduction_percent
            for per_size in results.values()
            if k in per_size
        ]
        if values:
            averages[k] = sum(values) / len(values)
    return averages
