"""Tests reproducing Figure 3 (theoretical TTN/RTN table)."""

import pytest

from repro.core.theory import (
    CORRECTED_FIGURE3,
    PAPER_FIGURE3,
    expected_total_transitions,
    format_theory_table,
    theory_row,
    theory_table,
)
from repro.core.transformations import ALL_TRANSFORMATIONS, OPTIMAL_SET


class TestFigure3:
    @pytest.mark.parametrize("size", [2, 3, 4, 5])
    def test_matches_paper_exactly_small_sizes(self, size):
        row = theory_row(size)
        ttn, rtn = PAPER_FIGURE3[size]
        assert row.total_transitions == ttn
        assert row.reduced_transitions == rtn

    def test_size6_matches_corrected_paper_numbers(self):
        # The paper's printed 320/180 is double its own counting rule;
        # the printed percentage (43.8) matches the corrected 160/90.
        row = theory_row(6)
        assert (row.total_transitions, row.reduced_transitions) == (160, 90)
        assert row.improvement_percent == pytest.approx(43.75, abs=0.06)
        paper_ttn, paper_rtn = PAPER_FIGURE3[6]
        assert paper_ttn == 2 * row.total_transitions
        assert paper_rtn == 2 * row.reduced_transitions

    def test_size7_close_to_paper(self):
        # Exhaustive search (two independent implementations) gives
        # RTN=236; the paper prints 234 (39.1% vs 38.5%).
        row = theory_row(7)
        assert row.total_transitions == PAPER_FIGURE3[7][0] == 384
        assert abs(row.reduced_transitions - PAPER_FIGURE3[7][1]) <= 2
        assert row.improvement_percent == pytest.approx(38.5, abs=0.1)

    @pytest.mark.parametrize("size", range(2, 8))
    def test_improvement_percentages_match_paper(self, size):
        # The printed Impr(%) row: 100.0, 75.0, 58.3, 50.0, 43.8, 39.1.
        paper_percent = {
            2: 100.0,
            3: 75.0,
            4: 58.3,
            5: 50.0,
            6: 43.8,
            7: 39.1,
        }[size]
        row = theory_row(size)
        tolerance = 0.7 if size == 7 else 0.1
        assert row.improvement_percent == pytest.approx(
            paper_percent, abs=tolerance
        )

    def test_corrected_table_consistency(self):
        for size, (ttn, rtn) in CORRECTED_FIGURE3.items():
            if size == 7:
                continue  # documented 2-count discrepancy
            row = theory_row(size)
            assert (row.total_transitions, row.reduced_transitions) == (
                ttn,
                rtn,
            )


class TestClosedForm:
    @pytest.mark.parametrize("size", range(2, 9))
    def test_ttn_closed_form(self, size):
        assert expected_total_transitions(size) == (1 << size) * (size - 1) // 2

    @pytest.mark.parametrize("size", range(2, 8))
    def test_ttn_matches_enumeration(self, size):
        assert (
            theory_row(size).total_transitions
            == expected_total_transitions(size)
        )


class TestTableProperties:
    def test_improvement_decreases_with_block_size(self):
        rows = theory_table(range(2, 8))
        percents = [r.improvement_percent for r in rows]
        assert percents == sorted(percents, reverse=True)

    def test_full_space_equals_restricted(self):
        for size in range(2, 8):
            full = theory_row(size, ALL_TRANSFORMATIONS)
            restricted = theory_row(size, OPTIMAL_SET)
            assert full.reduced_transitions == restricted.reduced_transitions

    def test_format_table_layout(self):
        text = format_theory_table(theory_table((2, 3)))
        assert "TTN" in text and "RTN" in text and "Impr(%)" in text
        assert "100.0" in text and "75.0" in text

    def test_zero_ttn_guard(self):
        from repro.core.theory import TheoryRow

        row = TheoryRow(block_size=1, total_transitions=0, reduced_transitions=0)
        assert row.improvement_percent == 0.0
