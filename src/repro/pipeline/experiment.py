"""Parameter-sweep experiment runner.

Research-grade studies over the flow: cross any set of workloads with
block sizes, TT capacities, transformation sets and strategies; each
trace is simulated once and reused across every configuration.  The
result grid exports to CSV for external analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.transformations import OPTIMAL_SET, Transformation
from repro.pipeline.flow import EncodingFlow, FlowResult
from repro.sim.cpu import run_program
from repro.workloads.registry import build_workload


@dataclass(frozen=True)
class SweepPoint:
    """One configuration of the sweep grid."""

    workload: str
    block_size: int
    tt_capacity: int
    strategy: str

    def label(self) -> str:
        return (
            f"{self.workload}/k{self.block_size}"
            f"/tt{self.tt_capacity}/{self.strategy}"
        )


@dataclass
class SweepResult:
    """The full grid of flow results, keyed by sweep point."""

    points: dict[SweepPoint, FlowResult] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.points)

    def best_for(self, workload: str) -> tuple[SweepPoint, FlowResult]:
        """The configuration with the highest reduction for a workload."""
        candidates = [
            (point, result)
            for point, result in self.points.items()
            if point.workload == workload
        ]
        if not candidates:
            raise KeyError(f"no results for workload {workload!r}")
        return max(candidates, key=lambda item: item[1].reduction_percent)

    def filter(self, **criteria) -> list[tuple[SweepPoint, FlowResult]]:
        """Results whose point matches every given attribute."""
        out = []
        for point, result in self.points.items():
            if all(getattr(point, key) == value for key, value in criteria.items()):
                out.append((point, result))
        return out

    def to_csv(self) -> str:
        lines = [
            "workload,block_size,tt_capacity,strategy,"
            "baseline_transitions,encoded_transitions,reduction_percent,"
            "tt_entries_used,blocks_encoded,hot_coverage,trace_length"
        ]
        for point in sorted(
            self.points,
            key=lambda p: (p.workload, p.block_size, p.tt_capacity, p.strategy),
        ):
            result = self.points[point]
            lines.append(
                f"{point.workload},{point.block_size},{point.tt_capacity},"
                f"{point.strategy},{result.baseline_transitions},"
                f"{result.encoded_transitions},"
                f"{result.reduction_percent:.4f},{result.tt_entries_used},"
                f"{len(result.selected_blocks)},{result.hot_coverage:.4f},"
                f"{result.trace_length}"
            )
        return "\n".join(lines)


def run_sweep(
    workloads: Sequence[str] | dict[str, dict],
    block_sizes: Sequence[int] = (4, 5, 6, 7),
    tt_capacities: Sequence[int] = (16,),
    strategies: Sequence[str] = ("greedy",),
    transformations: Sequence[Transformation] = OPTIMAL_SET,
    verify_decode: bool = True,
    max_steps: int = 500_000_000,
) -> SweepResult:
    """Run the full cross product; each workload simulates once.

    ``workloads`` is a sequence of names or a ``{name: params}``
    mapping for size overrides.
    """
    if isinstance(workloads, dict):
        items = list(workloads.items())
    else:
        items = [(name, {}) for name in workloads]

    sweep = SweepResult()
    for name, params in items:
        workload = build_workload(name, **params)
        program = workload.assemble()
        cpu, trace = run_program(program, max_steps=max_steps)
        if workload.verify is not None:
            workload.verify(cpu)
        for block_size in block_sizes:
            for tt_capacity in tt_capacities:
                for strategy in strategies:
                    flow = EncodingFlow(
                        block_size=block_size,
                        tt_capacity=tt_capacity,
                        transformations=transformations,
                        strategy=strategy,
                        verify_decode=verify_decode,
                    )
                    point = SweepPoint(name, block_size, tt_capacity, strategy)
                    sweep.points[point] = flow.run(program, trace, point.label())
    return sweep
