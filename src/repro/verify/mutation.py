"""Deliberate decoder mutations: the harness's self-test.

A differential verifier that never fires is indistinguishable from one
that cannot fire.  Each named mutation perturbs exactly one decode (or
encode) path in-process; a campaign run under a mutation MUST produce
mismatches and replayable counterexamples, and ``repro verify
--inject-mutation X --check`` MUST exit non-zero.  The e2e CLI test
and the CI smoke job both lean on this.

Mutations are applied per process (the campaign's pool initializer
re-applies them in every worker) and recorded in each counterexample,
so ``repro verify --replay`` can reconstruct the exact faulty world
that produced a divergence.
"""

from __future__ import annotations

from repro.errors import VerifyError

#: Mutation registry: name -> (description, apply function).
_APPLIED: list[str] = []


def _mutate_suffix_table() -> None:
    """Corrupt the compiled suffix-table decode path: the table entry
    for (history=1, all-ones stored suffix) decodes one bit wrong.
    Caught by the stream checks (table decode vs bit-serial decode)."""
    from repro.core import fastpath

    real = fastpath.decode_suffix_table.__wrapped__

    def corrupted(truth_table: int, suffix_len: int) -> tuple:
        tables = real(truth_table, suffix_len)
        full = (1 << suffix_len) - 1
        row = list(tables[1])
        row[full] ^= 1
        return (tables[0], tuple(row))

    fastpath.decode_suffix_table = corrupted


def _mutate_codebook_entry() -> None:
    """Flip a stored code bit in one compiled anchored entry (k=5,
    word 0b10110).  The fast encode path diverges from the reference
    BlockSolver for exactly that block word — caught by the exhaustive
    codebook sweep and by any stream that contains the word."""
    from repro.core.fastpath import get_codebook

    book = get_codebook(5)
    entry = book.anchored[5][0b10110]
    if entry is None:  # pragma: no cover - optimal set always expresses it
        raise VerifyError("mutation target entry is infeasible")
    code_int, tau, cost = entry
    # Bit 0 anchors the block (equals the original first bit), so the
    # flip lands on a body bit and survives re-anchoring.
    book.anchored[5][0b10110] = (code_int ^ 0b00010, tau, cost)


def _mutate_bitplane_scan() -> None:
    """XOR bit 1 into every bitplane doubling-scan decode of a stream
    at least two bits long (bit 0 is the anchor, which the scalar
    paths also reproduce verbatim, so the flip lands on a decoded body
    bit).  Caught by the stream checks (bitplane vs table/bit-serial)
    and the exhaustive τ sweep."""
    from repro.core import bitplane

    real = bitplane.decode_plan_bitplane

    def corrupted(encoded_int, length, bounds, transformations, *args, **kwargs):
        decoded = real(
            encoded_int, length, bounds, transformations, *args, **kwargs
        )
        if length >= 2:
            decoded ^= 0b10
        return decoded

    bitplane.decode_plan_bitplane = corrupted


def _mutate_tt_decode() -> None:
    """XOR bit 0 into every hardware TT-entry decode.  The fetch
    decoder's restored words diverge from the golden program on every
    non-anchor instruction — caught by the program/deployment checks."""
    from repro.hw.tt import TTEntry

    real = TTEntry.decode

    def corrupted(self, stored_word: int, previous_decoded: int) -> int:
        return real(self, stored_word, previous_decoded) ^ 1

    TTEntry.decode = corrupted


def _mutate_memoryless_codebook() -> None:
    """Swap two encode-map entries on sub-bus 0 of every fitted
    memoryless encoder *without* updating the inverse table.  Encode
    and decode disagree for any word whose low sub-bus value is 0 or
    1 — caught deterministically by the encoder sweep's inverse check
    and by the random encoder-zoo roundtrip cases."""
    from repro.baselines.memoryless import MemorylessCodebookEncoder

    real = MemorylessCodebookEncoder._set_tables

    def corrupted(self, bus: int, table: list) -> None:
        real(self, bus, table)
        if bus == 0:
            maps = self._maps[0]
            maps[0], maps[1] = maps[1], maps[0]  # inverse left stale

    MemorylessCodebookEncoder._set_tables = corrupted


def _mutate_lowweight_codeword() -> None:
    """Corrupt one entry of the shared low-weight codeword table to a
    weight-5 codeword.  Every encoder built afterwards violates the
    m-out-of-n weight bound — caught deterministically by the encoder
    sweep's codeword-weight invariant."""
    from repro.baselines import lowweight

    lowweight.CODEWORDS[6] = 0b11111


MUTATIONS: dict[str, tuple[str, object]] = {
    "suffix-table": (
        "compiled suffix-table decode returns one wrong bit",
        _mutate_suffix_table,
    ),
    "codebook-entry": (
        "one compiled anchored codebook entry stores a flipped code bit",
        _mutate_codebook_entry,
    ),
    "tt-decode": (
        "hardware TT entry decode XORs bit 0 into every restored word",
        _mutate_tt_decode,
    ),
    "bitplane-scan": (
        "bitplane doubling scan XORs bit 1 into every decoded stream",
        _mutate_bitplane_scan,
    ),
    "memoryless-codebook": (
        "memoryless sub-bus 0 encode map swaps two entries, inverse stale",
        _mutate_memoryless_codebook,
    ),
    "lowweight-codeword": (
        "low-weight codeword table entry rewritten to weight 5",
        _mutate_lowweight_codeword,
    ),
}


def apply_mutation(name: str | None) -> None:
    """Arm one named mutation in this process (idempotent per name)."""
    if name is None:
        return
    if name not in MUTATIONS:
        raise VerifyError(
            f"unknown mutation {name!r}; available: {', '.join(MUTATIONS)}"
        )
    if name in _APPLIED:
        return
    MUTATIONS[name][1]()
    _APPLIED.append(name)


def applied_mutations() -> tuple[str, ...]:
    return tuple(_APPLIED)
