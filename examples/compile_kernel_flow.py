"""Compile-to-deploy: a C-like kernel through the entire tool chain.

1. compile a matrix-vector kernel with minicc (the naive C-like
   compiler) and check the numerical result;
2. run the encoding flow on the compiled program;
3. pack the encoded image + table programming into a firmware bundle
   (JSON), reload it, and prove the loader-side decode is bit-exact —
   the full build-machine -> device path of Section 7.1.

Run:  python examples/compile_kernel_flow.py
"""

import json

from repro.minicc import compile_kernel
from repro.pipeline.bundle import EncodingBundle
from repro.pipeline.flow import EncodingFlow

N = 16

SOURCE = f"""
int i; int j;
double s;
double A[{N}][{N}];
double x[{N}];
double y[{N}];

for (i = 0; i < {N}; i = i + 1) {{
    s = 0.0;
    for (j = 0; j < {N}; j = j + 1)
        s = s + A[i][j] * x[j];
    y[i] = s;
}}
"""


def main() -> None:
    matrix = [((i * 7 + 3) % 11 - 5) / 4.0 for i in range(N * N)]
    vector = [((i * 5 + 1) % 9 - 4) / 2.0 for i in range(N)]
    kernel = compile_kernel(
        SOURCE, data={"A": matrix, "x": vector}, name="matvec"
    )
    print(f"compiled: {len(kernel.assemble().words)} instructions")
    cpu, trace = kernel.run()
    measured = kernel.read(cpu, "y")
    expected = [
        sum(matrix[i * N + j] * vector[j] for j in range(N)) for i in range(N)
    ]
    worst = max(abs(m - e) for m, e in zip(measured, expected))
    print(f"simulated {cpu.steps} instructions, max |error| = {worst:.2e}")
    assert worst < 1e-12

    program = kernel.assemble()
    result = EncodingFlow(block_size=5).run(program, trace, "matvec")
    print(
        f"encoded {len(result.selected_blocks)} hot blocks "
        f"({result.tt_entries_used}/16 TT entries): "
        f"{result.baseline_transitions} -> {result.encoded_transitions} "
        f"transitions ({result.reduction_percent:.1f}% saved), "
        f"decode verified: {result.decode_verified}"
    )

    bundle = EncodingBundle.from_flow_result(program, result)
    payload = bundle.to_json()
    print(f"firmware bundle: {len(payload)} bytes of JSON, "
          f"{len(bundle.tt_entries)} TT entries, "
          f"{len(bundle.bbit_entries)} BBIT entries")

    # The "device" side: reload from JSON and decode the real trace.
    reloaded = EncodingBundle.from_json(payload)
    assert reloaded.deploy_and_check(program, trace)
    print("loader-side decode through the reloaded bundle: bit-exact")

    summary = json.loads(payload)
    print(f"bundle digests: original {summary['original_digest'][:16]}..., "
          f"encoded {summary['encoded_digest'][:16]}...")


if __name__ == "__main__":
    main()
