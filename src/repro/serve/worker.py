"""Codec worker: the picklable compute side of the service.

:func:`pool_execute` is the process-pool entry point, :func:`serial_execute`
the degraded-mode twin the circuit breaker falls back to.  Both funnel
into the same pure computation, so which path ran a job can never
change its result — only its latency.

Worker-side robustness contracts:

* every *computation* failure is returned as an ``error`` outcome,
  never raised (a poisoned job must not look like a crashed worker);
* the per-job deadline is enforced *inside* the worker with
  :func:`~repro.runtime.run_with_deadline` (SIGALRM in a pool child's
  main thread, watchdog thread on the serial path), so a stalled job
  yields a clean ``deadline_exceeded`` instead of a hung future;
* the ``kill`` chaos model fires only in a pool child and only on
  attempt 0 — ``os._exit`` mid-job is exactly a worker segfault as
  the pool sees it (``BrokenProcessPool`` for everything in flight).

Each worker process owns a :class:`~repro.pipeline.cache.BundleCache`;
with a shared ``cache_dir`` a freshly forked worker (or a pool rebuilt
after a crash) warm-starts from results its predecessors already paid
for.
"""

from __future__ import annotations

import hashlib
import os
import signal
import threading
import time
from collections import OrderedDict

import repro.obs as obs
from repro.faults.service import SLOW_STALL_S
from repro.obs import OBS
from repro.obs.tracing import TraceContext
from repro.pipeline.bundle import EncodingBundle
from repro.pipeline.cache import BundleCache, cache_key, workload_fingerprint
from repro.pipeline.flow import EncodingFlow
from repro.runtime import DeadlineExceeded, run_with_deadline
from repro.serve.jobs import JobRequest, parse_request
from repro.workloads.registry import build_workload

#: Per-process singletons, lazily built: the bundle cache (keyed by
#: the cache_dir it mirrors to) and a small LRU of prepared
#: (program, trace) pairs — traces are too big for the disk cache but
#: cheap to keep for the handful of distinct workload configs a batch
#: uses.
_CACHES: dict[str | None, BundleCache] = {}
_PREPARED: OrderedDict[str, tuple] = OrderedDict()
_PREPARED_CAPACITY = 8

_SIM_MAX_STEPS = 5_000_000


def pool_worker_init(parent_pid: int) -> None:
    """Pool-worker initializer: die with the server.

    A SIGKILLed server cannot shut its pool down, and fork workers
    blocked on the shared call queue never see EOF (their siblings
    hold the write end open) — without this they would idle as
    orphans indefinitely.

    Fork children also inherit the server's asyncio signal plumbing:
    its wakeup fd is the *server loop's* self-pipe, and SIGTERM may be
    trapped by the loop's no-op trampoline.  Left in place, a child
    SIGTERMed during broken-pool cleanup would both survive the
    terminate *and* relay the signal number into the parent's pipe —
    the server would then run its own SIGTERM handler for a signal
    that was never sent to it.  Reset both before doing anything."""

    signal.set_wakeup_fd(-1)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)

    def _watch() -> None:
        while os.getppid() == parent_pid:
            time.sleep(2.0)
        os._exit(0)

    threading.Thread(
        target=_watch, name="parent-death-watch", daemon=True
    ).start()


def _cache_for(cache_dir: str | None) -> BundleCache:
    cache = _CACHES.get(cache_dir)
    if cache is None:
        cache = BundleCache(capacity=64, cache_dir=cache_dir)
        _CACHES[cache_dir] = cache
    return cache


def _prepared(workload: str, params: dict) -> tuple:
    """(program, trace, workload_hash) for one workload config."""
    key = f"{workload}:" + ",".join(
        f"{k}={v}" for k, v in sorted(params.items())
    )
    hit = _PREPARED.get(key)
    if hit is not None:
        _PREPARED.move_to_end(key)
        return hit
    bench = build_workload(workload, **params)
    program = bench.assemble()
    from repro.sim.cpu import run_program

    cpu, trace = run_program(program, max_steps=_SIM_MAX_STEPS)
    if bench.verify is not None:
        bench.verify(cpu)
    prepared = (program, trace, workload_fingerprint(list(program.words)))
    _PREPARED[key] = prepared
    while len(_PREPARED) > _PREPARED_CAPACITY:
        _PREPARED.popitem(last=False)
    return prepared


def _bundle_entry(request: JobRequest, cache: BundleCache) -> tuple[dict, tuple]:
    """The cached (encode payload, bundle JSON) for this request's
    compute identity, building it on first touch."""
    program, trace, fingerprint = _prepared(
        request.workload, request.workload_params
    )
    key = cache_key(
        fingerprint,
        request.block_size,
        request.tt_capacity,
        request.strategy,
    )
    entry = cache.get(key)
    if entry is None:
        flow = EncodingFlow(
            request.block_size,
            tt_capacity=request.tt_capacity,
            strategy=request.strategy,
        )
        result = flow.run(program, trace, name=request.workload)
        bundle = EncodingBundle.from_flow_result(program, result)
        bundle_json = bundle.to_json()
        payload = {
            "workload": request.workload,
            "workload_hash": fingerprint,
            "block_size": request.block_size,
            "tt_capacity": request.tt_capacity,
            "strategy": request.strategy,
            "trace_length": result.trace_length,
            "baseline_transitions": result.baseline_transitions,
            "encoded_transitions": result.encoded_transitions,
            "reduction_percent": round(result.reduction_percent, 4),
            "blocks_selected": len(result.selected_blocks),
            "tt_entries_used": result.tt_entries_used,
            "hot_coverage": round(result.hot_coverage, 6),
            "decode_verified": result.decode_verified,
            "original_digest": bundle.original_digest,
            "bundle_digest": hashlib.sha256(
                bundle_json.encode()
            ).hexdigest(),
        }
        entry = {"encode": payload, "bundle_json": bundle_json}
        cache.put(key, entry)
    return entry, (program, trace, fingerprint)


def _compute(request: JobRequest, cache: BundleCache) -> dict:
    """The pure payload computation, by kind."""
    entry, (program, trace, _) = _bundle_entry(request, cache)
    encode_payload = dict(entry["encode"])
    if request.kind == "encode":
        return encode_payload
    bundle = EncodingBundle.from_json(entry["bundle_json"])
    if request.kind == "deploy":
        tt, bbit = bundle.build_tables(tt_capacity=request.tt_capacity)
        return {
            "workload": request.workload,
            "block_size": request.block_size,
            "strategy": request.strategy,
            "tt_rows": len(bundle.tt_entries),
            "bbit_rows": len(bundle.bbit_entries),
            "tt_capacity": tt.capacity,
            "bbit_capacity": bbit.capacity,
            "original_digest": bundle.original_digest,
            "bundle_digest": encode_payload["bundle_digest"],
        }
    # decode_verify: the full loader path plus a bit-exact replay.
    verified = bundle.deploy_and_check(program, trace)
    return {
        "workload": request.workload,
        "block_size": request.block_size,
        "strategy": request.strategy,
        "trace_length": len(trace),
        "verified": verified,
        "original_digest": bundle.original_digest,
        "bundle_digest": encode_payload["bundle_digest"],
    }


def _execute(
    wire: dict, attempt: int, cache_dir: str | None, in_pool: bool
) -> dict:
    request = parse_request(wire)

    if request.chaos == "kill" and attempt == 0 and in_pool:
        # A worker crash, as the pool sees one: no exception, no
        # cleanup, the process is simply gone mid-job.  Pool-only —
        # in the serial fallback this would kill the server itself,
        # and degraded mode exists precisely to make progress.
        os._exit(23)

    # Cross-process telemetry: the server rides a TraceContext on the
    # envelope (an underscore key, invisible to the job identity).  In
    # a pool child we reset to a fresh process-local registry/tracer so
    # everything captured below is a true per-job *delta*; on the
    # serial path OBS *is* the server's state, so we only anchor the
    # span stack (spans land in the server tracer directly) and never
    # reset.  A kill-chaos crash above loses exactly this one job's
    # in-flight delta, nothing more.
    ctx = TraceContext.from_wire(wire.get("_trace")) if isinstance(wire, dict) else None
    capture = ctx is not None and in_pool and OBS.enabled
    if capture:
        obs.reset()
    anchor = (
        OBS.tracer.push_remote(ctx)
        if ctx is not None and OBS.enabled
        else None
    )

    def body() -> dict:
        if request.chaos == "slow":
            # Stall well past the job's (tight) deadline; the
            # deadline guard below must convert this into a clean
            # deadline_exceeded, never a hung worker.
            time.sleep(SLOW_STALL_S)
        return _compute(request, _cache_for(cache_dir))

    try:
        with OBS.tracer.span(
            "serve.worker",
            kind=request.kind,
            workload=request.workload,
            attempt=attempt,
            pool="1" if in_pool else "0",
        ):
            try:
                payload = run_with_deadline(
                    body, request.deadline_s, what=f"job {request.key}"
                )
            except DeadlineExceeded as err:
                outcome = {"outcome": "deadline_exceeded", "error": str(err)}
            except Exception as err:
                # A poisoned job: deterministic compute failure,
                # isolated to this case.  Returned, not raised — the
                # dispatcher treats a raising worker as infrastructure
                # trouble worth retrying.
                outcome = {
                    "outcome": "error",
                    "error": f"{type(err).__name__}: {err}",
                }
            else:
                outcome = {"outcome": "ok", "payload": payload}
        if capture:
            # Piggyback the bounded delta on the result envelope; the
            # server pops it before the result reaches the WAL.
            outcome["_telemetry"] = {
                "v": 1,
                "pid": os.getpid(),
                "metrics": OBS.registry.export_delta(),
                "spans": OBS.tracer.export_spans(128),
            }
        return outcome
    finally:
        if anchor is not None:
            OBS.tracer.pop_remote(anchor)


def pool_execute(wire: dict, attempt: int, cache_dir: str | None) -> dict:
    """Process-pool entry point (must stay top-level picklable)."""
    return _execute(wire, attempt, cache_dir, in_pool=True)


def serial_execute(wire: dict, attempt: int, cache_dir: str | None) -> dict:
    """Degraded-mode twin: same computation, chaos kills disarmed."""
    return _execute(wire, attempt, cache_dir, in_pool=False)
