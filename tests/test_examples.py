"""Smoke tests: every example script must run clean end to end.

Each example self-checks (asserts numerical results and decode
round-trips internally), so a zero exit status is a meaningful pass.
The heavyweight benchmark_suite runs in --quick mode.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "hardware_walkthrough.py",
    "software_reload.py",
    "compile_kernel_flow.py",
    "dsp_fir_filter.py",
]


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script):
    result = _run(script)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout  # every example narrates its steps


def test_benchmark_suite_quick():
    result = _run("benchmark_suite.py", "--quick", "--block-sizes", "4", "5")
    assert result.returncode == 0, result.stderr[-2000:]
    assert "Figure 6" in result.stdout
    assert "Figure 7" in result.stdout


def test_collect_report(tmp_path):
    output = tmp_path / "REPORT.md"
    result = _run("collect_report.py", str(output))
    assert result.returncode == 0, result.stderr[-2000:]
    # The artefact directory exists in this repo (benches have run),
    # so at least the always-present figure sections must be collected.
    if output.exists():
        text = output.read_text()
        assert "# Reproduction report" in text
