"""Bus-encoding baselines from the paper's related work (Section 2).

* ``bus_invert`` — Stan & Burleson's bus-invert coding [5], the
  general-purpose data-bus baseline the paper contrasts with
  ("its extremely general nature limits relatively the power savings
  ... on data streams exhibiting regularities").
* ``t0`` — Benini et al.'s T0 sequential-address encoding [2]
  (address-bus technique; included for landscape completeness).
* ``gray`` — Gray address encoding, the classic address-bus baseline.
* ``frequency`` — a static frequency-ranked opcode remapping in the
  spirit of low-power ISA re-encoding [6].
"""

from repro.baselines.bus_invert import BusInvertCoder, bus_invert_transitions
from repro.baselines.t0 import T0Coder, t0_transitions
from repro.baselines.gray import gray_encode, gray_transitions
from repro.baselines.frequency import FrequencyRemapper

__all__ = [
    "BusInvertCoder",
    "bus_invert_transitions",
    "T0Coder",
    "t0_transitions",
    "gray_encode",
    "gray_transitions",
    "FrequencyRemapper",
]
