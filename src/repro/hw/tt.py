"""The Transformation Table (TT) of Figure 5.

One entry per encoded code block (segment).  An entry stores a 3-bit
transformation selector for every bus line, the End (E) bit marking
the final segment of a basic block, and the CT counter giving the
number of instructions decoded under that final segment (Section 7.2:
"a counter corresponding to the size of the last bit sequence ...
decremented with each instruction fetched").

For fast word-level decoding each entry precomputes one 32-bit mask
per transformation selector; a stored word then decodes with eight
bitwise operations instead of 32 bit-by-bit gate evaluations — the
software analogue of the per-line parallel gates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.program_codec import BlockEncoding
from repro.errors import TableCapacityError, TableIntegrityError
from repro.hw.integrity import tt_entry_parity

# Selector indices, fixed by repro.core.transformations.OPTIMAL_SET:
# 0=x 1=~x 2=y 3=~y 4=xor 5=xnor 6=nor 7=nand
_NUM_SELECTORS = 8


def _decode_masked(selector: int, stored: int, prev: int, mask: int) -> int:
    if selector == 0:
        return stored & mask
    if selector == 1:
        return ~stored & mask
    if selector == 2:
        return prev & mask
    if selector == 3:
        return ~prev & mask
    if selector == 4:
        return (stored ^ prev) & mask
    if selector == 5:
        return ~(stored ^ prev) & mask
    if selector == 6:
        return ~(stored | prev) & mask
    if selector == 7:
        return ~(stored & prev) & mask
    raise ValueError(f"selector out of range: {selector}")


@dataclass
class TTEntry:
    """One Transformation Table entry (Figure 5a)."""

    selectors: tuple[int, ...]  # 3-bit selector per bus line
    end: bool = False  # E field
    count: int = 0  # CT field (instructions under a final segment)
    _masks: list[int] = field(default_factory=list, repr=False)
    _ops: list[tuple[int, int]] = field(default_factory=list, repr=False)
    _word_mask: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        for selector in self.selectors:
            if not 0 <= selector < _NUM_SELECTORS:
                raise ValueError(f"selector out of range: {selector}")
        masks = [0] * _NUM_SELECTORS
        for line, selector in enumerate(self.selectors):
            masks[selector] |= 1 << line
        self._masks = masks
        # Hot-path lookups: only the selectors actually used by some
        # line (typically far fewer than eight per entry).
        self._ops = [
            (selector, mask) for selector, mask in enumerate(masks) if mask
        ]
        self._word_mask = (1 << len(self.selectors)) - 1

    @property
    def width(self) -> int:
        return len(self.selectors)

    def decode(self, stored_word: int, previous_decoded: int) -> int:
        """Restore an original word from the stored word and the
        previously decoded word (the per-line one-bit history)."""
        out = 0
        for selector, mask in self._ops:
            out |= _decode_masked(
                selector, stored_word, previous_decoded, mask
            )
        return out & self._word_mask

    @classmethod
    def identity(cls, width: int = 32) -> "TTEntry":
        """The all-zero entry: decodes any block unchanged (the
        paper's shared entry for infrequent basic blocks)."""
        return cls(selectors=(0,) * width)


class TransformationTable:
    """A fixed-capacity TT with allocation bookkeeping.

    Entries for one basic block occupy a contiguous index range whose
    final entry has E set (Section 7.2).  The table is reprogrammable:
    :meth:`clear` + :meth:`allocate` model the software reload before
    entering a new application hot spot.

    With ``parity=True`` every row written through :meth:`install` /
    :meth:`write` / :meth:`allocate` carries a parity word; each
    :meth:`read` recomputes and compares it, raising
    :class:`~repro.errors.TableIntegrityError` on mismatch (the
    hardened decode path of the fault-injection campaign).
    """

    def __init__(self, capacity: int = 16, width: int = 32, parity: bool = False):
        if capacity < 1:
            raise ValueError("TT needs at least one entry")
        self.capacity = capacity
        self.width = width
        self.parity_enabled = parity
        self.entries: list[TTEntry] = []
        #: Parity word per row, written alongside the row itself;
        #: mutating ``entries`` directly (as a fault would) leaves the
        #: stored parity stale, which is exactly what a read detects.
        self._parity: list[int] = []
        #: Activity counters, published onto the metrics registry by
        #: whoever drives the table (the fetch decoder, the flow).
        self.reads = 0
        self.writes = 0
        self.parity_checks = 0
        self.parity_failures = 0

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def free_entries(self) -> int:
        return self.capacity - len(self.entries)

    def clear(self) -> None:
        self.entries.clear()
        self._parity.clear()

    # ------------------------------------------------------------------
    # Checked access
    # ------------------------------------------------------------------

    def install(self, entry: TTEntry) -> int:
        """Append one row (with its parity word); returns its index."""
        if len(self.entries) >= self.capacity:
            raise TableCapacityError(
                f"TT full ({self.capacity} entries); cannot install another"
            )
        self.entries.append(entry)
        self._parity.append(
            tt_entry_parity(entry.selectors, entry.end, entry.count)
        )
        self.writes += 1
        return len(self.entries) - 1

    def write(self, index: int, entry: TTEntry) -> None:
        """Program one row at ``index`` (the MMIO peripheral path),
        padding any gap below it with identity rows."""
        if not 0 <= index < self.capacity:
            raise TableCapacityError(
                f"TT index {index} exceeds capacity {self.capacity}"
            )
        while len(self.entries) <= index:
            self.install(TTEntry.identity(self.width))
        self.entries[index] = entry
        self._parity[index] = tt_entry_parity(
            entry.selectors, entry.end, entry.count
        )

    def read(self, index: int) -> TTEntry:
        """Checked row read: bounds, then parity (when enabled)."""
        self.reads += 1
        if not 0 <= index < len(self.entries):
            raise TableIntegrityError(
                f"TT read at index {index} outside the populated range "
                f"[0, {len(self.entries)})"
            )
        entry = self.entries[index]
        if self.parity_enabled:
            self.parity_checks += 1
            if index >= len(self._parity):
                self.parity_failures += 1
                raise TableIntegrityError(
                    f"TT entry {index} has no stored parity word"
                )
            expected = self._parity[index]
            actual = tt_entry_parity(entry.selectors, entry.end, entry.count)
            if actual != expected:
                self.parity_failures += 1
                raise TableIntegrityError(
                    f"TT entry {index} parity mismatch "
                    f"(stored {expected:#010x}, computed {actual:#010x})"
                )
        return entry

    def seal(self) -> None:
        """Recompute every parity word from the current rows (for
        callers that populated ``entries`` directly)."""
        self._parity = [
            tt_entry_parity(e.selectors, e.end, e.count) for e in self.entries
        ]

    def allocate(self, encoding: BlockEncoding) -> int:
        """Install a basic block's segment plans; returns the base
        index its first entry landed at."""
        if encoding.width != self.width:
            raise ValueError(
                f"encoding width {encoding.width} != table width {self.width}"
            )
        selector_rows = encoding.selectors()
        if len(selector_rows) > self.free_entries:
            raise TableCapacityError(
                f"need {len(selector_rows)} entries, only "
                f"{self.free_entries} free of {self.capacity}"
            )
        base = len(self.entries)
        bounds = encoding.bounds
        for row, (start, seg_len) in zip(selector_rows, bounds):
            is_tail = start + seg_len >= len(encoding.original_words)
            self.install(
                TTEntry(
                    selectors=tuple(row),
                    end=is_tail,
                    # Instructions decoded under this entry: the tail
                    # segment's non-overlap positions (every position
                    # for a single-segment block).
                    count=(seg_len if start == 0 else seg_len - 1)
                    if is_tail
                    else 0,
                )
            )
        return base

    def entry(self, index: int) -> TTEntry:
        return self.read(index)

    def storage_bits(self, ct_bits: int = 4) -> int:
        """Physical SRAM bits: per entry, 3 selector bits per line plus
        the E bit plus the CT field."""
        return self.capacity * (3 * self.width + 1 + ct_bits)


def selectors_from_sequence(rows: Sequence[Sequence[int]]) -> list[TTEntry]:
    """Build raw entries from selector rows (testing helper)."""
    return [TTEntry(selectors=tuple(row)) for row in rows]
