"""The paper's six benchmarks, written for our MIPS-like ISA.

Section 8: "Matrix multiplication (mmul) ...; successive
over-relaxation (sor) ...; extrapolated Jacobi-iterative method (ej)
...; fast fourier transform (fft) ...; tridiagonal system solver (tri)
...; and lu-decomposition (lu)".

Each module exposes ``build(...)`` returning a :class:`Workload` with
the assembly source, a data-size parameter defaulting to a
simulator-friendly scale (paper-scale sizes are accepted, just slow —
the substitution is documented in DESIGN.md), and a ``verify``
callback that checks the simulated results against an independent
Python/numpy reference.
"""

from repro.workloads.common import Workload, read_doubles
from repro.workloads.registry import WORKLOAD_BUILDERS, build_workload

__all__ = [
    "Workload",
    "read_doubles",
    "WORKLOAD_BUILDERS",
    "build_workload",
]
