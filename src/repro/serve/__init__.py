"""Encoding-as-a-service: the asyncio multi-tenant front-end.

The batch CLI runs one workload at a time; ``repro serve`` turns the
same pipeline into a long-lived service that accepts encode / deploy /
decode-verify jobs from many concurrent tenants and fans the codec
work out over a process pool — with robustness as the design center:

* **admission control** — the queue has a bounded depth; a full queue
  sheds the job with an explicit retry-after instead of degrading
  everyone silently (:mod:`repro.serve.server`);
* **deadlines** — every job carries a per-tenant wall-clock budget
  enforced by :mod:`repro.runtime.deadline` inside the worker and
  backstopped by the event loop;
* **fault isolation** — a crashed worker breaks only its own attempt:
  the pool is rebuilt, the job retried with seeded backoff, and a
  failure streak trips the :class:`~repro.runtime.CircuitBreaker`
  into a serial fallback path that half-open-probes its way back;
* **crash-identical resume** — every final job result journals
  through the :class:`~repro.runtime.CheckpointLog` WAL, so a server
  SIGKILLed mid-queue and restarted with ``--resume`` replays to
  byte-identical results (the PR-4 campaign pattern, generalized to a
  live queue).

:mod:`repro.serve.selftest` is the chaos/load harness behind
``repro serve --selftest`` (and ``BENCH_serve.json``);
:mod:`repro.serve.client` provides the TCP JSONL transport and
:class:`ServeClient`.  See ``docs/serving.md``.
"""

from repro.serve.client import ServeClient, start_tcp_server
from repro.serve.jobs import (
    JOB_KINDS,
    OUTCOMES,
    JobRequest,
    JobValidationError,
    parse_request,
)
from repro.serve.selftest import SelftestOptions, run_selftest
from repro.serve.server import EncodingServer, ServeConfig

__all__ = [
    "JOB_KINDS",
    "OUTCOMES",
    "JobRequest",
    "JobValidationError",
    "parse_request",
    "EncodingServer",
    "ServeConfig",
    "ServeClient",
    "start_tcp_server",
    "SelftestOptions",
    "run_selftest",
]
