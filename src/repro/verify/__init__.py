"""Differential verification: every decode path against every other.

The encoder/decoder stack deliberately keeps redundant implementations
of one contract — a reference :class:`BlockSolver`, the compiled
integer fast path, suffix-table vs bit-serial decode, and the
behavioural :class:`FetchDecoder` in three fault-handling modes.  This
package turns that redundancy into a harness: seeded randomised inputs
(streams, synthetic programs, corrupted table states) plus exhaustive
per-block-size sweeps run through *all* paths, demanding bit-identical
agreement, with divergences shrunk into replayable counterexamples and
the verdict qualified by behaviour-space coverage
(``VERIFY_report.json``).  ``repro verify`` is the CLI front end.
"""

from repro.verify.campaign import (
    KIND_PATTERN,
    VerifyConfig,
    case_kind,
    case_seed_key,
    run_case,
    run_verify,
)
from repro.verify.checks import (
    CheckResult,
    TABLE_FAULTS,
    check_encoders,
    check_program,
    check_stream,
    check_tables,
    sweep_boundary,
    sweep_codebook,
    sweep_encoder_tables,
    sweep_tau,
)
from repro.verify.counterexample import (
    make_record,
    replay_counterexample,
    shrink_stream,
    shrink_words,
)
from repro.verify.coverage import (
    DECODER_TRANSITIONS,
    GATED_BLOCK_SIZES,
    CoverageTracker,
)
from repro.verify.generators import (
    Deployment,
    biased_stream,
    block_words,
    burst_stream,
    hot_word_stream,
    make_deployment,
    random_deployment,
    word_blocks,
)
from repro.verify.mutation import (
    MUTATIONS,
    applied_mutations,
    apply_mutation,
)
from repro.verify.report import (
    REPORT_VERSION,
    VerifyReport,
    load_verify_report,
    verify_report_problems,
)

__all__ = [
    "KIND_PATTERN",
    "VerifyConfig",
    "case_kind",
    "case_seed_key",
    "run_case",
    "run_verify",
    "CheckResult",
    "TABLE_FAULTS",
    "check_encoders",
    "check_program",
    "check_stream",
    "check_tables",
    "sweep_boundary",
    "sweep_codebook",
    "sweep_encoder_tables",
    "sweep_tau",
    "make_record",
    "replay_counterexample",
    "shrink_stream",
    "shrink_words",
    "DECODER_TRANSITIONS",
    "GATED_BLOCK_SIZES",
    "CoverageTracker",
    "Deployment",
    "biased_stream",
    "block_words",
    "burst_stream",
    "hot_word_stream",
    "make_deployment",
    "random_deployment",
    "word_blocks",
    "MUTATIONS",
    "applied_mutations",
    "apply_mutation",
    "REPORT_VERSION",
    "VerifyReport",
    "load_verify_report",
    "verify_report_problems",
]
