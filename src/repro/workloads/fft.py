"""Fast Fourier transform (``fft``) — radix-2, in-place, decimation in
time, on ``n`` complex doubles (paper block size: 256, the default).

Two phases, exactly as a textbook C implementation compiles:

1. **Bit-reversal permutation** — an inner per-bit loop plus a
   conditional swap.  These very short basic blocks are why the paper
   reports fft as its worst case ("a number of very short basic blocks
   exist within the major loop").
2. **Butterfly stages** — triple loop over stage size / group / index
   with twiddle factors from a precomputed ROM table.
"""

from __future__ import annotations

import math

from repro.workloads.common import (
    Workload,
    assert_close,
    format_doubles,
    pseudo_values,
    read_doubles,
)

DEFAULT_N = 256


def _reference(re: list[float], im: list[float]) -> tuple[list[float], list[float]]:
    """Straightforward O(n^2) DFT with the same twiddle convention."""
    n = len(re)
    out_re, out_im = [], []
    for k in range(n):
        sr = si = 0.0
        for t in range(n):
            angle = -2.0 * math.pi * k * t / n
            c, s = math.cos(angle), math.sin(angle)
            sr += re[t] * c - im[t] * s
            si += re[t] * s + im[t] * c
        out_re.append(sr)
        out_im.append(si)
    return out_re, out_im


def build(n: int = DEFAULT_N) -> Workload:
    """Build the fft workload for a power-of-two ``n``."""
    if n < 4 or n & (n - 1):
        raise ValueError(f"fft size must be a power of two >= 4, got {n}")
    log2n = n.bit_length() - 1
    re0 = pseudo_values(n, seed=5)
    im0 = pseudo_values(n, seed=6)
    twiddle_re = [math.cos(-2.0 * math.pi * t / n) for t in range(n // 2)]
    twiddle_im = [math.sin(-2.0 * math.pi * t / n) for t in range(n // 2)]
    expected_re, expected_im = _reference(re0, im0)

    source = f"""
# fft: radix-2 DIT, {n} complex points, bit-reversal + butterflies
        .data
RE:
{format_doubles(re0)}
IM:
{format_doubles(im0)}
WR:
{format_doubles(twiddle_re)}
WI:
{format_doubles(twiddle_im)}
        .text
main:
        li    $s0, {n}          # N
        la    $t0, RE
        la    $t1, IM
        la    $t2, WR
        la    $t3, WI
# ---- bit-reversal permutation ----
        li    $s1, 0            # i
brloop:
        move  $t5, $s1          # bits to reverse
        li    $t6, 0            # j
        li    $t7, {log2n}
brbit:
        sll   $t6, $t6, 1
        andi  $t8, $t5, 1
        or    $t6, $t6, $t8
        srl   $t5, $t5, 1
        addiu $t7, $t7, -1
        bnez  $t7, brbit
        slt   $t8, $s1, $t6
        beqz  $t8, noswap
        sll   $t7, $s1, 3
        addu  $t7, $t0, $t7
        sll   $t8, $t6, 3
        addu  $t8, $t0, $t8
        l.d   $f4, 0($t7)
        l.d   $f6, 0($t8)
        s.d   $f6, 0($t7)
        s.d   $f4, 0($t8)
        sll   $t7, $s1, 3
        addu  $t7, $t1, $t7
        sll   $t8, $t6, 3
        addu  $t8, $t1, $t8
        l.d   $f4, 0($t7)
        l.d   $f6, 0($t8)
        s.d   $f6, 0($t7)
        s.d   $f4, 0($t8)
noswap:
        addiu $s1, $s1, 1
        bne   $s1, $s0, brloop
# ---- butterfly stages ----
        li    $s1, 2            # m = stage size
mloop:
        srl   $s2, $s1, 1       # half = m/2
        divq  $s5, $s0, $s1     # twiddle stride = N/m
        li    $s3, 0            # k = group base
kloop:
        li    $s4, 0            # j
        li    $t4, 0            # twiddle index
jloop:
        addu  $t5, $s3, $s4     # p = k + j
        addu  $t6, $t5, $s2     # q = p + half
        sll   $t5, $t5, 3
        sll   $t6, $t6, 3
        addu  $t7, $t0, $t5     # &RE[p]
        addu  $t8, $t0, $t6     # &RE[q]
        addu  $t5, $t1, $t5     # &IM[p]
        addu  $t6, $t1, $t6     # &IM[q]
        sll   $t9, $t4, 3
        addu  $v1, $t2, $t9
        l.d   $f2, 0($v1)       # wr
        addu  $v1, $t3, $t9
        l.d   $f4, 0($v1)       # wi
        l.d   $f6, 0($t8)       # RE[q]
        l.d   $f8, 0($t6)       # IM[q]
        mul.d $f10, $f2, $f6
        mul.d $f12, $f4, $f8
        sub.d $f10, $f10, $f12  # tr = wr*REq - wi*IMq
        mul.d $f12, $f2, $f8
        mul.d $f14, $f4, $f6
        add.d $f12, $f12, $f14  # ti = wr*IMq + wi*REq
        l.d   $f6, 0($t7)       # RE[p]
        l.d   $f8, 0($t5)       # IM[p]
        sub.d $f16, $f6, $f10
        s.d   $f16, 0($t8)      # RE[q] = RE[p] - tr
        sub.d $f16, $f8, $f12
        s.d   $f16, 0($t6)      # IM[q] = IM[p] - ti
        add.d $f6, $f6, $f10
        s.d   $f6, 0($t7)       # RE[p] += tr
        add.d $f8, $f8, $f12
        s.d   $f8, 0($t5)       # IM[p] += ti
        addu  $t4, $t4, $s5
        addiu $s4, $s4, 1
        bne   $s4, $s2, jloop
        addu  $s3, $s3, $s1     # k += m
        bne   $s3, $s0, kloop
        sll   $s1, $s1, 1       # m *= 2
        ble   $s1, $s0, mloop
        li    $v0, 10
        syscall
"""

    def verify(cpu) -> None:
        measured_re = read_doubles(cpu, "RE", n)
        measured_im = read_doubles(cpu, "IM", n)
        assert_close(measured_re, expected_re, tolerance=1e-6, what="fft RE")
        assert_close(measured_im, expected_im, tolerance=1e-6, what="fft IM")

    return Workload(
        name="fft",
        description=f"radix-2 FFT, {n} complex doubles (paper: 256)",
        source=source,
        params={"n": n},
        verify=verify,
    )
