"""Shared seeded test-data strategies for the whole suite.

One module owns input generation so every test draws from the same
distributions the ``repro verify`` differential campaign uses
(:mod:`repro.verify.generators`), and every random choice is pinned to
an explicit seed: re-running a failing test regenerates the identical
input, and no test's verdict depends on interpreter hash order or
ambient entropy.

Two layers:

* **hypothesis strategies** (``bit_streams``, ``hw_block_sizes``,
  ``encode_strategies``, ``instruction_words``) for property tests —
  hypothesis manages its own seeds and database;
* **seeded constructors** (``rng_for``, ``seeded_stream``,
  ``seeded_words``, ``seeded_blocks``, ``generate_program``) for
  plain tests — each takes a seed (or structured seed parts) and is a
  pure function of it.
"""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.verify.generators import (
    biased_stream,
    block_words,
    burst_stream,
    hot_word_stream,
    make_deployment,
    word_blocks,
)

__all__ = [
    "bit_streams",
    "hw_block_sizes",
    "encode_strategies",
    "instruction_words",
    "fetch_word_streams",
    "rng_for",
    "seeded_stream",
    "seeded_words",
    "seeded_blocks",
    "seeded_deployment",
    "seeded_hot_words",
    "generate_program",
]

# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------

#: Raw 0/1 streams across the sizes the stream codec handles,
#: including the empty stream.
bit_streams = st.lists(
    st.integers(min_value=0, max_value=1), min_size=0, max_size=80
)

#: The block sizes the paper studies (k=2..7).
hw_block_sizes = st.integers(min_value=2, max_value=7)

#: Every segmentation strategy the stream codec implements.
encode_strategies = st.sampled_from(("greedy", "optimal", "disjoint"))

#: Lists of 32-bit instruction-bus words.
instruction_words = st.lists(
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    min_size=1,
    max_size=40,
)


@st.composite
def fetch_word_streams(draw, max_length: int = 100):
    """Instruction-fetch-like word streams: mostly a small hot
    alphabet (loop bodies repeat) with occasional uniform excursions —
    the encoder zoo's input distribution, same generator the verify
    campaign's ``encoders`` cases use."""
    seed = draw(st.integers(min_value=0, max_value=(1 << 32) - 1))
    length = draw(st.integers(min_value=0, max_value=max_length))
    alphabet = draw(st.integers(min_value=1, max_value=8))
    noise = draw(st.sampled_from((0.0, 0.1, 0.3)))
    return hot_word_stream(random.Random(seed), length, alphabet, noise)


# ----------------------------------------------------------------------
# Seeded constructors
# ----------------------------------------------------------------------


def rng_for(*parts) -> random.Random:
    """A :class:`random.Random` keyed on structured seed parts —
    the same ``"a:b:c"`` convention the verify campaign replays from."""
    return random.Random(":".join(str(part) for part in parts))


def seeded_stream(seed, length: int, bias: float = 0.5) -> list[int]:
    """A biased bit stream fully determined by ``seed``."""
    return biased_stream(rng_for("stream", seed), length, bias)


def seeded_burst(seed, length: int, flip: float = 0.1) -> list[int]:
    """A run-structured stream fully determined by ``seed``."""
    return burst_stream(rng_for("burst", seed), length, flip)


def seeded_words(
    seed, count: int, width: int = 32, sparse: float | None = None
) -> list[int]:
    """``count`` instruction words fully determined by ``seed``."""
    return block_words(rng_for("words", seed), count, width, sparse)


def seeded_blocks(
    seed, num_blocks: int, min_words: int = 2, max_words: int = 24
) -> list[list[int]]:
    """Independent basic blocks fully determined by ``seed``."""
    return word_blocks(
        rng_for("blocks", seed), num_blocks, min_words, max_words
    )


def seeded_deployment(seed, block_size: int, num_blocks: int = 3, **kwargs):
    """Encoded blocks installed into live TT/BBIT tables, seeded."""
    return make_deployment(
        seeded_blocks(seed, num_blocks), block_size, **kwargs
    )


def seeded_hot_words(
    seed, length: int, alphabet: int = 6, noise: float = 0.15
) -> list[int]:
    """A fetch-like hot-alphabet word stream fully determined by
    ``seed`` (the encoder zoo's input space)."""
    return hot_word_stream(rng_for("hot", seed), length, alphabet, noise)


# ----------------------------------------------------------------------
# Synthetic programs over the ISA
# ----------------------------------------------------------------------

ALU_OPS = ("addu", "subu", "and", "or", "xor", "nor", "slt")
REGS = [f"$t{i}" for i in range(8)]


def generate_program(seed: int, num_blocks: int = 8, fuel: int = 400) -> str:
    """A random terminating assembly program with branchy control
    flow: every path decrements a fuel counter and exits through a
    syscall, so simulation is bounded regardless of the drawn CFG."""
    rng = random.Random(seed)
    lines = [
        "        .text",
        f"main:   li $s7, {fuel}",
        "        li $t0, 3",
        "        li $t1, 5",
        "        b b0",
    ]
    for block in range(num_blocks):
        lines.append(f"b{block}:")
        for _ in range(rng.randint(1, 8)):
            op = rng.choice(ALU_OPS)
            rd, rs, rt = (rng.choice(REGS) for _ in range(3))
            lines.append(f"        {op} {rd}, {rs}, {rt}")
        # Fuel check keeps every path terminating.
        lines.append("        addiu $s7, $s7, -1")
        lines.append("        blez $s7, quit")
        # Random conditional branch to some block, then fall through
        # (or jump) to another.
        target = rng.randrange(num_blocks)
        cond = rng.choice(("beq", "bne"))
        lines.append(
            f"        {cond} {rng.choice(REGS)}, {rng.choice(REGS)}, b{target}"
        )
        if rng.random() < 0.5:
            lines.append(f"        j b{rng.randrange(num_blocks)}")
        elif block == num_blocks - 1:
            lines.append("        j b0")
    lines += [
        "quit:   li $v0, 10",
        "        syscall",
    ]
    return "\n".join(lines)
