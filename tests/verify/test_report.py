"""VERIFY_report.json: serialisation, summary, and the CI gate parser."""

import json

from repro.verify.campaign import VerifyConfig, run_verify
from repro.verify.report import (
    REPORT_VERSION,
    VerifyReport,
    load_verify_report,
    verify_report_problems,
)


def _green_report() -> VerifyReport:
    return run_verify(VerifyConfig(cases=10, seed=11, block_sizes=(4,)))


def _red_report() -> VerifyReport:
    return VerifyReport(
        config={},
        kinds={"stream": {"run": 3, "failed": 1}},
        mismatches=[
            {"kind": "stream", "seed_key": "s", "mismatch": "table_decode_wrong"}
        ],
        counterexamples=[
            {
                "version": 1,
                "kind": "stream",
                "seed_key": "s",
                "params": {"k": 4, "strategy": "greedy"},
                "input": [1, 0],
                "mismatch": {"kind": "table_decode_wrong"},
                "mutations": [],
            }
        ],
        coverage={},
        gate_problems=["tau_selectors coverage for k=4 is 50.0%"],
        mutations=["suffix-table"],
        total_seconds=1.25,
        meta={"host": "x"},
    )


class TestSerialisation:
    def test_write_then_load_roundtrip(self, tmp_path):
        report = _green_report()
        path = report.write(tmp_path / "VERIFY_report.json")
        data = load_verify_report(path)
        # JSON turns the config's tuples into lists; compare post-JSON.
        assert data == json.loads(report.to_json())
        assert data["version"] == REPORT_VERSION
        assert data["check_ok"] is True

    def test_deterministic_zeroes_wallclock(self):
        report = _red_report()
        data = report.to_dict(deterministic=True)
        assert data["total_seconds"] == 0.0 and data["meta"] == {}
        live = report.to_dict()
        assert live["total_seconds"] == 1.25 and live["meta"] == {"host": "x"}

    def test_two_deterministic_writes_are_byte_identical(self, tmp_path):
        a = _red_report().to_json(deterministic=True)
        b = _red_report().to_json(deterministic=True)
        assert a == b
        json.loads(a)  # and valid JSON


class TestSummary:
    def test_green_summary(self):
        text = _green_report().format_summary()
        assert "check: OK" in text
        assert "coverage codebook_entries: 48/48 (100.0%)" in text

    def test_red_summary_names_the_gate_and_mutations(self):
        text = _red_report().format_summary()
        assert "check: FAILED" in text
        assert "GATE: tau_selectors" in text
        assert "armed mutations: suffix-table" in text


class TestGateParser:
    def test_green_report_has_no_problems(self, tmp_path):
        data = _green_report().to_dict()
        assert verify_report_problems(data) == []
        assert (
            verify_report_problems(
                data,
                min_coverage={
                    "codebook_entries": 100.0,
                    "tau_selectors": 100.0,
                },
            )
            == []
        )

    def test_missing_keys_are_fatal(self):
        data = _green_report().to_dict()
        del data["coverage"]
        problems = verify_report_problems(data)
        assert problems == ["report is missing required key 'coverage'"]

    def test_failed_check_and_threshold_are_reported(self):
        data = _red_report().to_dict()
        data["coverage"] = {"tau_selectors": {"percent": 50.0}}
        problems = verify_report_problems(
            data, min_coverage={"tau_selectors": 100.0, "ghost_dimension": 1.0}
        )
        text = "\n".join(problems)
        assert "check failed: 1 mismatch(es)" in text
        assert "below the 100.0% threshold" in text
        assert "lacks dimension 'ghost_dimension'" in text

    def test_version_mismatch_is_reported(self):
        data = _green_report().to_dict()
        data["version"] = 99
        assert any(
            "version" in problem for problem in verify_report_problems(data)
        )

    def test_unreplayable_counterexamples_are_flagged(self):
        data = _red_report().to_dict()
        del data["counterexamples"][0]["params"]
        assert any(
            "not replayable" in problem
            for problem in verify_report_problems(data)
        )
