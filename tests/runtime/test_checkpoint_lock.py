"""WAL writer-contention tests: one log, two writers, loud failure.

Silent record interleaving is the failure mode — each writer would
replay the other's records as its own.  The advisory ``flock`` taken
on first append makes the second writer fail with
:class:`CheckpointLockError` instead.
"""

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.runtime import CheckpointLockError, CheckpointLog
from repro.errors import ReproError

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestWalContention:
    def test_second_writer_is_rejected(self, tmp_path):
        wal = tmp_path / "contended.wal"
        first = CheckpointLog(wal, run_key="run")
        second = CheckpointLog(wal, run_key="run")
        first.record("a", {"v": 1})
        with pytest.raises(CheckpointLockError, match="already locked"):
            second.record("b", {"v": 2})
        first.close()

    def test_lock_error_is_a_repro_error(self, tmp_path):
        wal = tmp_path / "contended.wal"
        first = CheckpointLog(wal, run_key="run")
        first.record("a", {})
        with pytest.raises(ReproError):
            CheckpointLog(wal, run_key="run").record("b", {})
        first.close()

    def test_lock_released_on_close(self, tmp_path):
        wal = tmp_path / "handover.wal"
        first = CheckpointLog(wal, run_key="run")
        first.record("a", {"v": 1})
        first.close()
        second = CheckpointLog(wal, run_key="run")
        second.load()
        second.record("b", {"v": 2})
        second.close()
        third = CheckpointLog(wal, run_key="run")
        assert set(third.load()) == {"a", "b"}

    def test_failed_open_leaves_no_handle(self, tmp_path):
        wal = tmp_path / "contended.wal"
        first = CheckpointLog(wal, run_key="run")
        first.record("a", {})
        second = CheckpointLog(wal, run_key="run")
        with pytest.raises(CheckpointLockError):
            second.record("b", {})
        # The loser holds nothing: once the winner lets go, a fresh
        # append from the same (loser) object must succeed.
        first.close()
        second.record("b", {"v": 2})
        second.close()
        assert set(CheckpointLog(wal, run_key="run").load()) == {"a", "b"}

    def test_reader_is_never_blocked(self, tmp_path):
        wal = tmp_path / "readable.wal"
        writer = CheckpointLog(wal, run_key="run")
        writer.record("a", {"v": 1})
        # load() on another object is read-only and must not take
        # (or trip over) the writer's lock — resume monitors tail the
        # WAL while the owning run is still appending.
        reader = CheckpointLog(wal, run_key="run")
        assert reader.load() == {"a": {"v": 1}}
        writer.close()

    def test_fork_children_do_not_keep_the_lock_alive(self, tmp_path):
        # flock belongs to the open file description, which fork
        # children share: a pool worker that outlives a SIGKILLed
        # parent would keep the WAL locked forever unless the
        # at-fork hook scrubs the inherited handle.  Script: take the
        # lock, fork a long-lived child, then die without cleanup.
        script = textwrap.dedent(
            """
            import multiprocessing, os, sys, time
            from repro.runtime import CheckpointLog

            log = CheckpointLog(sys.argv[1], run_key="run")
            log.record("a", {"v": 1})
            child = multiprocessing.get_context("fork").Process(
                target=time.sleep, args=(60.0,), daemon=False
            )
            child.start()
            # The pid goes to a file: the child inherits stdout, so a
            # pipe would not reach EOF until the child dies too.
            with open(sys.argv[2], "w") as handle:
                handle.write(str(child.pid))
            os._exit(0)  # parent dies holding the lock; child lives on
            """
        )
        wal = tmp_path / "inherited.wal"
        pid_file = tmp_path / "child.pid"
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        out = subprocess.run(
            [sys.executable, "-c", script, str(wal), str(pid_file)],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            timeout=60,
        )
        assert out.returncode == 0
        child_pid = int(pid_file.read_text())
        try:
            # The orphan is alive, but must not hold the dead
            # parent's lock: a successor writer acquires it cleanly.
            successor = CheckpointLog(wal, run_key="run")
            assert successor.load() == {"a": {"v": 1}}
            successor.record("b", {"v": 2})
            successor.close()
        finally:
            try:
                os.kill(child_pid, 9)
            except ProcessLookupError:
                pass

    def test_contention_after_torn_tail_repair(self, tmp_path):
        wal = tmp_path / "torn.wal"
        first = CheckpointLog(wal, run_key="run")
        first.record("a", {"v": 1})
        first.close()
        # Tear the tail the way a mid-append SIGKILL would.
        raw = wal.read_bytes()
        wal.write_bytes(raw + b'{"key": "half')
        owner = CheckpointLog(wal, run_key="run")
        owner.load()
        owner.record("b", {"v": 2})  # repairs the tail under the lock
        with pytest.raises(CheckpointLockError):
            CheckpointLog(wal, run_key="run").record("c", {})
        owner.close()
        assert set(CheckpointLog(wal, run_key="run").load()) == {"a", "b"}
