"""Tests for the BBIT and the behavioural fetch decoder."""

import random

import pytest

from repro.core.program_codec import encode_basic_block
from repro.hw.bbit import BasicBlockIdentificationTable, BBITEntry
from repro.hw.fetch_decoder import DecodeFault, FetchDecoder
from repro.hw.tt import TransformationTable


class TestBbit:
    def test_install_and_lookup(self):
        bbit = BasicBlockIdentificationTable(capacity=4)
        bbit.install(BBITEntry(pc=0x400000, tt_index=0, num_instructions=8))
        hit = bbit.lookup(0x400000)
        assert hit is not None and hit.tt_index == 0
        assert bbit.lookup(0x400004) is None
        assert bbit.lookups == 2 and bbit.hits == 1

    def test_capacity(self):
        bbit = BasicBlockIdentificationTable(capacity=1)
        bbit.install(BBITEntry(pc=0, tt_index=0, num_instructions=1))
        with pytest.raises(ValueError, match="full"):
            bbit.install(BBITEntry(pc=4, tt_index=1, num_instructions=1))

    def test_duplicate_rejected(self):
        bbit = BasicBlockIdentificationTable(capacity=4)
        bbit.install(BBITEntry(pc=0, tt_index=0, num_instructions=1))
        with pytest.raises(ValueError, match="duplicate"):
            bbit.install(BBITEntry(pc=0, tt_index=1, num_instructions=1))

    def test_storage_bits(self):
        bbit = BasicBlockIdentificationTable(capacity=16)
        assert bbit.storage_bits(pc_bits=30, tt_index_bits=4) == 16 * 34

    def test_clear_resets_stats(self):
        bbit = BasicBlockIdentificationTable(capacity=4)
        bbit.install(BBITEntry(pc=0, tt_index=0, num_instructions=1))
        bbit.lookup(0)
        bbit.clear()
        assert len(bbit) == 0 and bbit.lookups == 0


def _materialise(words, block_size, base=0x400000, capacity=16):
    """Encode one basic block and wire up TT + BBIT + image."""
    encoding = encode_basic_block(words, block_size)
    tt = TransformationTable(capacity)
    bbit = BasicBlockIdentificationTable(capacity)
    index = tt.allocate(encoding)
    bbit.install(
        BBITEntry(pc=base, tt_index=index, num_instructions=len(words))
    )
    image = {base + 4 * i: w for i, w in enumerate(encoding.encoded_words)}
    return encoding, tt, bbit, image


class TestFetchDecoder:
    def test_sequential_decode_restores_block(self):
        rng = random.Random(9)
        words = [rng.getrandbits(32) for _ in range(13)]
        encoding, tt, bbit, image = _materialise(words, 5)
        decoder = FetchDecoder(tt, bbit, 5)
        decoded = [
            decoder.fetch(0x400000 + 4 * i, image[0x400000 + 4 * i])
            for i in range(len(words))
        ]
        assert decoded == words

    def test_repeated_block_execution(self):
        # A loop body fetched many times, like the paper's hot loops.
        words = [0x8C880000 | i for i in range(7)]
        encoding, tt, bbit, image = _materialise(words, 4)
        decoder = FetchDecoder(tt, bbit, 4)
        for _ in range(5):
            decoded = [
                decoder.fetch(0x400000 + 4 * i, image[0x400000 + 4 * i])
                for i in range(len(words))
            ]
            assert decoded == words

    def test_unencoded_fetch_passthrough(self):
        words = [1, 2, 3, 4, 5]
        encoding, tt, bbit, image = _materialise(words, 5)
        decoder = FetchDecoder(tt, bbit, 5)
        assert decoder.fetch(0x500000, 0xABCD) == 0xABCD
        assert decoder.passthrough_instructions == 1

    def test_early_exit_and_reentry(self):
        # Decode half the block, branch away, re-enter from the top.
        words = [0x10000 + 7 * i for i in range(9)]
        encoding, tt, bbit, image = _materialise(words, 5)
        decoder = FetchDecoder(tt, bbit, 5)
        for i in range(4):
            assert decoder.fetch(0x400000 + 4 * i, image[0x400000 + 4 * i]) == words[i]
        # "Taken branch": fetch elsewhere, then the block start again.
        assert decoder.fetch(0x600000, 0x999) == 0x999
        decoded = [
            decoder.fetch(0x400000 + 4 * i, image[0x400000 + 4 * i])
            for i in range(len(words))
        ]
        assert decoded == words

    def test_mid_block_entry_detected(self):
        words = [3, 1, 4, 1, 5, 9, 2, 6]
        encoding, tt, bbit, image = _materialise(words, 5)
        region = set(image)
        decoder = FetchDecoder(tt, bbit, 5, encoded_region=region)
        with pytest.raises(DecodeFault, match="mid-block"):
            decoder.fetch(0x400008, image[0x400008])

    def test_two_blocks_share_table(self):
        rng = random.Random(4)
        words_a = [rng.getrandbits(32) for _ in range(6)]
        words_b = [rng.getrandbits(32) for _ in range(11)]
        enc_a = encode_basic_block(words_a, 5)
        enc_b = encode_basic_block(words_b, 5)
        tt = TransformationTable(16)
        bbit = BasicBlockIdentificationTable(16)
        base_a = tt.allocate(enc_a)
        base_b = tt.allocate(enc_b)
        bbit.install(BBITEntry(pc=0x400000, tt_index=base_a, num_instructions=6))
        bbit.install(BBITEntry(pc=0x400100, tt_index=base_b, num_instructions=11))
        image = {0x400000 + 4 * i: w for i, w in enumerate(enc_a.encoded_words)}
        image.update(
            {0x400100 + 4 * i: w for i, w in enumerate(enc_b.encoded_words)}
        )
        decoder = FetchDecoder(tt, bbit, 5)
        # Alternate between the two blocks (branching back and forth).
        for _ in range(3):
            got_a = [
                decoder.fetch(0x400000 + 4 * i, image[0x400000 + 4 * i])
                for i in range(6)
            ]
            got_b = [
                decoder.fetch(0x400100 + 4 * i, image[0x400100 + 4 * i])
                for i in range(11)
            ]
            assert got_a == words_a
            assert got_b == words_b

    def test_decode_trace_helper(self):
        words = [17 * i + 3 for i in range(10)]
        encoding, tt, bbit, image = _materialise(words, 6)
        decoder = FetchDecoder(tt, bbit, 6)
        addresses = [0x400000 + 4 * i for i in range(10)] * 2
        decoded = decoder.decode_trace(addresses, lambda pc: image[pc])
        assert decoded == words * 2

    def test_block_size_validation(self):
        tt = TransformationTable(4)
        bbit = BasicBlockIdentificationTable(4)
        with pytest.raises(ValueError):
            FetchDecoder(tt, bbit, 1)

    def test_single_instruction_block(self):
        words = [0xCAFEBABE]
        encoding, tt, bbit, image = _materialise(words, 5)
        decoder = FetchDecoder(tt, bbit, 5)
        assert decoder.fetch(0x400000, image[0x400000]) == 0xCAFEBABE
        # Decoder must have deactivated; an unrelated fetch passes through.
        assert decoder.fetch(0x700000, 42) == 42


class TestActivityAccounting:
    """Section 7.2's overhead argument, quantitatively: TT reads are
    one per decoded instruction (beyond the anchor), BBIT probes only
    where the engine is inactive."""

    def test_tt_reads_and_bbit_probes(self):
        words = [0x11111111 * (i % 3) for i in range(9)]
        encoding, tt, bbit, image = _materialise(words, 5)
        decoder = FetchDecoder(tt, bbit, 5)
        iterations = 4
        for _ in range(iterations):
            for i in range(len(words)):
                decoder.fetch(0x400000 + 4 * i, image[0x400000 + 4 * i])
        # Per iteration: 8 decoded via TT (anchor passes through).
        assert decoder.tt_reads == iterations * (len(words) - 1)
        # One BBIT probe per block entry (engine inactive only there).
        assert bbit.lookups == iterations
        assert bbit.hits == iterations

    def test_probe_rate_small_on_loops(self):
        # On a loop-dominated stream the BBIT probe rate is one per
        # block execution — tiny relative to fetches, which is the
        # paper's "overhead is insignificant" argument.
        words = [0x8C880000 | i for i in range(12)]
        encoding, tt, bbit, image = _materialise(words, 5)
        decoder = FetchDecoder(tt, bbit, 5)
        for _ in range(50):
            for i in range(len(words)):
                decoder.fetch(0x400000 + 4 * i, image[0x400000 + 4 * i])
        total_fetches = 50 * len(words)
        assert bbit.lookups / total_fetches <= 1 / len(words) + 1e-9
