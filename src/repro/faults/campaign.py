"""The fault-injection campaign runner.

Sweeps fault models x workloads x trials x decoder modes over a
deployment prepared by the real pipeline (flow -> bundle -> tables),
classifies every run (see :mod:`repro.faults.report`), and emits
``FAULTS_report.json``.

Determinism: each case's corruption is drawn from
``random.Random(f"{seed}:{workload}:{model}:{trial}")`` — the *same*
fault is injected for the strict and recover runs of a trial, so the
per-model tables compare both hardening strategies on an identical
fault population.

Workers: with ``workers > 1`` cases fan out across processes, each
future bounded by ``case_timeout``.  A timed-out case is retried
serially under the same deadline (with seeded backoff between
attempts); worker failures feed a circuit breaker
(:class:`repro.runtime.CircuitBreaker`) that downgrades the campaign
to serial with a warning after ``breaker_threshold`` consecutive
failures instead of failing it — a robustness harness that dies of its
own infrastructure would be an irony too far.  The serial path honors
the *same* per-case deadline via :mod:`repro.runtime.deadline`.

Checkpointing: pass ``wal_path`` to journal every completed case to a
JSONL write-ahead log; ``resume=True`` replays it, skipping finished
cases — a campaign SIGKILLed mid-run resumes where it stopped and
(written with ``deterministic=True``) reproduces a byte-identical
``FAULTS_report.json``.
"""

from __future__ import annotations

import hashlib
import json
import random
import time
import warnings
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import CampaignError, ReproError
from repro.faults.models import (
    DEFAULT_MODELS,
    FaultModel,
    InjectionRecord,
    RunState,
)
from repro.faults.report import (
    CORRECTED,
    CRASHED,
    DETECTED,
    MASKED,
    NOT_APPLICABLE,
    RECOVERED,
    SILENT,
    CaseResult,
    FaultCampaignReport,
)
import repro.obs as obs
from repro.hw.fetch_decoder import FetchDecoder
from repro.obs import OBS
from repro.runtime import (
    BackoffPolicy,
    CheckpointLog,
    CircuitBreaker,
    DeadlineExceeded,
    retry_call,
    run_with_deadline,
)


@dataclass
class DeploymentTarget:
    """A picklable snapshot of one deployed workload: everything a
    trial needs to materialise fresh tables, image and trace."""

    name: str
    block_size: int
    text_base: int
    original_words: list[int]
    encoded_words: list[int]
    tt_entries: list[dict]
    bbit_entries: list[dict]
    trace: list[int]
    parity: bool = True
    #: Per-region scheme metadata for mixed-scheme bundles (empty for
    #: classic single-scheme deployments).
    regions: list[dict] = field(default_factory=list)

    @classmethod
    def prepare(
        cls,
        workload: str,
        block_size: int = 5,
        parity: bool = True,
        workload_params: dict | None = None,
    ) -> "DeploymentTarget":
        """Run the full pipeline on a named workload and snapshot the
        deployable state (the campaign's pipeline integration)."""
        from repro.pipeline.bundle import EncodingBundle
        from repro.pipeline.flow import EncodingFlow
        from repro.sim.cpu import run_program
        from repro.workloads.registry import build_workload

        wl = build_workload(workload, **(workload_params or {}))
        program = wl.assemble()
        cpu, trace = run_program(program)
        if wl.verify is not None:
            wl.verify(cpu)
        result = EncodingFlow(block_size=block_size).run(
            program, trace, workload
        )
        if not result.selected_blocks:
            raise CampaignError(
                f"workload {workload!r} produced no encoded blocks; "
                "nothing to inject faults into"
            )
        bundle = EncodingBundle.from_flow_result(program, result)
        bundle.validate()
        return cls(
            name=workload,
            block_size=block_size,
            text_base=program.text_base,
            original_words=list(program.words),
            encoded_words=list(bundle.encoded_words),
            tt_entries=list(bundle.tt_entries),
            bbit_entries=list(bundle.bbit_entries),
            trace=list(trace),
            parity=parity,
        )

    @classmethod
    def prepare_mixed(
        cls,
        workload: str,
        block_size: int = 5,
        parity: bool = True,
        workload_params: dict | None = None,
    ) -> "DeploymentTarget":
        """Run the per-region scheme selector on a named workload and
        snapshot the resulting mixed-scheme bundle — the target the
        ``scheme_tag_corruption`` model needs."""
        from repro.pipeline.selector import SchemeSelector
        from repro.sim.cpu import run_program
        from repro.workloads.registry import build_workload

        wl = build_workload(workload, **(workload_params or {}))
        program = wl.assemble()
        cpu, trace = run_program(program)
        if wl.verify is not None:
            wl.verify(cpu)
        result = SchemeSelector(block_size=block_size).run(
            program, trace, workload
        )
        bundle = result.bundle
        if not bundle.regions:
            raise CampaignError(
                f"workload {workload!r} produced no tagged regions; "
                "nothing for the scheme-tag injector to corrupt"
            )
        return cls(
            name=f"{workload}-mixed",
            block_size=block_size,
            text_base=program.text_base,
            original_words=list(program.words),
            encoded_words=list(bundle.encoded_words),
            tt_entries=list(bundle.tt_entries),
            bbit_entries=list(bundle.bbit_entries),
            trace=list(trace),
            parity=parity,
            regions=[dict(region) for region in bundle.regions],
        )

    def materialise(self) -> RunState:
        """Fresh tables + private image/trace copies for one trial."""
        from repro.pipeline.bundle import EncodingBundle

        bundle = EncodingBundle(
            name=self.name,
            block_size=self.block_size,
            text_base=self.text_base,
            encoded_words=self.encoded_words,
            original_digest="0" * 64,  # not re-derived for trials
            tt_entries=self.tt_entries,
            bbit_entries=self.bbit_entries,
            regions=[dict(region) for region in self.regions],
        )
        tt, bbit = bundle.build_tables(parity=self.parity)
        return RunState(
            tt=tt,
            bbit=bbit,
            image=list(self.encoded_words),
            trace=list(self.trace),
            encoded_region=bundle.encoded_pc_region(),
            text_base=self.text_base,
            region_schemes=bundle.region_scheme_map(),
            scheme_word_decoders=bundle.scheme_word_decoders(),
            regions=[dict(region) for region in self.regions],
        )


# ----------------------------------------------------------------------
# One case
# ----------------------------------------------------------------------


def run_case(
    target: DeploymentTarget, model: FaultModel, seed: str, mode: str
) -> CaseResult:
    """Inject one fault, replay the trace, classify the outcome.

    Every result carries its wall-clock ``duration_seconds`` (kept out
    of the deterministic per-case JSON; aggregated in the report's
    per-model duration columns and slowest-case field)."""
    started = time.perf_counter()
    result = _run_case(target, model, seed, mode)
    result.duration_seconds = time.perf_counter() - started
    return result


def _run_case(
    target: DeploymentTarget, model: FaultModel, seed: str, mode: str
) -> CaseResult:
    state = target.materialise()
    record: InjectionRecord = model.inject(state, random.Random(seed))
    if not record.applicable:
        return CaseResult(
            target.name, model.name, seed, mode, NOT_APPLICABLE, record.detail
        )
    base = target.text_base
    image = state.image
    num_words = len(image)
    golden_words = target.original_words

    def golden(pc: int) -> int:
        return golden_words[(pc - base) >> 2]

    decoder = FetchDecoder(
        state.tt,
        state.bbit,
        target.block_size,
        encoded_region=state.encoded_region,
        mode=mode,
        # Recover mode gets the golden bundle too: a corrupted scheme
        # tag has no pass-through story (the region's stored words may
        # be rewritten), so recovery serves golden words there.  The
        # classic table-fault recover paths never consult it.
        golden_lookup=golden if mode in ("recover", "degraded") else None,
        region_schemes=state.region_schemes or None,
        scheme_word_decoders=state.scheme_word_decoders or None,
    )

    def lookup(pc: int) -> int:
        index = (pc - base) >> 2
        if not 0 <= index < num_words:
            raise ReproError(f"fetch outside the image: {pc:#010x}")
        return image[index]

    try:
        decoded = decoder.decode_trace(state.trace, lookup, finalize=True)
    except ReproError as err:
        if mode in ("recover", "degraded"):
            # Recover/degraded modes promise never to raise on a
            # corrupted block; an escape is a harness bug, not a
            # detection.
            return CaseResult(
                target.name,
                model.name,
                seed,
                mode,
                CRASHED,
                record.detail,
                error=f"recover mode raised: {err!r}",
            )
        return CaseResult(
            target.name,
            model.name,
            seed,
            mode,
            DETECTED,
            record.detail,
            error=str(err),
        )
    except Exception as err:  # noqa: BLE001 — campaign must classify, not die
        return CaseResult(
            target.name,
            model.name,
            seed,
            mode,
            CRASHED,
            record.detail,
            error=repr(err),
        )
    expected = [target.original_words[(pc - base) >> 2] for pc in state.trace]
    if decoder.recovery_events:
        detail = dict(record.detail)
        detail["recovery_events"] = decoder.recovery_events[:8]
        if decoder.degradations:
            detail["degradations"] = decoder.degradations
            detail["golden_served"] = decoder.golden_served_instructions
        return CaseResult(
            target.name, model.name, seed, mode, RECOVERED, detail
        )
    if decoded != expected:
        return CaseResult(
            target.name, model.name, seed, mode, SILENT, record.detail
        )
    corrections = state.tt.ecc_corrections + state.bbit.ecc_corrections
    if corrections:
        detail = dict(record.detail)
        detail["ecc_corrections"] = corrections
        return CaseResult(
            target.name, model.name, seed, mode, CORRECTED, detail
        )
    return CaseResult(target.name, model.name, seed, mode, MASKED, record.detail)


# ----------------------------------------------------------------------
# The sweep
# ----------------------------------------------------------------------


@dataclass
class CampaignConfig:
    workloads: tuple[str, ...] = ("fir",)
    #: Workloads additionally deployed as mixed-scheme bundles through
    #: the per-region selector (targets named ``<workload>-mixed``);
    #: these are what the ``scheme_tag_corruption`` model bites on.
    mixed_workloads: tuple[str, ...] = ()
    block_size: int = 5
    seed: int = 1
    trials: int = 25
    modes: tuple[str, ...] = ("strict", "recover")
    models: tuple[FaultModel, ...] = DEFAULT_MODELS
    parity: bool = True
    workers: int | None = None
    case_timeout: float = 120.0
    workload_params: dict = field(default_factory=dict)
    #: Consecutive worker failures (timeouts, pool breaks) before the
    #: circuit breaker downgrades the campaign to serial execution.
    breaker_threshold: int = 3
    #: Attempts for the deadline-guarded serial re-run of a case whose
    #: parallel future timed out (seeded backoff between attempts).
    retry_attempts: int = 2

    def to_dict(self) -> dict:
        return {
            "workloads": list(self.workloads),
            "mixed_workloads": list(self.mixed_workloads),
            "block_size": self.block_size,
            "seed": self.seed,
            "trials": self.trials,
            "modes": list(self.modes),
            "models": [model.name for model in self.models],
            "protected_models": [
                model.name for model in self.models if model.protected
            ],
            "parity": self.parity,
            "workers": self.workers,
            "case_timeout": self.case_timeout,
        }

    def run_key(self) -> str:
        """Identity of the case population, for WAL compatibility.

        Excludes execution-only knobs (workers, timeouts): a resume
        may change *how* cases run, never *which* cases exist or what
        they compute."""
        identity = self.to_dict()
        for knob in ("workers", "case_timeout"):
            identity.pop(knob, None)
        blob = json.dumps(identity, sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()[:16]


_WORKER_TARGETS: dict[str, DeploymentTarget] = {}


def _worker_init(targets: list[DeploymentTarget]) -> None:
    global _WORKER_TARGETS
    _WORKER_TARGETS = {target.name: target for target in targets}


def _worker_run_case(
    target_name: str, model: FaultModel, seed: str, mode: str
) -> tuple[CaseResult, dict | None]:
    """Pool entry point: the case result plus (when instrumented) the
    per-case telemetry delta from this worker's process-local
    registry.  Without the delta, decoder/integrity metrics observed
    inside pool workers die with the worker — the parent merges it so
    ``repro faults --workers N --metrics`` reports the same families a
    serial run would."""
    capture = OBS.enabled
    if capture:
        obs.reset()
    result = run_case(_WORKER_TARGETS[target_name], model, seed, mode)
    delta = OBS.registry.export_delta() if capture else None
    return result, delta


def case_key(target_name: str, model: FaultModel, seed: str, mode: str) -> str:
    """The WAL identity of one case."""
    return f"{target_name}|{model.name}|{seed}|{mode}"


def _run_case_serial(
    target: DeploymentTarget,
    model: FaultModel,
    seed: str,
    mode: str,
    case_timeout: float,
    retry_attempts: int = 1,
) -> CaseResult:
    """One case under a wall-clock deadline — the serial path's
    equivalent of ``future.result(timeout)`` — with seeded-backoff
    retries on expiry and a ``crashed`` classification if every
    attempt times out."""
    policy = BackoffPolicy(max_attempts=max(1, retry_attempts))

    def attempt():
        return run_with_deadline(
            lambda: run_case(target, model, seed, mode),
            case_timeout,
            what=f"case {seed}/{mode}",
        )

    try:
        return retry_call(
            attempt,
            policy=policy,
            seed=f"{seed}:{mode}",
            retry_on=(DeadlineExceeded,),
        )
    except DeadlineExceeded as err:
        if OBS.enabled:
            OBS.registry.counter(
                "faults.case_timeouts",
                "campaign cases killed by the per-case timeout",
            ).inc()
        return CaseResult(
            target.name,
            model.name,
            seed,
            mode,
            CRASHED,
            {},
            error=f"case timeout: {err}",
        )


def _run_parallel(
    targets: dict[str, DeploymentTarget],
    tasks: list[tuple[str, FaultModel, str, str]],
    config: CampaignConfig,
    checkpoint: CheckpointLog | None = None,
) -> list[CaseResult]:
    case_timeout = config.case_timeout
    breaker = CircuitBreaker(threshold=config.breaker_threshold)
    results: dict[int, CaseResult] = {}
    pool = ProcessPoolExecutor(
        max_workers=config.workers,
        initializer=_worker_init,
        initargs=(list(targets.values()),),
    )
    downgrade: str | None = None
    try:
        futures = {
            index: pool.submit(_worker_run_case, *task)
            for index, task in enumerate(tasks)
        }
        for index, future in futures.items():
            target_name, model, seed, mode = tasks[index]
            try:
                case_result, delta = future.result(timeout=case_timeout)
                results[index] = case_result
                if OBS.enabled and delta is not None:
                    OBS.registry.merge_delta(delta)
                breaker.record_success()
            except FutureTimeoutError:
                if OBS.enabled:
                    OBS.registry.counter(
                        "faults.case_timeouts",
                        "campaign cases killed by the per-case timeout",
                    ).inc()
                # The timed-out case is re-run serially, under the
                # same deadline the pool enforced.
                results[index] = _run_case_serial(
                    targets[target_name],
                    model,
                    seed,
                    mode,
                    case_timeout,
                    config.retry_attempts,
                )
                if breaker.record_failure():
                    downgrade = (
                        f"{breaker.consecutive_failures} consecutive case "
                        "timeout(s) tripped the circuit breaker"
                    )
            except BrokenExecutor as err:
                if OBS.enabled:
                    OBS.registry.counter(
                        "faults.pool_breaks",
                        "worker pools that died under the campaign",
                    ).inc()
                breaker.record_failure()
                downgrade = f"worker pool broke: {err!r}"
            if checkpoint is not None and index in results:
                checkpoint.record(
                    case_key(*tasks[index]), results[index].to_dict()
                )
            if downgrade is not None:
                break
    finally:
        # Never block the campaign on a wedged worker.
        pool.shutdown(wait=downgrade is None, cancel_futures=True)
    if downgrade is not None:
        if OBS.enabled:
            OBS.registry.counter(
                "faults.pool_downgrades",
                "campaigns downgraded from parallel to serial",
            ).inc()
        warnings.warn(
            f"fault campaign: {downgrade}; finishing the remaining "
            f"{len(tasks) - len(results)} case(s) serially",
            RuntimeWarning,
            stacklevel=2,
        )
        for index, task in enumerate(tasks):
            if index in results:
                continue
            target_name, model, seed, mode = task
            # Serial fallback cases honor the same per-case deadline
            # the pool enforced (historically they ran unbounded).
            results[index] = _run_case_serial(
                targets[target_name],
                model,
                seed,
                mode,
                case_timeout,
                config.retry_attempts,
            )
            if checkpoint is not None:
                checkpoint.record(case_key(*task), results[index].to_dict())
    return [results[index] for index in range(len(tasks))]


def run_campaign(
    config: CampaignConfig,
    targets: list[DeploymentTarget] | None = None,
    wal_path: str | Path | None = None,
    resume: bool = False,
) -> FaultCampaignReport:
    """Run the full sweep; ``targets`` overrides workload preparation
    (used by tests to inject synthetic deployments).

    ``wal_path`` journals every completed case to a JSONL write-ahead
    log; ``resume=True`` replays that log first and only runs the
    cases it is missing.  Replayed cases carry no durations — resumed
    runs should be written with ``deterministic=True`` so the report
    matches an uninterrupted run byte for byte."""
    if targets is None:
        targets = []
        for workload in config.workloads:
            with OBS.tracer.span("faults.prepare", workload=workload):
                targets.append(
                    DeploymentTarget.prepare(
                        workload,
                        block_size=config.block_size,
                        parity=config.parity,
                        workload_params=config.workload_params.get(workload),
                    )
                )
        for workload in config.mixed_workloads:
            with OBS.tracer.span(
                "faults.prepare_mixed", workload=workload
            ):
                targets.append(
                    DeploymentTarget.prepare_mixed(
                        workload,
                        block_size=config.block_size,
                        parity=config.parity,
                        workload_params=config.workload_params.get(workload),
                    )
                )
    by_name = {target.name: target for target in targets}
    if len(by_name) != len(targets):
        raise CampaignError("duplicate target names in campaign")
    tasks: list[tuple[str, FaultModel, str, str]] = []
    for target in targets:
        for model in config.models:
            for trial in range(config.trials):
                seed = f"{config.seed}:{target.name}:{model.name}:{trial}"
                for mode in config.modes:
                    tasks.append((target.name, model, seed, mode))

    checkpoint: CheckpointLog | None = None
    completed: dict[str, dict] = {}
    if wal_path is not None:
        wal_file = Path(wal_path)
        if not resume and wal_file.exists():
            wal_file.unlink()
        checkpoint = CheckpointLog(wal_file, run_key=config.run_key())
        if resume:
            completed = checkpoint.load()

    results: dict[int, CaseResult] = {}
    pending: list[tuple[int, tuple[str, FaultModel, str, str]]] = []
    for index, task in enumerate(tasks):
        replayed = completed.get(case_key(*task))
        if replayed is not None:
            results[index] = CaseResult.from_dict(replayed)
        else:
            pending.append((index, task))

    try:
        with OBS.tracer.span(
            "faults.campaign",
            cases=len(tasks),
            workers=config.workers or 1,
            resumed=len(results),
        ):
            if pending:
                if config.workers and config.workers > 1:
                    pending_tasks = [task for _, task in pending]
                    ran = _run_parallel(
                        by_name, pending_tasks, config, checkpoint
                    )
                    for (index, _), result in zip(pending, ran):
                        results[index] = result
                else:
                    for index, task in pending:
                        name, model, seed, mode = task
                        results[index] = _run_case_serial(
                            by_name[name],
                            model,
                            seed,
                            mode,
                            config.case_timeout,
                            config.retry_attempts,
                        )
                        if checkpoint is not None:
                            checkpoint.record(
                                case_key(*task), results[index].to_dict()
                            )
    finally:
        if checkpoint is not None:
            checkpoint.close()
    cases = [results[index] for index in range(len(tasks))]
    if OBS.enabled:
        registry = OBS.registry
        for case in cases:
            registry.counter(
                "faults.cases",
                "campaign cases by model, mode and outcome",
                model=case.model,
                mode=case.mode,
                outcome=case.outcome,
            ).inc()
            if case.duration_seconds is not None:
                registry.histogram(
                    "faults.case_seconds",
                    "per-case wall-clock duration",
                    model=case.model,
                ).observe(case.duration_seconds)
    return FaultCampaignReport(config=config.to_dict(), cases=cases)
