"""Figure 3: TTN / RTN / improvement for block sizes 2..7.

Paper values: TTN 2/8/24/64/320/384, RTN 0/2/10/32/180/234,
Impr 100.0/75.0/58.3/50.0/43.8/39.1.

Reproduction notes (see EXPERIMENTS.md): the k=6 column is double the
paper's own counting rule (we get 160/90, same 43.8%); at k=7 our
exhaustive search over all 16 transformations finds RTN=236 vs the
printed 234 (38.5% vs 39.1%).
"""

import pytest

from repro.core.theory import (
    PAPER_FIGURE3,
    format_theory_table,
    theory_table,
)

PAPER_IMPROVEMENT = {2: 100.0, 3: 75.0, 4: 58.3, 5: 50.0, 6: 43.8, 7: 39.1}


def test_fig3_theory_table(benchmark, record_result):
    rows = benchmark(theory_table, (2, 3, 4, 5, 6, 7))

    by_size = {row.block_size: row for row in rows}
    for size in (2, 3, 4, 5):
        ttn, rtn = PAPER_FIGURE3[size]
        assert by_size[size].total_transitions == ttn
        assert by_size[size].reduced_transitions == rtn
    # k=6: paper prints 2x its own counting rule; percentages agree.
    assert (by_size[6].total_transitions, by_size[6].reduced_transitions) == (160, 90)
    # k=7: off by 2 transitions out of 384 (documented erratum).
    assert by_size[7].total_transitions == 384
    assert abs(by_size[7].reduced_transitions - 234) <= 2

    for size, expected in PAPER_IMPROVEMENT.items():
        tolerance = 0.7 if size == 7 else 0.1
        assert by_size[size].improvement_percent == pytest.approx(
            expected, abs=tolerance
        ), size

    # Shape: improvement decreases monotonically with block size.
    improvements = [row.improvement_percent for row in rows]
    assert improvements == sorted(improvements, reverse=True)

    record_result("fig3_theory_table", format_theory_table(rows))
