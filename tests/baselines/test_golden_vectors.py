"""Golden-vector tests for the two new encoder-zoo backends.

The table-driven data lives in ``golden_vectors.json`` next to this
file.  The memoryless vectors pin the fitted 4-bit sub-bus tables and
their transition counts — and the test *re-proves* optimality by brute
force over every injective assignment, so the committed numbers cannot
drift away from the exact-solver contract.  The low-weight vectors pin
the m-out-of-n codeword table, driven streams under both identity and
fitted rankings, and the per-transfer toggle counts (which, under
transition signalling, ARE the codeword weights).
"""

import json
from itertools import permutations
from pathlib import Path

import pytest

from repro.baselines.lowweight import (
    CHUNK_WIDTH,
    CODE_WIDTH,
    CODEWORDS,
    MAX_CODEWORD_WEIGHT,
    LowWeightCodeEncoder,
)
from repro.baselines.memoryless import MemorylessCodebookEncoder
from repro.core.transitions import per_transfer_transitions, word_transitions

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_vectors.json").read_text()
)


class TestMemorylessGolden:
    @pytest.mark.parametrize(
        "vector", GOLDEN["memoryless"], ids=lambda v: str(v["profile"][:4])
    )
    def test_fit_reproduces_committed_table(self, vector):
        enc = MemorylessCodebookEncoder(width=4, subbus_width=4).fit(
            vector["profile"]
        )
        assert enc.to_config()["maps"][0] == vector["table"]

    @pytest.mark.parametrize(
        "vector", GOLDEN["memoryless"], ids=lambda v: str(v["profile"][:4])
    )
    def test_achieved_transitions_match_committed_optimum(self, vector):
        enc = MemorylessCodebookEncoder(width=4, subbus_width=4).fit(
            vector["profile"]
        )
        assert enc.transitions(vector["profile"]) == vector[
            "optimal_transitions"
        ]

    @pytest.mark.parametrize(
        "vector", GOLDEN["memoryless"], ids=lambda v: str(v["profile"][:4])
    )
    def test_committed_optimum_is_exhaustively_optimal(self, vector):
        """4-bit exhaustive optimality: no injective assignment of the
        profile's distinct values to the 16 codewords beats the
        committed transition count."""
        profile = vector["profile"]
        distinct = sorted(set(profile))
        best = min(
            word_transitions([dict(zip(distinct, perm))[v] for v in profile])
            for perm in permutations(range(16), len(distinct))
        )
        assert best == vector["optimal_transitions"]

    @pytest.mark.parametrize(
        "vector", GOLDEN["memoryless"], ids=lambda v: str(v["profile"][:4])
    )
    def test_committed_table_is_a_bijection(self, vector):
        assert sorted(vector["table"]) == list(range(16))


class TestLowWeightGolden:
    def test_codeword_table_matches_committed(self):
        assert list(CODEWORDS) == GOLDEN["lowweight"]["codewords"]
        assert CHUNK_WIDTH == GOLDEN["lowweight"]["chunk_width"]
        assert CODE_WIDTH == GOLDEN["lowweight"]["code_width"]
        assert MAX_CODEWORD_WEIGHT == GOLDEN["lowweight"]["max_weight"]

    def test_codeword_weight_bound_and_unique_decodability(self):
        codewords = GOLDEN["lowweight"]["codewords"]
        assert len(set(codewords)) == 16  # unique decodability
        for code in codewords:
            assert code.bit_count() <= GOLDEN["lowweight"]["max_weight"]
        # (weight, value) order: rank r is the r-th cheapest codeword.
        keys = [(c.bit_count(), c) for c in codewords]
        assert keys == sorted(keys)

    @pytest.mark.parametrize(
        "vector",
        GOLDEN["lowweight"]["streams"],
        ids=lambda v: f"{v['words'][0]:#010x}x{len(v['words'])}",
    )
    def test_identity_driven_stream_and_weights(self, vector):
        enc = LowWeightCodeEncoder()
        stream = enc.encode(vector["words"])
        assert stream.driven == vector["identity_driven"]
        assert (
            per_transfer_transitions(stream.driven)
            == vector["identity_per_transfer"]
        )
        assert enc.decode(stream) == vector["words"]

    @pytest.mark.parametrize(
        "vector",
        GOLDEN["lowweight"]["streams"],
        ids=lambda v: f"{v['words'][0]:#010x}x{len(v['words'])}",
    )
    def test_fitted_driven_stream_and_tables(self, vector):
        enc = LowWeightCodeEncoder().fit(vector["words"])
        assert enc.to_config()["tables"] == vector["fitted_tables"]
        stream = enc.encode(vector["words"])
        assert stream.driven == vector["fitted_driven"]
        assert stream.transitions() == vector["fitted_transitions"]
        assert enc.decode(stream) == vector["words"]

    @pytest.mark.parametrize(
        "vector",
        GOLDEN["lowweight"]["streams"],
        ids=lambda v: f"{v['words'][0]:#010x}x{len(v['words'])}",
    )
    def test_per_transfer_weight_bound(self, vector):
        enc = LowWeightCodeEncoder()
        bound = enc.max_weight_per_transfer
        for weights in (
            vector["identity_per_transfer"],
            per_transfer_transitions(vector["fitted_driven"]),
        ):
            assert all(w <= bound for w in weights)
