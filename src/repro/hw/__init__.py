"""Behavioural model of the fetch-side decode hardware (Section 7).

``tt`` and ``bbit`` model the two SRAM tables of Figure 5; the
``fetch_decoder`` walks a fetch stream exactly as the hardware would —
BBIT lookup on basic-block entry, per-entry transformation selection,
E/CT tail bookkeeping — and restores original instruction words with
one two-input boolean function per bus line.  ``cost`` reproduces the
paper's storage/gate arithmetic.
"""

from repro.errors import TableCapacityError, TableIntegrityError
from repro.hw.tt import TTEntry, TransformationTable
from repro.hw.bbit import BBITEntry, BasicBlockIdentificationTable
from repro.hw.fetch_decoder import FetchDecoder, DecodeFault
from repro.hw.scrubber import ScrubReport, TableScrubber
from repro.hw.cost import HardwareCost, estimate_cost

__all__ = [
    "TTEntry",
    "TransformationTable",
    "BBITEntry",
    "BasicBlockIdentificationTable",
    "FetchDecoder",
    "DecodeFault",
    "TableScrubber",
    "ScrubReport",
    "TableCapacityError",
    "TableIntegrityError",
    "HardwareCost",
    "estimate_cost",
]
