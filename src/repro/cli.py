"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the paper's artefacts:

=============  =====================================================
command        what it prints
=============  =====================================================
``codebook``   a Figure-2/4 style optimal codebook for a block size
``theory``     the Figure-3 TTN/RTN/improvement table
``streams``    the Section-6 random-stream experiment
``encode``     the full flow on one named benchmark (Figure-6 cell)
``suite``      the whole Figure-6 table + Figure-7 chart
``compile``    compile a minicc kernel, run it, encode its hot loops
``cost``       the Section-7.2 hardware cost table
``bench``      codec throughput (fast path vs reference solver),
               written to BENCH_codec.json
``faults``     the fault-injection campaign: per-model detection and
               recovery rates, written to FAULTS_report.json
=============  =====================================================
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.workloads.registry import BENCHMARK_ORDER


def _cmd_codebook(args: argparse.Namespace) -> int:
    from repro.core.codebook import build_codebook
    from repro.core.transformations import ALL_TRANSFORMATIONS, OPTIMAL_SET

    transformations = ALL_TRANSFORMATIONS if args.full else OPTIMAL_SET
    book = build_codebook(args.block_size, transformations)
    print(book.format_table())
    print(
        f"\nTTN = {book.total_transitions}, RTN = {book.reduced_transitions}, "
        f"improvement = {book.improvement_percent:.1f}%"
    )
    return 0


def _cmd_theory(args: argparse.Namespace) -> int:
    from repro.core.theory import format_theory_table, theory_table

    rows = theory_table(tuple(args.sizes))
    print(format_theory_table(rows))
    return 0


def _cmd_streams(args: argparse.Namespace) -> int:
    from repro.core.analysis import random_streams, summarize_streams

    streams = random_streams(args.count, args.length, seed=args.seed)
    summary = summarize_streams(streams, args.block_size, strategy=args.strategy)
    print(
        f"{args.count} x {args.length}-bit uniform streams, "
        f"k={args.block_size}, {args.strategy} strategy"
    )
    print(
        f"pooled reduction {summary.reduction_percent:.2f}% "
        f"(mean {summary.mean_percent:.2f}%, "
        f"stdev {summary.stdev_percent:.2f}%)"
    )
    return 0


def _cmd_encode(args: argparse.Namespace) -> int:
    from repro.pipeline.flow import EncodingFlow
    from repro.workloads.registry import build_workload

    workload = build_workload(args.workload)
    flow = EncodingFlow(
        block_size=args.block_size,
        tt_capacity=args.tt_entries,
        use_codebook=not args.reference,
        parallel=args.parallel,
    )
    result = flow.run_workload(workload)
    print(f"workload:      {workload.description}")
    print(
        f"encoder:       "
        f"{'reference BlockSolver' if args.reference else 'compiled codebook fast path'}"
        + (f", {args.parallel} workers" if args.parallel else "")
    )
    print(f"trace:         {result.trace_length} fetches")
    print(
        f"blocks:        {len(result.selected_blocks)} encoded, "
        f"{result.tt_entries_used}/{result.tt_capacity} TT entries, "
        f"{result.hot_coverage:.0%} of fetches covered"
    )
    print(
        f"transitions:   {result.baseline_transitions} -> "
        f"{result.encoded_transitions} "
        f"({result.reduction_percent:.1f}% reduction)"
    )
    print(f"decode:        {'verified bit-exact' if result.decode_verified else 'n/a'}")
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    from repro.pipeline.flow import EncodingFlow
    from repro.pipeline.report import (
        fig6_table,
        fig7_series,
        format_fig6,
        format_fig7_ascii,
    )
    from repro.sim.cpu import run_program
    from repro.workloads.registry import build_workload

    results = {}
    for name in BENCHMARK_ORDER:
        workload = build_workload(name)
        program = workload.assemble()
        cpu, trace = run_program(program)
        if workload.verify is not None:
            workload.verify(cpu)
        results[name] = {
            k: EncodingFlow(block_size=k).run(program, trace, name)
            for k in args.block_sizes
        }
        print(f"{name}: done ({len(trace)} fetches)", file=sys.stderr)
    print(format_fig6(fig6_table(results, BENCHMARK_ORDER)))
    if args.chart:
        print()
        print(
            format_fig7_ascii(
                fig7_series(results, BENCHMARK_ORDER), BENCHMARK_ORDER
            )
        )
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    from repro.minicc import compile_kernel
    from repro.pipeline.flow import EncodingFlow

    with open(args.file) as handle:
        source = handle.read()
    kernel = compile_kernel(source, name=args.file, opt_level=args.opt)
    program = kernel.assemble()
    print(f"compiled {args.file}: {len(program.words)} instructions")
    if args.show_asm:
        print(kernel.assembly)
    cpu, trace = kernel.run()
    print(f"executed {cpu.steps} instructions")
    result = EncodingFlow(block_size=args.block_size).run(
        program, trace, args.file
    )
    print(
        f"encoding (k={args.block_size}): {result.baseline_transitions} -> "
        f"{result.encoded_transitions} transitions "
        f"({result.reduction_percent:.1f}% reduction), decode "
        f"{'verified' if result.decode_verified else 'n/a'}"
    )
    return 0


def _cmd_cost(args: argparse.Namespace) -> int:
    from repro.hw.cost import cost_sweep

    print(
        f"{'k':>2s} {'TT bits':>8s} {'BBIT bits':>9s} {'gates':>6s} "
        f"{'max loop instrs':>15s}"
    )
    for cost in cost_sweep(tuple(args.sizes), tt_entries=args.tt_entries):
        print(
            f"{cost.block_size:2d} {cost.tt_bits:8d} {cost.bbit_bits:9d} "
            f"{cost.decode_gates:6d} {cost.max_instructions:15d}"
        )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.pipeline.benchmark import run_codec_benchmarks

    report = run_codec_benchmarks(
        stream_length=args.stream_length,
        num_words=args.words,
        block_size=args.block_size,
        repeats=args.repeats,
    )
    print(report.format_table())
    path = report.write(args.json)
    print(f"\nwrote {path}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.faults import DEFAULT_MODELS, MODELS_BY_NAME, CampaignConfig, run_campaign

    if args.models:
        unknown = [name for name in args.models if name not in MODELS_BY_NAME]
        if unknown:
            print(
                f"unknown fault model(s): {', '.join(unknown)}; "
                f"available: {', '.join(MODELS_BY_NAME)}",
                file=sys.stderr,
            )
            return 2
        models = tuple(MODELS_BY_NAME[name] for name in args.models)
    else:
        models = DEFAULT_MODELS
    config = CampaignConfig(
        workloads=tuple(args.workload or ["fir"]),
        block_size=args.block_size,
        seed=args.seed,
        trials=args.trials,
        models=models,
        parity=not args.no_parity,
        workers=args.workers,
        case_timeout=args.timeout,
    )
    for workload in config.workloads:
        print(f"preparing {workload} deployment ...", file=sys.stderr)
    report = run_campaign(config)
    print(report.format_table())
    silent = len(report.silent_cases())
    print(
        f"\n{len(report.cases)} cases, {silent} silently corrupted, "
        f"protected models "
        f"{'all detected or recovered' if report.protected_ok() else 'NOT fully covered'}"
    )
    path = report.write(args.json)
    print(f"wrote {path}")
    if args.check and not report.protected_ok():
        print(
            "FAIL: a parity-protected or protocol fault model shows "
            "silent corruption or an escaped exception",
            file=sys.stderr,
        )
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("codebook", help="Figure-2/4 style codebook")
    p.add_argument("-k", "--block-size", type=int, default=3)
    p.add_argument(
        "--full", action="store_true", help="search all 16 functions"
    )
    p.set_defaults(func=_cmd_codebook)

    p = sub.add_parser("theory", help="Figure-3 TTN/RTN table")
    p.add_argument(
        "--sizes", type=int, nargs="+", default=[2, 3, 4, 5, 6, 7]
    )
    p.set_defaults(func=_cmd_theory)

    p = sub.add_parser("streams", help="Section-6 random streams")
    p.add_argument("-k", "--block-size", type=int, default=5)
    p.add_argument("--count", type=int, default=50)
    p.add_argument("--length", type=int, default=1000)
    p.add_argument("--seed", type=int, default=2003)
    p.add_argument(
        "--strategy", choices=("greedy", "optimal", "disjoint"), default="greedy"
    )
    p.set_defaults(func=_cmd_streams)

    p = sub.add_parser("encode", help="run the flow on one benchmark")
    p.add_argument("workload", choices=BENCHMARK_ORDER)
    p.add_argument("-k", "--block-size", type=int, default=5)
    p.add_argument("--tt-entries", type=int, default=16)
    mode = p.add_mutually_exclusive_group()
    mode.add_argument(
        "--fast",
        dest="reference",
        action="store_false",
        help="compiled codebook fast path (default)",
    )
    mode.add_argument(
        "--reference",
        dest="reference",
        action="store_true",
        help="seed per-block BlockSolver (bit-identical, slower)",
    )
    p.set_defaults(reference=False)
    p.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help="encode basic blocks across N worker processes",
    )
    p.set_defaults(func=_cmd_encode)

    p = sub.add_parser("suite", help="Figure 6 (+7) over all benchmarks")
    p.add_argument(
        "--block-sizes", type=int, nargs="+", default=[4, 5, 6, 7]
    )
    p.add_argument("--chart", action="store_true", help="also print Figure 7")
    p.set_defaults(func=_cmd_suite)

    p = sub.add_parser("compile", help="compile and encode a minicc kernel")
    p.add_argument("file", help="minicc source file")
    p.add_argument("-k", "--block-size", type=int, default=5)
    p.add_argument("-O", "--opt", type=int, choices=(0, 1), default=0)
    p.add_argument("--show-asm", action="store_true")
    p.set_defaults(func=_cmd_compile)

    p = sub.add_parser("cost", help="Section-7.2 hardware cost table")
    p.add_argument("--sizes", type=int, nargs="+", default=[4, 5, 6, 7])
    p.add_argument("--tt-entries", type=int, default=16)
    p.set_defaults(func=_cmd_cost)

    p = sub.add_parser(
        "bench", help="codec throughput: fast path vs reference solver"
    )
    p.add_argument("--json", default="BENCH_codec.json", metavar="PATH")
    p.add_argument("--repeats", type=int, default=3)
    p.add_argument("--stream-length", type=int, default=5000)
    p.add_argument("--words", type=int, default=64)
    p.add_argument("-k", "--block-size", type=int, default=5)
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "faults",
        help="fault-injection campaign over the decode/deploy path",
    )
    p.add_argument(
        "--workload",
        action="append",
        default=None,
        metavar="NAME",
        help="workload(s) to deploy and corrupt (repeatable; default fir)",
    )
    p.add_argument("-k", "--block-size", type=int, default=5)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--trials", type=int, default=25, help="trials per model")
    p.add_argument(
        "--models",
        nargs="+",
        default=None,
        metavar="MODEL",
        help="restrict the sweep to these fault models",
    )
    p.add_argument(
        "--no-parity",
        action="store_true",
        help="disable TT/BBIT parity words (measure the unhardened path)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="fan cases out across N worker processes",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="per-case worker timeout in seconds",
    )
    p.add_argument("--json", default="FAULTS_report.json", metavar="PATH")
    p.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless every protected model is fully detected/recovered",
    )
    p.set_defaults(func=_cmd_faults)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
