"""OpenMetrics text exposition from a registry snapshot."""

from repro.obs.export import render_openmetrics, synthetic_gauge_family
from repro.obs.metrics import MetricsRegistry


def render(reg: MetricsRegistry) -> str:
    return render_openmetrics(reg.snapshot())


class TestRenderOpenMetrics:
    def test_counter_gets_total_suffix(self):
        reg = MetricsRegistry()
        reg.counter("codec.blocks_encoded", workload="fir").inc(3)
        text = render(reg)
        assert "# TYPE codec_blocks_encoded counter" in text
        assert 'codec_blocks_encoded_total{workload="fir"} 3' in text
        assert text.endswith("# EOF\n")

    def test_gauge_plain_name(self):
        reg = MetricsRegistry()
        reg.gauge("flow.hot_coverage").set(0.875)
        text = render(reg)
        assert "# TYPE flow_hot_coverage gauge" in text
        assert "flow_hot_coverage 0.875" in text

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", buckets=(1.0, 5.0))
        for value in (0.5, 0.6, 2.0, 99.0):
            hist.observe(value)
        text = render(reg)
        # Registry buckets are per-bin; the exposition must cumulate.
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="5"} 3' in text
        assert 'lat_bucket{le="+Inf"} 4' in text
        assert "lat_count 4" in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c", path='a"b\\c\nd').inc()
        text = render(reg)
        assert 'c_total{path="a\\"b\\\\c\\nd"} 1' in text

    def test_names_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("serve.jobs-completed").inc()
        text = render(reg)
        assert "serve_jobs_completed_total 1" in text

    def test_output_is_parseable_line_format(self):
        reg = MetricsRegistry()
        reg.counter("a.one").inc()
        reg.gauge("b.two").set(1.5)
        reg.histogram("c.three").observe(0.1)
        lines = render(reg).splitlines()
        assert lines[-1] == "# EOF"
        for line in lines:
            assert line.startswith("#") or " " in line

    def test_synthetic_gauge_family(self):
        fam = synthetic_gauge_family(
            [({"tenant": "t0"}, 0.25), ({}, 1.0)], "burn"
        )
        text = render_openmetrics({"slo.burn_rate": fam})
        assert 'slo_burn_rate{tenant="t0"} 0.25' in text
        assert "\nslo_burn_rate 1\n" in text
