"""The minicc driver: source + initial data -> assembled Program."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.isa.assembler import Program, assemble
from repro.minicc.ast_nodes import DOUBLE, Kernel
from repro.minicc.codegen import CodeGenerator, CompileError
from repro.minicc.parser import ParseError, parse
from repro.workloads.common import format_doubles

__all__ = ["CompiledKernel", "CompileError", "ParseError", "compile_kernel"]


def _format_ints(values: Sequence[int], per_line: int = 12) -> str:
    lines = []
    for i in range(0, len(values), per_line):
        chunk = ", ".join(str(int(v)) for v in values[i : i + per_line])
        lines.append(f"        .word {chunk}")
    return "\n".join(lines)


@dataclass
class CompiledKernel:
    """A compiled minicc kernel, ready to assemble and run."""

    name: str
    kernel: Kernel
    assembly: str
    _program: Program | None = field(default=None, repr=False)

    def assemble(self) -> Program:
        if self._program is None:
            self._program = assemble(self.assembly)
        return self._program

    def run(self, max_steps: int = 500_000_000):
        """Execute; returns (cpu, fetch trace)."""
        from repro.sim.cpu import run_program

        return run_program(self.assemble(), max_steps=max_steps)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def read(self, cpu, name: str):
        """Read a variable back from simulated memory.

        Scalars return a single value; arrays return flat lists
        (row-major for 2-D).
        """
        decl = self.kernel.decl_by_name.get(name)
        if decl is None:
            raise KeyError(f"no variable {name!r} in kernel {self.name!r}")
        base = self.assemble().address_of(name)
        count = decl.element_count
        if decl.base_type == DOUBLE:
            values = [cpu.memory.read_f64(base + 8 * i) for i in range(count)]
        else:
            raw = [cpu.memory.read_u32(base + 4 * i) for i in range(count)]
            values = [v - 0x100000000 if v & 0x80000000 else v for v in raw]
        return values[0] if not decl.dims else values


def compile_kernel(
    source: str,
    data: Mapping[str, Sequence[float] | float | int] | None = None,
    name: str = "kernel",
    opt_level: int = 0,
) -> CompiledKernel:
    """Compile minicc source to a :class:`CompiledKernel`.

    ``data`` maps variable names to initial values (scalars or flat
    sequences, row-major for 2-D arrays); everything else starts at
    zero.  ``opt_level=1`` promotes scalar globals to registers for
    the whole kernel (written back on exit).
    """
    kernel = parse(source)
    data = dict(data or {})
    for key in data:
        if key not in kernel.decl_by_name:
            raise CompileError(f"initial data for undeclared variable {key!r}")

    generator = CodeGenerator(kernel, opt_level=opt_level)
    generator.generate()

    data_lines: list[str] = []
    for decl in kernel.decls:
        initial = data.get(decl.name)
        data_lines.append(f"{decl.name}:")
        if initial is None:
            data_lines.append(f"        .space {decl.byte_size}")
            continue
        values = (
            [initial] if not decl.dims else list(initial)  # type: ignore[list-item]
        )
        if len(values) != decl.element_count:
            raise CompileError(
                f"{decl.name}: expected {decl.element_count} initial "
                f"values, got {len(values)}"
            )
        if decl.base_type == DOUBLE:
            data_lines.append(format_doubles([float(v) for v in values]))
        else:
            data_lines.append(_format_ints([int(v) for v in values]))
    for value, label in generator.float_constants.items():
        data_lines.append(f"{label}:")
        data_lines.append(format_doubles([value]))

    assembly = "\n".join(
        [
            f"# minicc output for kernel {name!r}",
            "        .data",
            *data_lines,
            "        .text",
            "main:",
            *generator.lines,
        ]
    )
    return CompiledKernel(name=name, kernel=kernel, assembly=assembly)
