"""The paper's complete flow, programmatically.

Section 4's operational overview, end to end:

1. run the application on the simulator and capture the fetch trace;
2. build the CFG, profile it, find the natural loops;
3. select hot basic blocks under the Transformation Table budget;
4. vertically encode each selected block (per bus line, chained
   overlapped blocks) and patch the encoded words into the program
   memory image;
5. program the TT and BBIT, then replay the fetch trace through the
   behavioural fetch decoder and check every instruction is restored
   bit-exactly;
6. count bus transitions for the baseline image and the encoded image
   over the same trace.

The result carries everything Figure 6 reports (total transitions,
reduction percentage) plus the bookkeeping the hardware sections talk
about (TT entries used, coverage of the hot region).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.cfg.graph import ControlFlowGraph
from repro.cfg.hotspot import (
    DEFAULT_BBIT_ENTRIES,
    DEFAULT_TT_ENTRIES,
    SelectionPlan,
    select_hot_blocks,
)
from repro.cfg.loops import find_natural_loops
from repro.cfg.profile import profile_trace
from repro.core.program_codec import encode_basic_blocks
from repro.core.transformations import OPTIMAL_SET, Transformation
from repro.errors import DecodeVerificationError
from repro.hw.bbit import BasicBlockIdentificationTable, BBITEntry
from repro.hw.fetch_decoder import FetchDecoder
from repro.hw.tt import TransformationTable
from repro.isa.assembler import Program
from repro.obs import OBS
from repro.sim.bus import count_trace_transitions, per_line_trace_transitions
from repro.workloads.common import Workload


@dataclass
class FlowResult:
    """Everything measured for one (workload, block size) point."""

    name: str
    block_size: int
    baseline_transitions: int
    encoded_transitions: int
    trace_length: int
    selected_blocks: list[int]
    tt_entries_used: int
    tt_capacity: int
    hot_coverage: float  # fetch fraction inside encoded blocks
    decode_verified: bool
    encoded_image: list[int] = field(repr=False, default_factory=list)
    plan: SelectionPlan | None = field(repr=False, default=None)

    @property
    def reduction_percent(self) -> float:
        if self.baseline_transitions == 0:
            return 0.0
        return (
            100.0
            * (self.baseline_transitions - self.encoded_transitions)
            / self.baseline_transitions
        )

    @property
    def transitions_millions(self) -> float:
        """Figure 6's #TR row unit."""
        return self.baseline_transitions / 1e6

    @property
    def encoded_millions(self) -> float:
        return self.encoded_transitions / 1e6


class EncodingFlow:
    """Configurable end-to-end encoder + measurement pipeline."""

    def __init__(
        self,
        block_size: int,
        tt_capacity: int = DEFAULT_TT_ENTRIES,
        bbit_capacity: int = DEFAULT_BBIT_ENTRIES,
        transformations: Sequence[Transformation] = OPTIMAL_SET,
        strategy: str = "greedy",
        loops_only: bool = True,
        verify_decode: bool = True,
        use_codebook: bool = True,
        parallel: int | None = None,
        parity_protect: bool = False,
    ):
        self.block_size = block_size
        self.tt_capacity = tt_capacity
        self.bbit_capacity = bbit_capacity
        self.transformations = tuple(transformations)
        self.strategy = strategy
        self.loops_only = loops_only
        self.verify_decode = verify_decode
        #: Arm per-row parity words on the TT/BBIT this flow programs
        #: (the hardened deploy path; see docs/robustness.md).
        self.parity_protect = parity_protect
        #: ``True`` routes block encoding through the compiled codebook
        #: fast path; ``False`` runs the reference per-block solver.
        self.use_codebook = use_codebook
        #: Fan basic-block encoding across N worker processes (the
        #: blocks are independent); ``None`` encodes serially.
        self.parallel = parallel

    # ------------------------------------------------------------------

    def run(
        self, program: Program, trace: Sequence[int], name: str = "program"
    ) -> FlowResult:
        """Encode ``program``'s hot blocks and measure over ``trace``."""
        span = OBS.tracer.span(
            "flow.run", workload=name, k=self.block_size, fetches=len(trace)
        )
        with span:
            with OBS.tracer.span("flow.analyze", workload=name):
                cfg = ControlFlowGraph.build(program)
                profile = profile_trace(cfg, trace)
                loops = find_natural_loops(cfg)
            with OBS.tracer.span("flow.select", workload=name):
                plan = select_hot_blocks(
                    profile,
                    self.block_size,
                    tt_capacity=self.tt_capacity,
                    bbit_capacity=self.bbit_capacity,
                    loops=loops,
                    loops_only=self.loops_only,
                )

            tt = TransformationTable(
                self.tt_capacity, parity=self.parity_protect
            )
            bbit = BasicBlockIdentificationTable(
                self.bbit_capacity, parity=self.parity_protect
            )
            image = list(program.words)
            encoded_region: set[int] = set()
            # Long blocks against a nearly-full TT encode a prefix only;
            # the E/CT tail ends decoding there and the rest of the block
            # stays plain in memory.
            lengths = {
                start: plan.encoded_length(start, len(cfg.blocks[start]))
                for start in plan.selected
            }
            with OBS.tracer.span(
                "flow.encode", workload=name, blocks=len(plan.selected)
            ):
                encodings = encode_basic_blocks(
                    [
                        cfg.blocks[start].words[: lengths[start]]
                        for start in plan.selected
                    ],
                    self.block_size,
                    transformations=self.transformations,
                    strategy=self.strategy,
                    use_codebook=self.use_codebook,
                    parallel=self.parallel,
                )
            with OBS.tracer.span("flow.deploy", workload=name):
                for start, encoding in zip(plan.selected, encodings):
                    length = lengths[start]
                    base_index = tt.allocate(encoding)
                    bbit.install(
                        BBITEntry(
                            pc=start,
                            tt_index=base_index,
                            num_instructions=length,
                        )
                    )
                    first = program.index_of(start)
                    for offset, word in enumerate(encoding.encoded_words):
                        image[first + offset] = word
                    encoded_region.update(range(start, start + 4 * length, 4))

            decode_verified = False
            if self.verify_decode and plan.selected:
                with OBS.tracer.span("flow.verify_decode", workload=name):
                    decoder = FetchDecoder(
                        tt, bbit, self.block_size, encoded_region=encoded_region
                    )
                    base = program.text_base
                    decoded = decoder.decode_trace(
                        list(trace), lambda pc: image[(pc - base) >> 2]
                    )
                    original = [
                        program.words[(pc - base) >> 2] for pc in trace
                    ]
                    if decoded != original:
                        raise DecodeVerificationError(
                            f"{name}: hardware decode failed to restore the "
                            "instruction stream"
                        )
                    decode_verified = True

            with OBS.tracer.span("flow.measure", workload=name):
                baseline = count_trace_transitions(program, trace)
                encoded = count_trace_transitions(program, trace, image)
        if OBS.enabled:
            self._publish_metrics(name, plan, baseline, encoded, profile)
        return FlowResult(
            name=name,
            block_size=self.block_size,
            baseline_transitions=baseline,
            encoded_transitions=encoded,
            trace_length=len(trace),
            selected_blocks=list(plan.selected),
            tt_entries_used=plan.tt_entries_used,
            tt_capacity=self.tt_capacity,
            hot_coverage=profile.coverage_of(plan.selected),
            decode_verified=decode_verified,
            encoded_image=image,
            plan=plan,
        )

    def _publish_metrics(
        self, name: str, plan, baseline: int, encoded: int, profile
    ) -> None:
        """Per-(workload, k) gauges and counters for one flow run."""
        registry = OBS.registry
        labels = {"workload": name, "k": str(self.block_size)}
        registry.counter(
            "flow.runs", "end-to-end encoding flow executions", **labels
        ).inc()
        registry.gauge(
            "flow.baseline_transitions",
            "bus transitions over the trace, unencoded image",
            **labels,
        ).set(baseline)
        registry.gauge(
            "flow.encoded_transitions",
            "bus transitions over the trace, encoded image",
            **labels,
        ).set(encoded)
        registry.gauge(
            "flow.hot_coverage",
            "fraction of fetches inside encoded blocks",
            **labels,
        ).set(profile.coverage_of(plan.selected))
        registry.gauge(
            "flow.tt_entries_used", "TT rows the selection consumed", **labels
        ).set(plan.tt_entries_used)
        registry.gauge(
            "flow.blocks_selected", "basic blocks selected for encoding", **labels
        ).set(len(plan.selected))

    def run_workload(self, workload: Workload, max_steps: int = 200_000_000) -> FlowResult:
        """Convenience: simulate a workload, then run the flow."""
        program = workload.assemble()
        from repro.sim.cpu import run_program

        with OBS.tracer.span("flow.simulate", workload=workload.name):
            cpu, trace = run_program(program, max_steps=max_steps)
            if workload.verify is not None:
                workload.verify(cpu)
        return self.run(program, trace, name=workload.name)

    def per_line_breakdown(
        self, program: Program, trace: Sequence[int], result: FlowResult
    ) -> tuple[list[int], list[int]]:
        """Per-bus-line transitions (baseline, encoded) for a result."""
        return (
            per_line_trace_transitions(program, trace),
            per_line_trace_transitions(program, trace, result.encoded_image),
        )
