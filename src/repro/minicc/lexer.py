"""Tokeniser for minicc."""

from __future__ import annotations

import re
from dataclasses import dataclass

KEYWORDS = {"int", "double", "for", "while", "if", "else"}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|//[^\n]*)
  | (?P<float>\d+\.\d*(?:[eE][-+]?\d+)?|\.\d+(?:[eE][-+]?\d+)?|\d+[eE][-+]?\d+)
  | (?P<int>\d+)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><=|>=|==|!=|&&|\|\||[-+*/%<>=!;,(){}\[\]])
    """,
    re.VERBOSE,
)


class LexError(ValueError):
    """Raised on unrecognised input."""


@dataclass(frozen=True)
class Token:
    kind: str  # 'int' | 'float' | 'name' | 'kw' | 'op' | 'eof'
    text: str
    line: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


def tokenize(source: str) -> list[Token]:
    """Turn source text into a token list ending with an EOF token."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise LexError(
                f"line {line}: unexpected character {source[pos]!r}"
            )
        text = match.group(0)
        kind = match.lastgroup
        if kind == "ws":
            line += text.count("\n")
        elif kind == "name" and text in KEYWORDS:
            tokens.append(Token("kw", text, line))
        else:
            tokens.append(Token(kind, text, line))
        pos = match.end()
    tokens.append(Token("eof", "", line))
    return tokens
