"""Tests for the CPU interpreter, one behaviour at a time."""

import pytest

from repro.isa.assembler import STACK_TOP, assemble
from repro.sim.cpu import Cpu, CpuError, run_program


def run_asm(body: str, max_steps: int = 100_000):
    """Assemble a .text body (with exit appended) and run it."""
    source = f".text\nmain:\n{body}\nli $v0, 10\nsyscall\n"
    program = assemble(source)
    cpu = Cpu(program)
    cpu.run(max_steps=max_steps)
    return cpu


class TestArithmetic:
    def test_addu_wraps(self):
        cpu = run_asm("li $t0, 0x7FFFFFFF\nli $t1, 1\naddu $t2, $t0, $t1\n")
        assert cpu.regs[10] == 0x80000000

    def test_subu_wraps(self):
        cpu = run_asm("li $t0, 0\nli $t1, 1\nsubu $t2, $t0, $t1\n")
        assert cpu.regs[10] == 0xFFFFFFFF

    def test_logic_ops(self):
        cpu = run_asm(
            "li $t0, 0x0F0F\nli $t1, 0x00FF\n"
            "and $t2, $t0, $t1\nor $t3, $t0, $t1\n"
            "xor $t4, $t0, $t1\nnor $t5, $t0, $t1\n"
        )
        assert cpu.regs[10] == 0x000F
        assert cpu.regs[11] == 0x0FFF
        assert cpu.regs[12] == 0x0FF0
        assert cpu.regs[13] == 0xFFFFF000

    def test_slt_signed(self):
        cpu = run_asm("li $t0, -1\nli $t1, 1\nslt $t2, $t0, $t1\nsltu $t3, $t0, $t1\n")
        assert cpu.regs[10] == 1  # -1 < 1 signed
        assert cpu.regs[11] == 0  # 0xFFFFFFFF > 1 unsigned

    def test_shifts(self):
        cpu = run_asm(
            "li $t0, -8\nsra $t1, $t0, 1\nsrl $t2, $t0, 1\nsll $t3, $t0, 1\n"
        )
        assert cpu.regs[9] == 0xFFFFFFFC  # -4
        assert cpu.regs[10] == 0x7FFFFFFC
        assert cpu.regs[11] == 0xFFFFFFF0

    def test_variable_shifts(self):
        cpu = run_asm("li $t0, 1\nli $t1, 5\nsllv $t2, $t0, $t1\n")
        assert cpu.regs[10] == 32

    def test_mult_hi_lo(self):
        cpu = run_asm(
            "li $t0, 0x10000\nli $t1, 0x10000\nmult $t0, $t1\n"
            "mfhi $t2\nmflo $t3\n"
        )
        assert cpu.regs[10] == 1
        assert cpu.regs[11] == 0

    def test_mult_signed(self):
        cpu = run_asm("li $t0, -2\nli $t1, 3\nmult $t0, $t1\nmflo $t2\nmfhi $t3\n")
        assert cpu.regs[10] == 0xFFFFFFFA  # -6
        assert cpu.regs[11] == 0xFFFFFFFF  # sign extension

    def test_div_truncates_toward_zero(self):
        cpu = run_asm("li $t0, -7\nli $t1, 2\ndiv $t0, $t1\nmflo $t2\nmfhi $t3\n")
        assert cpu.regs[10] == 0xFFFFFFFD  # -3, not -4
        assert cpu.regs[11] == 0xFFFFFFFF  # remainder -1

    def test_div_by_zero_is_quiet(self):
        cpu = run_asm("li $t0, 5\nli $t1, 0\ndiv $t0, $t1\nmflo $t2\n")
        assert cpu.regs[10] == 0

    def test_zero_register_immutable(self):
        cpu = run_asm("li $t0, 7\naddu $zero, $t0, $t0\naddiu $zero, $t0, 1\n")
        assert cpu.regs[0] == 0


class TestMemoryOps:
    def test_lw_sw(self):
        cpu = run_asm(
            ".data\nv: .word 0\n.text\n"
            "la $t0, v\nli $t1, 1234\nsw $t1, 0($t0)\nlw $t2, 0($t0)\n",
        )
        assert cpu.regs[10] == 1234

    def test_byte_ops_sign(self):
        cpu = run_asm(
            ".data\nb: .byte 0xFF\n.text\n"
            "la $t0, b\nlb $t1, 0($t0)\nlbu $t2, 0($t0)\n",
        )
        assert cpu.regs[9] == 0xFFFFFFFF
        assert cpu.regs[10] == 0xFF

    def test_half_ops(self):
        cpu = run_asm(
            ".data\nh: .half 0x8001\n.text\n"
            "la $t0, h\nlh $t1, 0($t0)\nlhu $t2, 0($t0)\n",
        )
        assert cpu.regs[9] == 0xFFFF8001
        assert cpu.regs[10] == 0x8001

    def test_sb_sh(self):
        cpu = run_asm(
            ".data\nv: .word 0\n.text\n"
            "la $t0, v\nli $t1, 0x1234ABCD\nsb $t1, 0($t0)\nsh $t1, 2($t0)\nlw $t2, 0($t0)\n",
        )
        assert cpu.regs[10] == 0xABCD00CD


class TestControlFlow:
    def test_loop_counts(self):
        cpu = run_asm(
            "li $t0, 0\nli $t1, 10\nloop: addiu $t0, $t0, 1\nbne $t0, $t1, loop\n"
        )
        assert cpu.regs[8] == 10

    def test_jal_jr(self):
        cpu = run_asm(
            "jal func\nb done\nfunc: li $t0, 99\njr $ra\ndone: nop\n"
        )
        assert cpu.regs[8] == 99

    def test_branch_flavours(self):
        cpu = run_asm(
            """
            li $t0, -5
            li $t5, 0
            bltz $t0, a
            li $t5, 1
            a: bgez $t0, bad
            blez $t0, b
            li $t5, 2
            b: li $t1, 5
            bgtz $t1, c
            li $t5, 3
            c: nop
            bad: nop
            """
        )
        assert cpu.regs[13] == 0

    def test_runaway_guard(self):
        source = ".text\nmain: b main\n"
        program = assemble(source)
        cpu = Cpu(program)
        with pytest.raises(CpuError, match="exceeded"):
            cpu.run(max_steps=100)

    def test_pc_out_of_text(self):
        source = ".text\nmain: jr $zero\n"
        program = assemble(source)
        cpu = Cpu(program)
        with pytest.raises(CpuError, match="PC out of text"):
            cpu.run(max_steps=10)


class TestFloatingPoint:
    def test_arithmetic(self):
        cpu = run_asm(
            ".data\nd: .double 3.0, 2.0\nout: .double 0.0\n.text\n"
            "la $t0, d\nl.d $f2, 0($t0)\nl.d $f4, 8($t0)\n"
            "mul.d $f6, $f2, $f4\nadd.d $f6, $f6, $f2\n"
            "div.d $f6, $f6, $f4\nsub.d $f6, $f6, $f4\n"
            "s.d $f6, 16($t0)\n",
        )
        # ((3*2 + 3) / 2) - 2 = 2.5
        out = cpu.program.address_of("out")
        assert cpu.memory.read_f64(out) == 2.5

    def test_sqrt_abs_neg_mov(self):
        cpu = run_asm(
            ".data\nd: .double 16.0\nout: .space 32\n.text\n"
            "la $t0, d\nl.d $f2, 0($t0)\nsqrt.d $f4, $f2\n"
            "neg.d $f6, $f4\nabs.d $f8, $f6\nmov.d $f10, $f8\n"
            "s.d $f4, 8($t0)\ns.d $f6, 16($t0)\ns.d $f10, 24($t0)\n",
        )
        base = cpu.program.address_of("d")
        assert cpu.memory.read_f64(base + 8) == 4.0
        assert cpu.memory.read_f64(base + 16) == -4.0
        assert cpu.memory.read_f64(base + 24) == 4.0

    def test_compare_and_branch(self):
        cpu = run_asm(
            ".data\nd: .double 1.0, 2.0\n.text\n"
            "la $t0, d\nl.d $f2, 0($t0)\nl.d $f4, 8($t0)\n"
            "li $t5, 0\n"
            "c.lt.d $f2, $f4\nbc1t yes\nli $t5, 1\n"
            "yes: c.eq.d $f2, $f4\nbc1f no\nli $t5, 2\n"
            "no: nop\n",
        )
        assert cpu.regs[13] == 0

    def test_mtc1_converts(self):
        cpu = run_asm(
            ".data\nout: .double 0.0\n.text\n"
            "li $t0, -7\nmtc1 $t0, $f2\nla $t1, out\ns.d $f2, 0($t1)\n",
        )
        assert cpu.memory.read_f64(cpu.program.address_of("out")) == -7.0


class TestSyscalls:
    def test_print_int(self):
        cpu = run_asm("li $a0, -42\nli $v0, 1\nsyscall\n")
        assert cpu.output == ["-42"]

    def test_print_string(self):
        cpu = run_asm(
            '.data\nmsg: .asciiz "hey"\n.text\nla $a0, msg\nli $v0, 4\nsyscall\n'
        )
        assert cpu.output == ["hey"]

    def test_print_char(self):
        cpu = run_asm("li $a0, 65\nli $v0, 11\nsyscall\n")
        assert cpu.output == ["A"]

    def test_unknown_syscall(self):
        source = ".text\nmain: li $v0, 77\nsyscall\n"
        program = assemble(source)
        cpu = Cpu(program)
        with pytest.raises(CpuError, match="unknown syscall"):
            cpu.run(max_steps=10)


class TestInitialState:
    def test_stack_and_gp(self):
        program = assemble(".text\nmain: li $v0, 10\nsyscall\n")
        cpu = Cpu(program)
        assert cpu.regs[29] == STACK_TOP
        assert cpu.regs[28] == program.data_base + 0x8000

    def test_text_visible_in_memory(self):
        program = assemble(".text\nmain: addu $t0, $t1, $t2\nli $v0, 10\nsyscall\n")
        cpu = Cpu(program)
        assert cpu.memory.read_u32(program.text_base) == 0x012A4021


class TestTrace:
    def test_trace_matches_execution(self):
        source = """
        .text
        main: li $t0, 3
        loop: addiu $t0, $t0, -1
        bnez $t0, loop
        li $v0, 10
        syscall
        """
        program = assemble(source)
        cpu, trace = run_program(program)
        assert len(trace) == cpu.steps
        assert trace[0] == program.entry
        # loop body (2 instructions) runs 3 times
        loop = program.address_of("loop")
        assert trace.count(loop) == 3
