"""End-to-end ``repro verify``: the self-test contract.

A clean campaign must exit 0 with a green report; a campaign run under
an injected decoder mutation must exit 1 under ``--check`` and leave a
replayable counterexample behind; ``--replay`` against that report
must reproduce the divergence.  Mutations monkeypatch process-global
decode state, so every mutated run happens in a subprocess — the test
process itself never decodes through a corrupted path.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main

SRC = str(Path(__file__).resolve().parents[2] / "src")

#: Small but gate-complete: one gated block size keeps sweeps fast.
FAST_ARGS = ["--cases", "20", "--seed", "7", "--block-sizes", "4"]

#: The codebook-entry mutation corrupts a k=5 entry, so its self-test
#: must run k=5; the other mutations fire at any block size.
MUTATION_ARGS = {
    "suffix-table": FAST_ARGS,
    "codebook-entry": ["--cases", "20", "--seed", "7", "--block-sizes", "5"],
    "tt-decode": FAST_ARGS,
    "bitplane-scan": FAST_ARGS,
    # Encoder-zoo mutations fire via the block-size-independent
    # sweep_encoders leg, so the fast args suffice.
    "memoryless-codebook": FAST_ARGS,
    "lowweight-codeword": FAST_ARGS,
}


def run_cli(args, cwd) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", "verify", *args],
        cwd=cwd,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
        timeout=600,
    )


class TestCleanRun:
    def test_exits_zero_and_writes_a_green_report(self, tmp_path):
        proc = run_cli([*FAST_ARGS, "--check", "--deterministic"], tmp_path)
        assert proc.returncode == 0, proc.stderr
        assert "check: OK" in proc.stdout
        data = json.loads((tmp_path / "VERIFY_report.json").read_text())
        assert data["check_ok"] is True
        assert data["mismatches"] == []
        assert data["mutations"] == []
        assert data["coverage"]["codebook_entries"]["percent"] == 100.0
        assert data["total_seconds"] == 0.0

    def test_metrics_writes_an_obs_run_report(self, tmp_path):
        proc = run_cli([*FAST_ARGS, "--metrics"], tmp_path)
        assert proc.returncode == 0, proc.stderr
        run_report = json.loads((tmp_path / "RUN_report.json").read_text())
        names = set(run_report["metrics"])
        assert "verify.cases" in names
        assert "verify.coverage_percent" in names
        assert "verify.campaign" in run_report["trace"]["by_name"]


@pytest.mark.parametrize(
    "mutation",
    [
        "suffix-table",
        "codebook-entry",
        "tt-decode",
        "bitplane-scan",
        "memoryless-codebook",
        "lowweight-codeword",
    ],
)
class TestMutationSelfTest:
    def test_mutated_decoder_fails_check_and_is_replayable(
        self, tmp_path, mutation
    ):
        report = tmp_path / "VERIFY_report.json"
        proc = run_cli(
            [*MUTATION_ARGS[mutation], "--check", "--inject-mutation", mutation],
            tmp_path,
        )
        assert proc.returncode == 1, (proc.stdout, proc.stderr)
        assert "FAIL" in proc.stderr
        data = json.loads(report.read_text())
        assert data["check_ok"] is False
        assert data["mismatches"]
        assert data["counterexamples"]
        assert all(
            record["mutations"] == [mutation]
            for record in data["counterexamples"]
        )

        # The recorded counterexample reproduces from the report alone.
        replay = run_cli(["--replay", str(report)], tmp_path)
        assert replay.returncode == 0, (replay.stdout, replay.stderr)
        assert "replay: reproduced" in replay.stdout


class TestReplayEdgeCases:
    def test_replay_missing_report_exits_two(self, tmp_path, capsys):
        assert main(["verify", "--replay", str(tmp_path / "nope.json")]) == 2

    def test_replay_empty_report_exits_two(self, tmp_path, capsys):
        report = tmp_path / "VERIFY_report.json"
        report.write_text(json.dumps({"counterexamples": []}))
        assert main(["verify", "--replay", str(report)]) == 2

    def test_replay_index_out_of_range_exits_two(self, tmp_path, capsys):
        report = tmp_path / "VERIFY_report.json"
        report.write_text(
            json.dumps(
                {
                    "counterexamples": [
                        {
                            "kind": "stream",
                            "seed_key": "s",
                            "params": {"k": 4, "strategy": "greedy"},
                            "input": [1, 0],
                            "mismatch": {"kind": "x"},
                            "mutations": [],
                        }
                    ]
                }
            )
        )
        assert main(["verify", "--replay", str(report), "--replay-index", "5"]) == 2

    def test_stale_counterexample_exits_three(self, tmp_path, capsys):
        # A healthy input recorded as a counterexample: the divergence
        # is gone (no mutation armed), so replay reports staleness.
        report = tmp_path / "VERIFY_report.json"
        report.write_text(
            json.dumps(
                {
                    "counterexamples": [
                        {
                            "kind": "stream",
                            "seed_key": "s",
                            "params": {"k": 4, "strategy": "greedy"},
                            "input": [1, 0, 1, 1, 0],
                            "mismatch": {"kind": "table_decode_wrong"},
                            "mutations": [],
                        }
                    ]
                }
            )
        )
        assert main(["verify", "--replay", str(report)]) == 3
        assert "did NOT reproduce" in capsys.readouterr().out


class TestArgValidation:
    def test_unknown_mutation_exits_two(self, capsys):
        assert main(["verify", "--inject-mutation", "cosmic-ray"]) == 2
        assert "unknown mutation" in capsys.readouterr().err
