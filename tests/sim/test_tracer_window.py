"""Remaining tracer coverage: the window helper and edge cases."""

from repro.isa.assembler import assemble
from repro.sim.tracer import FetchTrace, window


class TestWindow:
    def test_slice_semantics(self):
        addresses = list(range(0, 100, 4))
        assert list(window(addresses, 2, 3)) == [8, 12, 16]

    def test_clamped_at_end(self):
        assert list(window([4, 8], 1, 10)) == [8]

    def test_empty(self):
        assert list(window([], 0, 5)) == []


class TestEmptyTrace:
    def test_empty_statistics(self):
        program = assemble(".text\nmain: li $v0, 10\nsyscall\n")
        trace = FetchTrace(program=program, addresses=[])
        assert len(trace) == 0
        assert trace.words() == []
        assert trace.coverage() == 0.0
        assert not trace.fetch_counts()
        assert not trace.edge_counts()

    def test_empty_program_coverage(self):
        program = assemble("")
        trace = FetchTrace(program=program, addresses=[])
        assert trace.coverage() == 0.0
