"""Shared transition-counting primitives for the encoder zoo.

Every bus-encoding backend (the paper's TT/BBIT scheme and the
baselines/competitors in :mod:`repro.baselines`) is judged by the same
physical quantity: bit toggles between consecutive transfers.  This
module owns the one convention everything else builds on — the first
transfer of a sequence is free (there is no previous bus state to
toggle against), matching :func:`repro.sim.bus.count_trace_transitions`
and the historical baseline counters — so relative comparisons between
schemes are apples to apples by construction.
"""

from __future__ import annotations

from typing import Sequence


def word_transitions(words: Sequence[int]) -> int:
    """Total bit toggles across consecutive words (first word free)."""
    return sum((a ^ b).bit_count() for a, b in zip(words, words[1:]))


def per_transfer_transitions(words: Sequence[int]) -> list[int]:
    """Toggle count of each transfer after the first (length n-1)."""
    return [(a ^ b).bit_count() for a, b in zip(words, words[1:])]
