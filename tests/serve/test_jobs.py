"""Job model: validation closes the door, identities stay stable."""

import pytest

from repro.serve.jobs import (
    JOB_KINDS,
    OUTCOMES,
    SERVE_STRATEGIES,
    JobValidationError,
    deterministic_result,
    fallback_identity,
    make_result,
    parse_request,
)


def _raw(**overrides) -> dict:
    raw = {
        "tenant": "t0",
        "job_id": "j0",
        "kind": "encode",
        "workload": "fir",
        "block_size": 5,
        "tt_capacity": 16,
        "strategy": "greedy",
        "workload_params": {"taps": 8, "samples": 48},
    }
    raw.update(overrides)
    return raw


class TestParseRequest:
    def test_roundtrips_through_wire(self):
        request = parse_request(_raw())
        again = parse_request(request.wire())
        assert again == request
        assert again.key == request.key

    def test_defaults(self):
        request = parse_request(
            {"tenant": "t", "job_id": "j", "kind": "deploy", "workload": "mmul"}
        )
        assert request.block_size == 5
        assert request.tt_capacity == 16
        assert request.strategy == "greedy"
        assert request.deadline_s is None
        assert request.chaos == ""

    @pytest.mark.parametrize("kind", JOB_KINDS)
    def test_every_kind_admits(self, kind):
        assert parse_request(_raw(kind=kind)).kind == kind

    @pytest.mark.parametrize(
        "bad",
        [
            _raw(kind="transcode"),
            _raw(workload="nonesuch"),
            _raw(strategy="disjoint"),  # stream-codec only, no decode
            _raw(block_size=1),
            _raw(block_size=99),
            _raw(tt_capacity=0),
            _raw(tenant=""),
            _raw(job_id=7),
            _raw(workload_params={"taps": "many"}),
            _raw(workload_params={"taps": 0}),
            _raw(workload_params={"taps": 10**9}),
            _raw(deadline_s=0),
            _raw(deadline_s=7200),
            _raw(deadline_s="soon"),
            _raw(chaos="explode"),
            _raw(surprise=1),  # unknown field
            "not a dict",
            None,
            [1, 2],
        ],
    )
    def test_rejects_naming_the_problem(self, bad):
        with pytest.raises(JobValidationError, match="malformed job request"):
            parse_request(bad)

    def test_disjoint_is_not_a_serve_strategy(self):
        assert "disjoint" not in SERVE_STRATEGIES

    def test_underscore_keys_tolerated_and_identity_neutral(self):
        plain = parse_request(_raw())
        tagged = parse_request(_raw(_seq=41, _chaos_mutation="x"))
        assert tagged.key == plain.key

    def test_key_tracks_semantic_fields(self):
        base = parse_request(_raw())
        assert parse_request(_raw(block_size=4)).key != base.key
        assert parse_request(_raw(strategy="optimal")).key != base.key
        assert (
            parse_request(_raw(workload_params={"taps": 8, "samples": 49})).key
            != base.key
        )
        # ...but param insertion order does not matter.
        reordered = parse_request(
            _raw(workload_params={"samples": 48, "taps": 8})
        )
        assert reordered.key == base.key


class TestFallbackIdentity:
    def test_recovers_tenant_and_job_id(self):
        tenant, job_id, key = fallback_identity(_raw(kind="transcode"))
        assert (tenant, job_id) == ("t0", "j0")
        assert key.startswith("t0|j0|malformed-")

    def test_underscore_keys_do_not_perturb_identity(self):
        bad = _raw(kind="transcode")
        _, _, key_a = fallback_identity(bad)
        _, _, key_b = fallback_identity({**bad, "_seq": 997})
        assert key_a == key_b

    def test_survives_garbage(self):
        tenant, job_id, key = fallback_identity(["not", "a", "dict"])
        assert (tenant, job_id) == ("?", "?")
        assert "malformed-" in key


class TestResults:
    def test_make_result_fixed_key_order(self):
        result = make_result(
            tenant="t", job_id="j", kind="encode", outcome="ok"
        )
        assert list(result) == [
            "tenant",
            "job_id",
            "kind",
            "outcome",
            "payload",
            "error",
            "attempts",
            "duration_s",
        ]

    def test_make_result_refuses_unknown_outcome(self):
        with pytest.raises(ValueError, match="unknown outcome"):
            make_result(
                tenant="t", job_id="j", kind="encode", outcome="mystery"
            )

    def test_outcome_taxonomy_is_closed(self):
        assert OUTCOMES == (
            "ok",
            "malformed",
            "deadline_exceeded",
            "error",
            "shed",
        )

    def test_deterministic_result_zeroes_path_dependent_fields(self):
        result = make_result(
            tenant="t",
            job_id="j",
            kind="encode",
            outcome="ok",
            payload={"bundle_digest": "abc"},
            attempts=3,
            duration_s=1.5,
        )
        clean = deterministic_result(result)
        assert clean["attempts"] == 0
        assert clean["duration_s"] == 0.0
        assert clean["payload"] == {"bundle_digest": "abc"}
        # Original untouched; key order preserved.
        assert result["attempts"] == 3
        assert list(clean) == list(result)
