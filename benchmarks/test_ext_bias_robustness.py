"""Extension: input-distribution robustness.

The paper claims its technique "delivers power reduction results that
are essentially independent of the particular input values or of the
input value distributions" — unlike statistical (Huffman/dictionary)
methods that assume a stable nonuniform distribution (Sections 1, 3).

This bench sweeps the bit-value bias of random streams and compares:

* our encoding, trained on nothing (it is per-stream exact);
* the dictionary/frequency baseline *trained on a different
  distribution* than it is evaluated on (the mismatch scenario the
  paper warns about, at word granularity).
"""

from repro.baselines.frequency import FrequencyRemapper
from repro.core.analysis import random_streams, summarize_streams

BIASES = (0.1, 0.3, 0.5, 0.7, 0.9)


def _ours_by_bias():
    rows = {}
    for bias in BIASES:
        streams = random_streams(10, 1000, seed=17, bias=bias)
        rows[bias] = summarize_streams(streams, block_size=5)
    return rows


def _phase_stream(seed: int, hot_words: int = 6, count: int = 4000):
    """A loop-like word stream: a small hot set of random 32-bit words
    repeated in random order (what a dictionary method trains on)."""
    import random as _random

    rng = _random.Random(seed)
    hot = [rng.getrandbits(32) for _ in range(hot_words)]
    return [hot[rng.randrange(hot_words)] for _ in range(count)]


def test_ext_bias_robustness(benchmark, record_result):
    rows = benchmark.pedantic(_ours_by_bias, rounds=1, iterations=1)

    # Ours: reduction percentage stays high across the whole bias
    # sweep (and is symmetric around 0.5 by the inversion duality).
    for bias in BIASES:
        assert rows[bias].reduction_percent > 40.0, bias
    assert abs(
        rows[0.1].reduction_percent - rows[0.9].reduction_percent
    ) < 5.0

    # Dictionary baseline under distribution shift: train on one
    # program phase (one hot-word set), evaluate on another phase —
    # every lookup misses and the advantage evaporates.
    trained_on = _phase_stream(seed=1)
    remapper = FrequencyRemapper(max_entries=32).fit(trained_on)

    def _gain(words):
        raw = sum((a ^ b).bit_count() for a, b in zip(words, words[1:]))
        return 100.0 * (raw - remapper.transitions(words)) / raw

    matched_gain = _gain(trained_on)
    mismatched_gain = _gain(_phase_stream(seed=2))
    assert matched_gain > 50.0
    assert mismatched_gain < matched_gain - 30.0

    lines = [
        "Extension — input-distribution robustness (paper Sections 1/3)",
        "",
        "ours (per-stream exact encoding, k=5):",
    ]
    for bias in BIASES:
        lines.append(
            f"  bit bias {bias:.1f}: reduction "
            f"{rows[bias].reduction_percent:5.1f}%"
        )
    lines += [
        "",
        "dictionary baseline (32-entry) under phase shift:",
        f"  trained+evaluated on the same hot set:  {matched_gain:5.1f}% gain",
        f"  evaluated on a different program phase: {mismatched_gain:5.1f}% gain",
        "",
        "conclusion: the transformation encoding is insensitive to the "
        "value distribution, while the statistical baseline's benefit "
        "collapses under distribution shift — the paper's claim",
    ]
    record_result("ext_bias_robustness", "\n".join(lines))
