"""Tests for the bus transition/energy model and the fetch tracer."""

import pytest

from repro.core.bitstream import hamming
from repro.isa.assembler import assemble
from repro.sim.bus import (
    BusModel,
    count_trace_transitions,
    image_with_patches,
    per_line_trace_transitions,
)
from repro.sim.cpu import run_program
from repro.sim.tracer import FetchTrace


@pytest.fixture(scope="module")
def looped_program():
    return assemble(
        """
        .text
        main: li $t0, 4
        loop: addiu $t0, $t0, -1
        bnez $t0, loop
        li $v0, 10
        syscall
        """
    )


class TestTransitionCounting:
    def test_matches_manual_hamming(self, looped_program):
        cpu, trace = run_program(looped_program)
        words = [looped_program.word_at(a) for a in trace]
        expected = sum(hamming(a, b) for a, b in zip(words, words[1:]))
        assert count_trace_transitions(looped_program, trace) == expected

    def test_per_line_sums_to_total(self, looped_program):
        cpu, trace = run_program(looped_program)
        per_line = per_line_trace_transitions(looped_program, trace)
        assert len(per_line) == 32
        assert sum(per_line) == count_trace_transitions(looped_program, trace)

    def test_empty_and_single_traces(self, looped_program):
        assert count_trace_transitions(looped_program, []) == 0
        assert (
            count_trace_transitions(looped_program, [looped_program.entry])
            == 0
        )

    def test_constant_fetch_no_transitions(self, looped_program):
        pc = looped_program.entry
        assert count_trace_transitions(looped_program, [pc] * 10) == 0

    def test_custom_image(self, looped_program):
        cpu, trace = run_program(looped_program)
        # An all-equal image produces zero transitions.
        image = [0xAAAAAAAA] * len(looped_program.words)
        assert count_trace_transitions(looped_program, trace, image) == 0

    def test_bad_address_rejected(self, looped_program):
        with pytest.raises(ValueError):
            count_trace_transitions(looped_program, [0])


class TestImagePatching:
    def test_patch(self, looped_program):
        base = looped_program.text_base
        image = image_with_patches(looped_program, {base + 4: 0xDEADBEEF})
        assert image[1] == 0xDEADBEEF
        assert image[0] == looped_program.words[0]

    def test_bad_patch_rejected(self, looped_program):
        with pytest.raises(ValueError):
            image_with_patches(looped_program, {0: 1})


class TestEnergyModel:
    def test_energy_proportional_to_transitions(self):
        model = BusModel()
        assert model.energy_joules(200) == pytest.approx(
            2 * model.energy_joules(100)
        )

    def test_offchip_costs_more(self):
        onchip = BusModel(line_capacitance=0.5e-12)
        offchip = BusModel(line_capacitance=20e-12)
        assert offchip.energy_joules(1000) > 10 * onchip.energy_joules(1000)

    def test_savings_percent(self):
        model = BusModel()
        assert model.savings_percent(200, 100) == 50.0
        assert model.savings_percent(0, 0) == 0.0

    def test_trace_energy(self, looped_program):
        cpu, trace = run_program(looped_program)
        model = BusModel()
        expected = model.energy_joules(
            count_trace_transitions(looped_program, trace)
        )
        assert model.trace_energy(looped_program, trace) == expected


class TestFetchTrace:
    def test_record(self, looped_program):
        trace = FetchTrace.record(looped_program)
        assert trace.addresses[0] == looped_program.entry
        assert len(trace) > 0

    def test_fetch_counts(self, looped_program):
        trace = FetchTrace.record(looped_program)
        loop = looped_program.address_of("loop")
        assert trace.fetch_counts()[loop] == 4

    def test_words_align_with_addresses(self, looped_program):
        trace = FetchTrace.record(looped_program)
        words = trace.words()
        assert len(words) == len(trace)
        assert words[0] == looped_program.word_at(trace.addresses[0])

    def test_edge_counts(self, looped_program):
        trace = FetchTrace.record(looped_program)
        loop = looped_program.address_of("loop")
        # back edge (bnez -> loop) taken 3 times
        assert trace.edge_counts()[(loop + 4, loop)] == 3

    def test_coverage_full(self, looped_program):
        trace = FetchTrace.record(looped_program)
        assert trace.coverage() == 1.0
