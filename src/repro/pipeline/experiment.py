"""Parameter-sweep experiment runner.

Research-grade studies over the flow: cross any set of workloads with
block sizes, TT capacities, transformation sets and strategies; each
trace is simulated once and reused across every configuration.  The
result grid exports to CSV for external analysis.

Resilience: pass ``wal_path`` to journal every finished grid point to
a JSONL write-ahead log (:mod:`repro.runtime.checkpoint`); with
``resume=True`` a sweep killed mid-run replays the log, skips finished
points (a workload whose whole grid is already journaled is not even
re-simulated), and produces an identical CSV.  Replayed points come
back as :class:`SweepRecord` — the deterministic metric row of a
point, which is also exactly what the CSV export uses.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.core.transformations import OPTIMAL_SET, Transformation
from repro.pipeline.flow import EncodingFlow, FlowResult
from repro.runtime import CheckpointLog, atomic_write_text
from repro.sim.cpu import run_program
from repro.workloads.registry import build_workload


@dataclass(frozen=True)
class SweepPoint:
    """One configuration of the sweep grid."""

    workload: str
    block_size: int
    tt_capacity: int
    strategy: str

    def label(self) -> str:
        return (
            f"{self.workload}/k{self.block_size}"
            f"/tt{self.tt_capacity}/{self.strategy}"
        )


@dataclass(frozen=True)
class SweepRecord:
    """The deterministic metrics of one finished grid point — the
    exact row the CSV export emits, and the unit the write-ahead log
    journals (a full :class:`FlowResult` carries programs and traces;
    the record carries only numbers)."""

    reduction_percent: float
    baseline_transitions: int
    encoded_transitions: int
    tt_entries_used: int
    blocks_encoded: int
    hot_coverage: float
    trace_length: int

    @classmethod
    def from_flow_result(cls, result: FlowResult) -> "SweepRecord":
        return cls(
            reduction_percent=result.reduction_percent,
            baseline_transitions=result.baseline_transitions,
            encoded_transitions=result.encoded_transitions,
            tt_entries_used=result.tt_entries_used,
            blocks_encoded=len(result.selected_blocks),
            hot_coverage=result.hot_coverage,
            trace_length=result.trace_length,
        )

    def to_dict(self) -> dict:
        return dict(vars(self))

    @classmethod
    def from_dict(cls, data: dict) -> "SweepRecord":
        return cls(
            reduction_percent=float(data["reduction_percent"]),
            baseline_transitions=int(data["baseline_transitions"]),
            encoded_transitions=int(data["encoded_transitions"]),
            tt_entries_used=int(data["tt_entries_used"]),
            blocks_encoded=int(data["blocks_encoded"]),
            hot_coverage=float(data["hot_coverage"]),
            trace_length=int(data["trace_length"]),
        )


def _as_record(result) -> SweepRecord:
    if isinstance(result, SweepRecord):
        return result
    return SweepRecord.from_flow_result(result)


@dataclass
class SweepResult:
    """The full grid of results, keyed by sweep point.  Values are
    :class:`FlowResult` for freshly computed points or
    :class:`SweepRecord` for points replayed from a write-ahead log;
    both expose the sweep metrics."""

    points: dict[SweepPoint, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.points)

    def best_for(self, workload: str) -> tuple[SweepPoint, object]:
        """The configuration with the highest reduction for a workload."""
        candidates = [
            (point, result)
            for point, result in self.points.items()
            if point.workload == workload
        ]
        if not candidates:
            raise KeyError(f"no results for workload {workload!r}")
        return max(candidates, key=lambda item: item[1].reduction_percent)

    def filter(self, **criteria) -> list[tuple[SweepPoint, object]]:
        """Results whose point matches every given attribute."""
        out = []
        for point, result in self.points.items():
            if all(getattr(point, key) == value for key, value in criteria.items()):
                out.append((point, result))
        return out

    def to_csv(self) -> str:
        lines = [
            "workload,block_size,tt_capacity,strategy,"
            "baseline_transitions,encoded_transitions,reduction_percent,"
            "tt_entries_used,blocks_encoded,hot_coverage,trace_length"
        ]
        for point in sorted(
            self.points,
            key=lambda p: (p.workload, p.block_size, p.tt_capacity, p.strategy),
        ):
            record = _as_record(self.points[point])
            lines.append(
                f"{point.workload},{point.block_size},{point.tt_capacity},"
                f"{point.strategy},{record.baseline_transitions},"
                f"{record.encoded_transitions},"
                f"{record.reduction_percent:.4f},{record.tt_entries_used},"
                f"{record.blocks_encoded},{record.hot_coverage:.4f},"
                f"{record.trace_length}"
            )
        return "\n".join(lines)

    def write_csv(self, path: str | Path) -> Path:
        """Atomic CSV export (never a truncated artifact)."""
        target = Path(path)
        atomic_write_text(target, self.to_csv() + "\n")
        return target


def _sweep_run_key(
    items: list[tuple[str, dict]],
    block_sizes: Sequence[int],
    tt_capacities: Sequence[int],
    strategies: Sequence[str],
    transformations: Sequence[Transformation],
) -> str:
    """WAL identity: which grid is being swept (not how it executes)."""
    identity = {
        "workloads": [[name, params] for name, params in items],
        "block_sizes": list(block_sizes),
        "tt_capacities": list(tt_capacities),
        "strategies": list(strategies),
        "transformations": [t.name for t in transformations],
    }
    blob = json.dumps(identity, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def run_sweep(
    workloads: Sequence[str] | dict[str, dict],
    block_sizes: Sequence[int] = (4, 5, 6, 7),
    tt_capacities: Sequence[int] = (16,),
    strategies: Sequence[str] = ("greedy",),
    transformations: Sequence[Transformation] = OPTIMAL_SET,
    verify_decode: bool = True,
    max_steps: int = 500_000_000,
    wal_path: str | Path | None = None,
    resume: bool = False,
) -> SweepResult:
    """Run the full cross product; each workload simulates once.

    ``workloads`` is a sequence of names or a ``{name: params}``
    mapping for size overrides.  ``wal_path``/``resume`` journal and
    replay finished grid points (see the module docstring).
    """
    if isinstance(workloads, dict):
        items = list(workloads.items())
    else:
        items = [(name, {}) for name in workloads]

    checkpoint: CheckpointLog | None = None
    completed: dict[str, dict] = {}
    if wal_path is not None:
        wal_file = Path(wal_path)
        if not resume and wal_file.exists():
            wal_file.unlink()
        checkpoint = CheckpointLog(
            wal_file,
            run_key=_sweep_run_key(
                items, block_sizes, tt_capacities, strategies, transformations
            ),
        )
        if resume:
            completed = checkpoint.load()

    grid = [
        SweepPoint(name, block_size, tt_capacity, strategy)
        for name, _ in items
        for block_size in block_sizes
        for tt_capacity in tt_capacities
        for strategy in strategies
    ]
    pending = {point for point in grid if point.label() not in completed}

    sweep = SweepResult()
    try:
        for name, params in items:
            workload_points = [p for p in grid if p.workload == name]
            for point in workload_points:
                if point not in pending:
                    sweep.points[point] = SweepRecord.from_dict(
                        completed[point.label()]
                    )
            if not any(p in pending for p in workload_points):
                continue  # whole grid journaled: skip the simulation
            workload = build_workload(name, **params)
            program = workload.assemble()
            cpu, trace = run_program(program, max_steps=max_steps)
            if workload.verify is not None:
                workload.verify(cpu)
            for point in workload_points:
                if point not in pending:
                    continue
                flow = EncodingFlow(
                    block_size=point.block_size,
                    tt_capacity=point.tt_capacity,
                    transformations=transformations,
                    strategy=point.strategy,
                    verify_decode=verify_decode,
                )
                result = flow.run(program, trace, point.label())
                sweep.points[point] = result
                if checkpoint is not None:
                    checkpoint.record(
                        point.label(),
                        SweepRecord.from_flow_result(result).to_dict(),
                    )
    finally:
        if checkpoint is not None:
            checkpoint.close()
    return sweep


# ----------------------------------------------------------------------
# Per-region scheme-selector sweep (the encoder zoo over the registry)
# ----------------------------------------------------------------------


@dataclass
class SelectorSummary:
    """One row per workload of a :func:`run_selector_sweep`."""

    results: list  # list[SelectorResult]

    def to_rows(self) -> list[dict]:
        rows = []
        for result in self.results:
            best_single = min(
                (
                    result.single_scheme_transitions(scheme)
                    for scheme in self._schemes(result)
                ),
                default=result.baseline_transitions,
            )
            rows.append(
                {
                    "workload": result.name,
                    "regions": len(result.choices),
                    "choices": ", ".join(
                        f"{c.header:#x}:{c.scheme}" for c in result.choices
                    ),
                    "baseline": result.baseline_transitions,
                    "best_single": best_single,
                    "mixed": result.mixed_transitions,
                    "reduction_percent": round(result.reduction_percent, 2),
                }
            )
        return rows

    @staticmethod
    def _schemes(result) -> list[str]:
        from repro.baselines.protocol import registered_schemes
        from repro.pipeline.selector import SCHEME_RAW, SCHEME_TTBBIT

        return [SCHEME_TTBBIT, SCHEME_RAW, *registered_schemes()]

    def format_markdown(self) -> str:
        lines = [
            "| workload | regions | per-region choice | baseline | "
            "best single | mixed | reduction |",
            "|---|---|---|---|---|---|---|",
        ]
        for row in self.to_rows():
            lines.append(
                f"| {row['workload']} | {row['regions']} | "
                f"{row['choices']} | {row['baseline']} | "
                f"{row['best_single']} | {row['mixed']} | "
                f"{row['reduction_percent']:.2f}% |"
            )
        return "\n".join(lines)

    def never_worse(self) -> bool:
        """True when every workload's mixed cost is <= every
        single-scheme cost — the selector's acceptance criterion."""
        return all(
            row["mixed"] <= row["best_single"] for row in self.to_rows()
        )


def run_selector_sweep(
    workloads: Sequence[str] | None = None,
    block_size: int = 5,
    max_steps: int = 500_000_000,
) -> SelectorSummary:
    """Run the per-region scheme selector on every named registry
    workload (default: the full nine-benchmark registry) and summarise
    the per-region choices, the mixed cost, and the best single-scheme
    yardstick."""
    from repro.pipeline.selector import SchemeSelector
    from repro.workloads.registry import BENCHMARK_ORDER, EXTENDED_WORKLOADS

    names = (
        tuple(workloads)
        if workloads is not None
        else BENCHMARK_ORDER + EXTENDED_WORKLOADS
    )
    results = []
    for name in names:
        workload = build_workload(name)
        program = workload.assemble()
        cpu, trace = run_program(program, max_steps=max_steps)
        if workload.verify is not None:
            workload.verify(cpu)
        selector = SchemeSelector(block_size)
        results.append(selector.run(program, trace, name))
    return SelectorSummary(results=results)
