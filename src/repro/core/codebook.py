"""Codebook generation — reproduces Figures 2 and 4.

A *codebook* for block size ``k`` maps every ``2**k`` block word to its
optimal anchored :class:`~repro.core.block_solver.BlockSolution`.  The
paper prints these books for ``k = 3`` (Figure 2, full 16-function
search) and ``k = 5`` (Figure 4, restricted 8-function search; only the
lexicographic first half is shown, the rest following by the
global-inversion symmetry).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

from repro.core.bitstream import to_paper_string
from repro.core.block_solver import BlockSolution, BlockSolver
from repro.core.transformations import OPTIMAL_SET, Transformation

# Pretty names matching the paper's tau column typography.
_PAPER_TAU_NAMES = {
    "x": "x",
    "~x": "!x",
    "y": "y",
    "~y": "!y",
    "xor": "x^y",
    "xnor": "x~^y",
    "nor": "!(x|y)",
    "nand": "!(x&y)",
}


@dataclass(frozen=True)
class Codebook:
    """All optimal anchored block solutions for one block size."""

    block_size: int
    solutions: tuple[BlockSolution, ...]

    @property
    def total_transitions(self) -> int:
        """The paper's TTN: transitions summed over all block words."""
        return sum(s.original_transitions for s in self.solutions)

    @property
    def reduced_transitions(self) -> int:
        """The paper's RTN: transitions summed over all code words."""
        return sum(s.encoded_transitions for s in self.solutions)

    @property
    def improvement_percent(self) -> float:
        """The paper's Impr(%) row of Figure 3."""
        ttn = self.total_transitions
        if ttn == 0:
            return 0.0
        return 100.0 * (ttn - self.reduced_transitions) / ttn

    def solution_for(self, word_paper_string: str) -> BlockSolution:
        """Look up the row for a paper-style block word, e.g. "01001"."""
        for solution in self.solutions:
            if to_paper_string(solution.word) == word_paper_string:
                return solution
        raise KeyError(f"no block word {word_paper_string!r} in codebook")

    def first_half(self) -> tuple[BlockSolution, ...]:
        """Rows whose paper-style word starts with 0 (the half printed
        in Figure 4; the other half follows by symmetry)."""
        return tuple(
            s for s in self.solutions if to_paper_string(s.word)[0] == "0"
        )

    def rows(self) -> list[tuple[str, str, str, int, int]]:
        """Figure-2/4 style rows: (X, X~, tau, T_x, T_x~)."""
        return [
            (
                to_paper_string(s.word),
                to_paper_string(s.code),
                _PAPER_TAU_NAMES.get(s.transformation.name, s.transformation.name),
                s.original_transitions,
                s.encoded_transitions,
            )
            for s in self.solutions
        ]

    def format_table(self) -> str:
        """Render the codebook in the layout of Figures 2 and 4."""
        header = f"{'X':>{self.block_size}}  {'X~':>{self.block_size}}  {'tau':>8}  Tx  Tx~"
        lines = [header, "-" * len(header)]
        for word, code, tau, tx, txt in self.rows():
            lines.append(f"{word}  {code}  {tau:>8}  {tx:>2}  {txt:>3}")
        return "\n".join(lines)


def build_codebook(
    block_size: int,
    transformations: Sequence[Transformation] = OPTIMAL_SET,
) -> Codebook:
    """Compute the optimal anchored codebook for ``block_size``.

    Words are produced in the paper's lexicographic order (the order of
    the printed paper strings), so ``rows()`` lines up with Figures 2
    and 4 directly.
    """
    if block_size < 1:
        raise ValueError(f"block size must be >= 1, got {block_size}")
    solver = BlockSolver(transformations)
    solutions = []
    for paper_bits in itertools.product((0, 1), repeat=block_size):
        word = list(reversed(paper_bits))  # paper string -> time order
        solutions.append(solver.solve_anchored(word))
    return Codebook(block_size=block_size, solutions=tuple(solutions))
