"""Seeded storage-fault injection: the durability-syscall shim.

Every durability surface in the system — the checkpoint WAL, atomic
report writes, the bundle disk cache, flight-record dumps — used to
call ``os``/``io`` directly, which made "the disk never fails" an
untested axiom.  This module turns those call sites into an
*injectable* seam:

* :class:`StorageVFS` is the real implementation **and** the
  interface: a thin, syscall-shaped veneer over ``os.open`` /
  ``write`` / ``flush`` / ``fsync`` / ``os.replace`` / ``os.unlink``.
  Handles are ordinary binary file objects.
* :class:`FaultyVFS` wraps any VFS with a seeded :class:`FaultPlan`
  and injects the fault models a hostile filesystem actually
  produces: ``EIO`` on write or fsync, ``ENOSPC`` mid-write (a seeded
  prefix lands, then the device is full), torn appends (a seeded
  strict prefix lands and the process "dies" —
  :class:`SimulatedCrash`), and crash-before / crash-after
  ``os.replace``.
* the process-global active VFS (:func:`get_vfs` /
  :func:`install_vfs` / :func:`active_vfs`) is what
  ``atomic_write_text``, :class:`~repro.runtime.CheckpointLog`, the
  bundle cache and the flight recorder default to, so one
  ``install_vfs(FaultyVFS(...))`` — or the ``REPRO_STORAGE_FAULTS``
  environment spec, for subprocess tests — puts the whole process's
  storage plane under fault injection.

Injected syscall failures are raised as plain :class:`OSError` with a
real ``errno`` — exactly what the kernel would hand back — and the
durability layers above translate them into the typed
:class:`~repro.errors.StorageError` hierarchy at their API boundary.
:class:`SimulatedCrash` derives from :class:`BaseException` so no
``except Exception`` recovery path can accidentally "survive" a kill.
"""

from __future__ import annotations

import errno
import os
import random
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

try:  # Unix only; Windows falls back to unlocked appends.
    import fcntl
except ImportError:  # pragma: no cover - non-Unix platforms
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "ENV_SPEC",
    "FaultPlan",
    "FaultSpec",
    "FaultyVFS",
    "SimulatedCrash",
    "StorageVFS",
    "active_vfs",
    "get_vfs",
    "install_vfs",
    "plan_from_spec",
]

#: Environment variable holding a fault-plan spec; when set, the first
#: :func:`get_vfs` call of the process arms a :class:`FaultyVFS` (this
#: is how subprocess / CI scenarios inject without code changes).
ENV_SPEC = "REPRO_STORAGE_FAULTS"

#: Fault kinds a :class:`FaultSpec` may name.
FAULT_KINDS = (
    "eio",          # the syscall fails with EIO, nothing (more) written
    "enospc",       # a seeded prefix lands, then ENOSPC
    "torn",         # a seeded strict prefix lands, then SimulatedCrash
    "crash",        # SimulatedCrash before the syscall runs
    "crash-after",  # the syscall runs to completion, then SimulatedCrash
)

#: Ops a spec may target (``any`` matches every durability op).
FAULT_OPS = (
    "open", "write", "flush", "fsync", "replace", "unlink", "any",
)


class SimulatedCrash(BaseException):
    """The process 'died' at an injected syscall point.

    A ``BaseException`` on purpose: recovery code that swallows broad
    ``Exception``\\ s must not be able to swallow a kill — the test
    harness catches this explicitly, nothing else may."""


class StorageVFS:
    """The real durability syscalls; also the interface fault shims
    and the in-memory crash simulator implement.

    Handles are binary file objects (``mkstemp``/``open_append``
    return them); every byte-level op goes through the methods here so
    a wrapper sees each syscall exactly once.
    """

    name = "real"

    # -- handle-producing ----------------------------------------------

    def mkstemp(self, dir: Path | str, prefix: str, suffix: str):
        """A fresh temp file opened for binary write: (handle, name)."""
        fd, name = tempfile.mkstemp(dir=str(dir), prefix=prefix, suffix=suffix)
        return os.fdopen(fd, "wb"), name

    def open_append(self, path: Path | str):
        """The path opened for binary append (created if missing)."""
        return open(path, "ab")

    # -- handle ops ----------------------------------------------------

    def write(self, handle, data: bytes) -> None:
        handle.write(data)

    def flush(self, handle) -> None:
        handle.flush()

    def fsync(self, handle) -> None:
        handle.flush()
        os.fsync(handle.fileno())

    def close(self, handle) -> None:
        handle.close()

    def lock_exclusive(self, handle) -> bool:
        """Take a non-blocking exclusive ``flock``; ``False`` when the
        platform has no flock, raises ``OSError`` when already held."""
        if fcntl is None:  # pragma: no cover - non-Unix platforms
            return False
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        return True

    # -- namespace ops -------------------------------------------------

    def replace(self, src: Path | str, dst: Path | str) -> None:
        os.replace(src, dst)

    def unlink(self, path: Path | str) -> None:
        os.unlink(path)

    def mkdirs(self, path: Path | str) -> None:
        Path(path).mkdir(parents=True, exist_ok=True)

    # -- read / metadata side (not fault targets; routed so an
    # -- in-memory VFS works end-to-end) -------------------------------

    def exists(self, path: Path | str) -> bool:
        return Path(path).exists()

    def size(self, path: Path | str) -> int:
        return os.stat(path).st_size

    def tail_byte(self, path: Path | str) -> bytes:
        """The final byte of the file (empty bytes for an empty file)."""
        with open(path, "rb") as handle:
            handle.seek(0, os.SEEK_END)
            if handle.tell() == 0:
                return b""
            handle.seek(-1, os.SEEK_END)
            return handle.read(1)

    def read_bytes(self, path: Path | str) -> bytes:
        return Path(path).read_bytes()


@dataclass
class FaultSpec:
    """One injection rule: fire ``kind`` at the ``at``-th matching
    durability syscall (0-based, counted per spec), or at every
    matching syscall when ``always`` is set (the "disk stays broken
    until space returns" model ``repro serve`` degrades under)."""

    op: str = "any"
    kind: str = "eio"
    #: Only syscalls whose path contains this substring match
    #: (``None`` matches everything) — so a plan can break the WAL
    #: without breaking the metrics report written next to it.
    path: str | None = None
    at: int | None = None
    always: bool = False

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; one of {FAULT_KINDS}"
            )
        if self.op not in FAULT_OPS:
            raise ValueError(
                f"unknown fault op {self.op!r}; one of {FAULT_OPS}"
            )
        if not self.always and self.at is None:
            self.at = 0

    def matches(self, op: str, path: str) -> bool:
        if self.op != "any" and self.op != op:
            return False
        return self.path is None or self.path in path


@dataclass
class FaultPlan:
    """A seeded set of :class:`FaultSpec` rules plus the mutable state
    tracking which have fired.  ``disarm()`` models the environment
    healing (space freed, controller reseated): subsequent syscalls
    run clean."""

    specs: list[FaultSpec] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        self.armed = True
        self.fired: list[dict] = []
        self._match_counts: dict[int, int] = {}

    def disarm(self) -> None:
        self.armed = False

    def rearm(self) -> None:
        self.armed = True

    def pick(self, op: str, path: str) -> FaultSpec | None:
        """The spec (if any) that fires for this syscall; advances the
        per-spec match counters either way."""
        if not self.armed:
            return None
        for index, spec in enumerate(self.specs):
            if not spec.matches(op, path):
                continue
            count = self._match_counts.get(index, 0)
            self._match_counts[index] = count + 1
            if spec.always or count == spec.at:
                self.fired.append(
                    {"op": op, "kind": spec.kind, "path": path, "n": count}
                )
                return spec
        return None

    def rng_for(self, op: str) -> random.Random:
        """A deterministic RNG for sizing torn/ENOSPC prefixes, keyed
        by seed and how many faults have fired so far."""
        # A string seed: random.Random seeds strings via a stable hash
        # (unlike builtin hash(), which PYTHONHASHSEED randomises).
        return random.Random(f"{self.seed}:{op}:{len(self.fired)}")


class FaultyVFS(StorageVFS):
    """A :class:`StorageVFS` that consults a :class:`FaultPlan` before
    every durability syscall and injects the planned failures."""

    name = "faulty"

    def __init__(self, plan: FaultPlan, inner: StorageVFS | None = None):
        self.plan = plan
        self.inner = inner or StorageVFS()
        #: (handle -> path) so handle-level ops can path-match.
        self._paths: dict[int, str] = {}

    # -- bookkeeping ---------------------------------------------------

    def _track(self, handle, path: Path | str):
        self._paths[id(handle)] = str(path)
        return handle

    def _path_of(self, handle) -> str:
        return self._paths.get(id(handle), "")

    def _count_injected(self, op: str, kind: str) -> None:
        from repro.obs import OBS

        if OBS.enabled:
            OBS.registry.counter(
                "storage.injected_faults",
                "storage-fault syscall injections fired",
                op=op,
                kind=kind,
            ).inc()

    def _check(self, op: str, path: str) -> FaultSpec | None:
        spec = self.plan.pick(op, path)
        if spec is not None:
            self._count_injected(op, spec.kind)
            if spec.kind == "crash":
                raise SimulatedCrash(f"injected crash before {op} on {path}")
            if spec.kind == "eio":
                raise OSError(errno.EIO, f"injected EIO on {op}", path)
        return spec

    def _after(self, spec: FaultSpec | None, op: str, path: str) -> None:
        if spec is not None and spec.kind == "crash-after":
            raise SimulatedCrash(f"injected crash after {op} on {path}")

    # -- handle-producing ----------------------------------------------

    def mkstemp(self, dir: Path | str, prefix: str, suffix: str):
        probe = str(Path(dir) / f"{prefix}*{suffix}")
        spec = self._check("open", probe)
        if spec is not None and spec.kind == "enospc":
            raise OSError(errno.ENOSPC, "injected ENOSPC on open", probe)
        handle, name = self.inner.mkstemp(dir, prefix, suffix)
        self._after(spec, "open", name)
        return self._track(handle, name), name

    def open_append(self, path: Path | str):
        spec = self._check("open", str(path))
        if spec is not None and spec.kind == "enospc":
            raise OSError(errno.ENOSPC, "injected ENOSPC on open", str(path))
        handle = self.inner.open_append(path)
        self._after(spec, "open", str(path))
        return self._track(handle, path)

    # -- handle ops ----------------------------------------------------

    def write(self, handle, data: bytes) -> None:
        path = self._path_of(handle)
        spec = self._check("write", path)
        if spec is None:
            self.inner.write(handle, data)
            return
        if spec.kind in ("enospc", "torn"):
            # A seeded prefix reaches the page cache before the
            # failure: torn cuts at a strict prefix (crash artifact),
            # ENOSPC may land anything short of the full buffer.
            rng = self.plan.rng_for("write")
            cut = rng.randrange(len(data)) if data else 0
            if cut:
                self.inner.write(handle, data[:cut])
                self.inner.flush(handle)
            if spec.kind == "torn":
                raise SimulatedCrash(
                    f"injected torn append ({cut}/{len(data)} bytes) on {path}"
                )
            raise OSError(
                errno.ENOSPC,
                f"injected ENOSPC mid-write ({cut}/{len(data)} bytes)",
                path,
            )
        self.inner.write(handle, data)
        self._after(spec, "write", path)

    def flush(self, handle) -> None:
        path = self._path_of(handle)
        spec = self._check("flush", path)
        if spec is not None and spec.kind == "enospc":
            raise OSError(errno.ENOSPC, "injected ENOSPC on flush", path)
        self.inner.flush(handle)
        self._after(spec, "flush", path)

    def fsync(self, handle) -> None:
        path = self._path_of(handle)
        spec = self._check("fsync", path)
        if spec is not None and spec.kind == "enospc":
            # Delayed allocation: the writes "succeeded" into cache,
            # the device ran out when fsync forced real blocks.
            raise OSError(errno.ENOSPC, "injected ENOSPC on fsync", path)
        if spec is not None and spec.kind == "torn":
            raise OSError(errno.EIO, "injected EIO on fsync", path)
        self.inner.fsync(handle)
        self._after(spec, "fsync", path)

    def close(self, handle) -> None:
        self._paths.pop(id(handle), None)
        self.inner.close(handle)

    def lock_exclusive(self, handle) -> bool:
        return self.inner.lock_exclusive(handle)

    # -- namespace ops -------------------------------------------------

    def replace(self, src: Path | str, dst: Path | str) -> None:
        spec = self._check("replace", str(dst))
        if spec is not None and spec.kind in ("enospc", "torn"):
            raise OSError(errno.EIO, "injected failure on replace", str(dst))
        self.inner.replace(src, dst)
        self._after(spec, "replace", str(dst))

    def unlink(self, path: Path | str) -> None:
        spec = self._check("unlink", str(path))
        if spec is not None and spec.kind in ("enospc", "torn"):
            raise OSError(errno.EIO, "injected failure on unlink", str(path))
        self.inner.unlink(path)
        self._after(spec, "unlink", str(path))

    # -- reads delegate untouched --------------------------------------

    def mkdirs(self, path: Path | str) -> None:
        self.inner.mkdirs(path)

    def exists(self, path: Path | str) -> bool:
        return self.inner.exists(path)

    def size(self, path: Path | str) -> int:
        return self.inner.size(path)

    def tail_byte(self, path: Path | str) -> bytes:
        return self.inner.tail_byte(path)

    def read_bytes(self, path: Path | str) -> bytes:
        return self.inner.read_bytes(path)


# ----------------------------------------------------------------------
# The process-global active VFS
# ----------------------------------------------------------------------

_DEFAULT = StorageVFS()
_active: StorageVFS | None = None
_env_checked = False


def get_vfs() -> StorageVFS:
    """The VFS every durability surface defaults to.

    Resolution order: an explicitly installed VFS, else a
    ``REPRO_STORAGE_FAULTS`` plan from the environment (checked once
    per process — that is how subprocess scenarios arm injection),
    else the real syscalls."""
    global _active, _env_checked
    if _active is not None:
        return _active
    if not _env_checked:
        _env_checked = True
        spec = os.environ.get(ENV_SPEC)
        if spec:
            _active = FaultyVFS(plan_from_spec(spec))
            return _active
    return _DEFAULT


def install_vfs(vfs: StorageVFS | None) -> None:
    """Install (or with ``None`` remove) the process-global VFS."""
    global _active
    _active = vfs


class active_vfs:
    """``with active_vfs(FaultyVFS(plan)): ...`` — scoped install."""

    def __init__(self, vfs: StorageVFS | None):
        self.vfs = vfs
        self._previous: StorageVFS | None = None

    def __enter__(self) -> StorageVFS | None:
        global _active
        self._previous = _active
        _active = self.vfs
        return self.vfs

    def __exit__(self, *exc_info) -> None:
        global _active
        _active = self._previous


def plan_from_spec(text: str) -> FaultPlan:
    """Parse a ``REPRO_STORAGE_FAULTS`` spec into a :class:`FaultPlan`.

    Format: ``;``-separated pieces; a bare ``seed=N`` piece sets the
    plan seed, every other piece is ``key=value`` pairs joined by
    ``,`` naming a :class:`FaultSpec`, e.g.::

        seed=3;op=write,kind=torn,path=camp.wal,at=17
    """
    plan = FaultPlan(seed=0)
    for piece in text.split(";"):
        piece = piece.strip()
        if not piece:
            continue
        pairs = {}
        for item in piece.split(","):
            if "=" not in item:
                raise ValueError(
                    f"bad {ENV_SPEC} piece {piece!r}: {item!r} is not "
                    "key=value"
                )
            key, _, value = item.partition("=")
            pairs[key.strip()] = value.strip()
        if set(pairs) == {"seed"}:
            plan.seed = int(pairs["seed"])
            continue
        plan.specs.append(
            FaultSpec(
                op=pairs.get("op", "any"),
                kind=pairs.get("kind", "eio"),
                path=pairs.get("path"),
                at=int(pairs["at"]) if "at" in pairs else None,
                always=pairs.get("always", "").lower()
                in ("1", "true", "yes"),
            )
        )
    return plan
