"""Codebook tests: exact reproduction of Figures 2 and 4."""

import pytest

from repro.core.bitstream import from_paper_string, to_paper_string
from repro.core.codebook import Codebook, build_codebook
from repro.core.transformations import ALL_TRANSFORMATIONS, OPTIMAL_SET

# Figure 2, verbatim: X, X~, tau, T_x, T_x~.
FIGURE2 = [
    ("000", "000", "x", 0, 0),
    ("001", "111", "~x", 1, 0),
    ("010", "000", "~y", 2, 0),
    ("011", "011", "x", 1, 1),
    ("100", "100", "x", 1, 1),
    ("101", "111", "~y", 2, 0),
    ("110", "000", "~x", 1, 0),
    ("111", "111", "x", 0, 0),
]

# Figure 4, verbatim (the printed first half).
FIGURE4_FIRST_HALF = [
    ("00000", "00000", "x", 0, 0),
    ("00001", "11111", "~x", 1, 0),
    ("00010", "11100", "~x", 2, 1),
    ("00011", "00011", "x", 1, 1),
    ("00100", "00100", "x", 2, 2),
    ("00101", "01111", "xor", 3, 1),
    ("00110", "11000", "~x", 2, 1),
    ("00111", "00111", "x", 1, 1),
    ("01000", "11000", "xor", 2, 1),
    ("01001", "00111", "nor", 3, 1),
    ("01010", "00000", "~y", 4, 0),
    ("01011", "00011", "xnor", 3, 1),
    ("01100", "01100", "x", 2, 2),
    ("01101", "10011", "~x", 3, 2),
    ("01110", "10000", "~x", 2, 1),
    ("01111", "01111", "x", 1, 1),
]


@pytest.fixture(scope="module")
def book3():
    return build_codebook(3, ALL_TRANSFORMATIONS)


@pytest.fixture(scope="module")
def book5():
    return build_codebook(5, OPTIMAL_SET)


class TestFigure2:
    def test_every_row_matches_paper(self, book3):
        for word_str, code_str, tau, tx, txt in FIGURE2:
            solution = book3.solution_for(word_str)
            assert to_paper_string(solution.code) == code_str, word_str
            assert solution.transformation.name == tau, word_str
            assert solution.original_transitions == tx, word_str
            assert solution.encoded_transitions == txt, word_str

    def test_ttn_rtn(self, book3):
        # "the total number of transitions for the original code words
        # is 8, while the transitions within the code words are only 2"
        assert book3.total_transitions == 8
        assert book3.reduced_transitions == 2
        assert book3.improvement_percent == 75.0


class TestFigure4:
    def test_first_half_matches_paper(self, book5):
        for word_str, code_str, tau, tx, txt in FIGURE4_FIRST_HALF:
            solution = book5.solution_for(word_str)
            assert to_paper_string(solution.code) == code_str, word_str
            assert solution.transformation.name == tau, word_str
            assert solution.original_transitions == tx, word_str
            assert solution.encoded_transitions == txt, word_str

    def test_second_half_by_symmetry(self, book5):
        # The paper omits words starting with 1: complementing the word
        # gives the same encoded transition count with the dual tau.
        for word_str, _, _, tx, txt in FIGURE4_FIRST_HALF:
            mirrored = "".join("1" if c == "0" else "0" for c in word_str)
            solution = book5.solution_for(mirrored)
            assert solution.original_transitions == tx
            assert solution.encoded_transitions == txt

    def test_restriction_to_eight_costs_nothing(self):
        full = build_codebook(5, ALL_TRANSFORMATIONS)
        restricted = build_codebook(5, OPTIMAL_SET)
        assert (
            full.reduced_transitions == restricted.reduced_transitions == 32
        )

    def test_only_paper_functions_appear(self, book5):
        used = {s.transformation.name for s in book5.solutions}
        # Figure 4 text: identity, inversion, XOR, XNOR, NOR (+ NAND
        # and ~y appear via symmetry / Figure 2).
        assert used <= {"x", "~x", "~y", "xor", "xnor", "nor", "nand"}

    def test_first_half_helper(self, book5):
        half = book5.first_half()
        assert len(half) == 16
        assert all(to_paper_string(s.word)[0] == "0" for s in half)


class TestCodebookApi:
    def test_rows_align_with_solutions(self, book3):
        rows = book3.rows()
        assert len(rows) == 8
        assert rows[0][0] == "000"
        assert rows[-1][0] == "111"

    def test_solution_lookup_missing(self, book3):
        with pytest.raises(KeyError):
            book3.solution_for("0000")

    def test_format_table_contains_all_words(self, book3):
        text = book3.format_table()
        for word_str, *_ in FIGURE2:
            assert word_str in text

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            build_codebook(0)

    def test_block_size_one_trivial(self):
        book = build_codebook(1)
        assert book.total_transitions == 0
        assert book.improvement_percent == 0.0

    def test_codebook_words_cover_space(self, book5):
        words = {to_paper_string(s.word) for s in book5.solutions}
        assert len(words) == 32

    def test_every_solution_decodes(self, book5):
        from repro.core.block_solver import BlockSolver

        solver = BlockSolver(OPTIMAL_SET)
        for solution in book5.solutions:
            assert solver.verify(solution)
