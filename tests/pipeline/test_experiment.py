"""Tests for the parameter-sweep experiment runner."""

import pytest

from repro.pipeline.experiment import SweepPoint, run_sweep


@pytest.fixture(scope="module")
def sweep():
    return run_sweep(
        {"lu": {"n": 8}, "mmul": {"n": 6}},
        block_sizes=(4, 5),
        tt_capacities=(4, 16),
        strategies=("greedy",),
    )


class TestSweep:
    def test_grid_size(self, sweep):
        assert len(sweep) == 2 * 2 * 2  # workloads x k x tt

    def test_all_points_verified(self, sweep):
        for point, result in sweep.points.items():
            assert result.decode_verified or not result.selected_blocks
            assert result.name == point.label()

    def test_filter(self, sweep):
        lu_points = sweep.filter(workload="lu")
        assert len(lu_points) == 4
        k4 = sweep.filter(workload="lu", block_size=4)
        assert len(k4) == 2

    def test_best_for(self, sweep):
        point, result = sweep.best_for("lu")
        for other_point, other in sweep.filter(workload="lu"):
            assert result.reduction_percent >= other.reduction_percent

    def test_best_for_unknown(self, sweep):
        with pytest.raises(KeyError):
            sweep.best_for("nope")

    def test_tt_capacity_monotone(self, sweep):
        for name in ("lu", "mmul"):
            for k in (4, 5):
                small = sweep.points[SweepPoint(name, k, 4, "greedy")]
                large = sweep.points[SweepPoint(name, k, 16, "greedy")]
                assert (
                    large.reduction_percent >= small.reduction_percent - 1e-9
                )

    def test_csv_export(self, sweep):
        csv = sweep.to_csv()
        lines = csv.splitlines()
        assert lines[0].startswith("workload,block_size")
        assert len(lines) == 1 + len(sweep)
        # Rows sort deterministically and parse.
        for line in lines[1:]:
            fields = line.split(",")
            assert fields[0] in ("lu", "mmul")
            float(fields[6])  # reduction percent

    def test_names_as_plain_sequence(self):
        sweep = run_sweep(
            ["lu"],
            block_sizes=(5,),
        )
        # Default lu size n=32 is heavier but must still work.
        assert len(sweep) == 1
