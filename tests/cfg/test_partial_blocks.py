"""Tests for partial (prefix) encoding of long basic blocks.

When a hot block needs more TT entries than remain, the selector can
encode just a prefix; the hardware's E/CT tail mechanism ends decoding
there and the rest of the block stays plain in memory.
"""

import pytest

from repro.cfg.graph import ControlFlowGraph
from repro.cfg.hotspot import select_hot_blocks
from repro.cfg.profile import profile_trace
from repro.isa.assembler import assemble
from repro.pipeline.flow import EncodingFlow
from repro.sim.cpu import run_program


def _long_block_program(body_instructions: int = 40):
    body = "\n".join(
        f"        addu $t{i % 8}, $t{(i + 1) % 8}, $t{(i + 2) % 8}"
        for i in range(body_instructions)
    )
    return assemble(
        f"""
        .text
main:   li $s0, 30
loop:
{body}
        addiu $s0, $s0, -1
        bnez $s0, loop
        li $v0, 10
        syscall
        """
    )


@pytest.fixture(scope="module")
def long_setup():
    program = _long_block_program()
    cpu, trace = run_program(program)
    cfg = ControlFlowGraph.build(program)
    profile = profile_trace(cfg, trace)
    return program, trace, cfg, profile


class TestSelection:
    def test_prefix_selected_under_pressure(self, long_setup):
        program, trace, cfg, profile = long_setup
        # The loop block is 42 instructions; at k=5 it needs 11 TT
        # entries.  With only 4 available, a prefix is selected.
        plan = select_hot_blocks(profile, block_size=5, tt_capacity=4)
        loop = program.address_of("loop")
        assert loop in plan.selected
        assert loop in plan.prefix_lengths
        # 4 entries cover 5 + 3*4 = 17 instructions.
        assert plan.prefix_lengths[loop] == 17
        assert plan.tt_entries_used <= 4

    def test_no_prefix_when_capacity_suffices(self, long_setup):
        program, trace, cfg, profile = long_setup
        plan = select_hot_blocks(profile, block_size=5, tt_capacity=16)
        loop = program.address_of("loop")
        assert loop in plan.selected
        assert loop not in plan.prefix_lengths

    def test_partial_disabled(self, long_setup):
        program, trace, cfg, profile = long_setup
        plan = select_hot_blocks(
            profile, block_size=5, tt_capacity=4, allow_partial=False
        )
        loop = program.address_of("loop")
        assert loop not in plan.selected
        assert loop in plan.skipped_capacity

    def test_encoded_length_helper(self, long_setup):
        program, trace, cfg, profile = long_setup
        plan = select_hot_blocks(profile, block_size=5, tt_capacity=4)
        loop = program.address_of("loop")
        assert plan.encoded_length(loop, 42) == 17
        assert plan.encoded_length(0xDEAD, 9) == 9  # untouched block


class TestFlowWithPrefixes:
    def test_decode_verified_with_prefix(self, long_setup):
        program, trace, cfg, profile = long_setup
        result = EncodingFlow(block_size=5, tt_capacity=4).run(
            program, trace, "long"
        )
        assert result.decode_verified
        assert result.reduction_percent > 0.0

    def test_prefix_beats_nothing(self, long_setup):
        program, trace, cfg, profile = long_setup
        with_prefix = EncodingFlow(block_size=5, tt_capacity=4).run(
            program, trace, "long"
        )
        flow_without = EncodingFlow(block_size=5, tt_capacity=4)
        flow_without_plan = select_hot_blocks(
            profile, block_size=5, tt_capacity=4, allow_partial=False
        )
        # Without partial encoding nothing fits, so baseline == encoded.
        assert flow_without_plan.selected == []
        assert with_prefix.encoded_transitions < with_prefix.baseline_transitions

    def test_capacity_ladder_monotone(self, long_setup):
        program, trace, cfg, profile = long_setup
        reductions = []
        for capacity in (1, 2, 4, 8, 16):
            result = EncodingFlow(block_size=5, tt_capacity=capacity).run(
                program, trace, "long"
            )
            assert result.decode_verified or not result.selected_blocks
            reductions.append(result.reduction_percent)
        assert reductions == sorted(reductions)

    def test_bundle_roundtrip_with_prefix(self, long_setup):
        from repro.pipeline.bundle import EncodingBundle

        program, trace, cfg, profile = long_setup
        result = EncodingFlow(block_size=5, tt_capacity=4).run(
            program, trace, "long"
        )
        bundle = EncodingBundle.from_flow_result(program, result)
        assert bundle.deploy_and_check(program, trace)
