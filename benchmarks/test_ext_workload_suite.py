"""Extension: the encoding on DSP kernels beyond the paper's six.

FIR, biquad IIR cascade and a 3x3 image convolution — the embedded
workloads the paper's introduction motivates.  The suite checks the
technique generalises: every kernel improves at every block size, and
the structural story holds (the unrolled conv2d's long straight-line
hot block encodes at least as well as the paper-style loop nests).
"""

from repro.pipeline.flow import EncodingFlow
from repro.workloads.registry import EXTENDED_WORKLOADS, build_workload

SIZES = {
    "fir": {"taps": 16, "samples": 160},
    "iir": {"sections": 4, "samples": 192},
    "conv2d": {"n": 20},
}


def _run_suite():
    results = {}
    for name in EXTENDED_WORKLOADS:
        workload = build_workload(name, **SIZES[name])
        program = workload.assemble()
        from repro.sim.cpu import run_program

        cpu, trace = run_program(program)
        workload.verify(cpu)
        results[name] = {
            k: EncodingFlow(block_size=k).run(program, trace, name)
            for k in (4, 5, 6, 7)
        }
    return results


def test_ext_workload_suite(benchmark, record_result):
    results = benchmark.pedantic(_run_suite, rounds=1, iterations=1)

    for name, per_size in results.items():
        for k, result in per_size.items():
            assert result.decode_verified, (name, k)
            assert result.reduction_percent > 10.0, (name, k)

    # Block-size trend persists on the extended set.
    mean = {
        k: sum(results[n][k].reduction_percent for n in EXTENDED_WORKLOADS)
        / len(EXTENDED_WORKLOADS)
        for k in (4, 5, 6, 7)
    }
    assert mean[4] > mean[6]
    assert mean[4] > mean[7]

    lines = [
        "Extension — DSP kernels beyond Figure 6",
        "",
        f"{'kernel':8s} {'#TR':>9s} " + " ".join(f"{f'k={k}':>7s}" for k in (4, 5, 6, 7)),
    ]
    for name in EXTENDED_WORKLOADS:
        per_size = results[name]
        row = " ".join(
            f"{per_size[k].reduction_percent:6.1f}%" for k in (4, 5, 6, 7)
        )
        lines.append(
            f"{name:8s} {per_size[4].baseline_transitions:9d} {row}"
        )
    lines += [
        "",
        "averages: "
        + "  ".join(f"k={k}: {mean[k]:.1f}%" for k in (4, 5, 6, 7)),
        "conclusion: the technique carries over to the wider embedded "
        "DSP domain the paper motivates",
    ]
    record_result("ext_workload_suite", "\n".join(lines))
