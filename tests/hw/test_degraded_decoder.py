"""Degraded-mode FetchDecoder tests: golden-image service after an
unrecoverable table fault keeps the decoded stream bit-identical."""

import random

import pytest

from repro.core.program_codec import encode_basic_block
from repro.hw.bbit import BasicBlockIdentificationTable, BBITEntry
from repro.hw.fetch_decoder import FetchDecoder
from repro.hw.tt import TransformationTable, TTEntry

BASE = 0x400000
K = 5


def _setup(num_words=13, seed=3):
    rng = random.Random(seed)
    words = [rng.getrandbits(32) for _ in range(num_words)]
    encoding = encode_basic_block(words, K)
    tt = TransformationTable(capacity=16, parity=True)
    bbit = BasicBlockIdentificationTable(capacity=16, parity=True)
    index = tt.allocate(encoding)
    bbit.install(
        BBITEntry(pc=BASE, tt_index=index, num_instructions=num_words)
    )
    stored = {
        BASE + 4 * i: w for i, w in enumerate(encoding.encoded_words)
    }
    golden = {BASE + 4 * i: w for i, w in enumerate(words)}
    region = set(golden)
    return words, tt, bbit, stored, golden, region


def _corrupt_tt_double_bit(tt, index):
    """In-place double-bit row corruption (stale check word)."""
    entry = tt.entries[index]
    tt.entries[index] = TTEntry(
        selectors=entry.selectors, end=entry.end, count=entry.count ^ 0b11
    )


def _run(decoder, addresses, stored):
    return [decoder.fetch(pc, stored[pc]) for pc in addresses]


class TestConstruction:
    def test_degraded_requires_golden_lookup(self):
        _, tt, bbit, _, _, _ = _setup()
        with pytest.raises(ValueError, match="golden_lookup"):
            FetchDecoder(tt, bbit, K, mode="degraded")

    def test_unknown_mode_rejected(self):
        _, tt, bbit, _, _, _ = _setup()
        with pytest.raises(ValueError, match="mode"):
            FetchDecoder(tt, bbit, K, mode="lenient")


class TestTTFaultDegradation:
    def test_output_bit_identical_under_tt_corruption(self):
        words, tt, bbit, stored, golden, region = _setup()
        _corrupt_tt_double_bit(tt, 1)
        decoder = FetchDecoder(
            tt,
            bbit,
            K,
            encoded_region=region,
            mode="degraded",
            golden_lookup=golden.get,
        )
        addresses = sorted(stored)
        assert _run(decoder, addresses, stored) == words
        assert decoder.degradations == 1
        assert decoder.golden_served_instructions > 0
        assert len(decoder.recovery_events) == 1
        assert decoder.recovery_events[0]["kind"] == "tt_integrity"
        # The whole block demoted at once (extent known from the BBIT).
        assert decoder.degraded_region == set(golden)
        assert not (decoder.encoded_region & decoder.degraded_region)

    def test_demoted_block_served_golden_on_reentry(self):
        words, tt, bbit, stored, golden, region = _setup()
        _corrupt_tt_double_bit(tt, 0)
        decoder = FetchDecoder(
            tt,
            bbit,
            K,
            encoded_region=region,
            mode="degraded",
            golden_lookup=golden.get,
        )
        addresses = sorted(stored)
        _run(decoder, addresses, stored)
        served_after_first = decoder.golden_served_instructions
        # Second pass: every fetch short-circuits to the golden image
        # without another degradation event.
        assert _run(decoder, addresses, stored) == words
        assert decoder.degradations == 1
        assert (
            decoder.golden_served_instructions
            == served_after_first + len(words)
        )

    def test_stats_surface_degradation_counters(self):
        words, tt, bbit, stored, golden, region = _setup()
        _corrupt_tt_double_bit(tt, 1)
        decoder = FetchDecoder(
            tt,
            bbit,
            K,
            encoded_region=region,
            mode="degraded",
            golden_lookup=golden.get,
        )
        _run(decoder, sorted(stored), stored)
        stats = decoder.stats()
        assert stats["degradations"] == 1
        assert stats["degraded_addresses"] == len(words)
        assert stats["golden_served_instructions"] > 0
        assert stats["ecc_double_faults"] >= 1


class TestBBITFaultDegradation:
    def test_bbit_quarantine_serves_golden(self):
        words, tt, bbit, stored, golden, region = _setup()
        victim = bbit.peek(BASE)
        bbit._by_pc[BASE] = BBITEntry(
            pc=victim.pc,
            tt_index=victim.tt_index ^ 0b11,
            num_instructions=victim.num_instructions,
        )
        decoder = FetchDecoder(
            tt,
            bbit,
            K,
            encoded_region=region,
            mode="degraded",
            golden_lookup=golden.get,
        )
        addresses = sorted(stored)
        assert _run(decoder, addresses, stored) == words
        assert decoder.degradations >= 1
        assert decoder.recovery_events[0]["kind"] == "bbit_integrity"
        # Only faulting addresses demote (block extent unknown), but
        # the output stays bit-identical throughout.
        assert decoder.degraded_region <= set(golden)


class TestRestore:
    def test_restore_degraded_rearms_decoding(self):
        words, tt, bbit, stored, golden, region = _setup()
        _corrupt_tt_double_bit(tt, 1)
        decoder = FetchDecoder(
            tt,
            bbit,
            K,
            encoded_region=region,
            mode="degraded",
            golden_lookup=golden.get,
        )
        addresses = sorted(stored)
        _run(decoder, addresses, stored)
        assert decoder.degraded_region
        # Repair the row (what the scrubber's golden path does) and
        # re-arm.
        good = encode_basic_block(words, K)
        tt.clear()
        tt.allocate(good)
        restored = decoder.restore_degraded()
        assert restored == len(words)
        assert not decoder.degraded_region
        decoder.reset()
        assert _run(decoder, addresses, stored) == words
        assert decoder.golden_served_instructions == 0  # decoding again

    def test_reset_preserves_degraded_region(self):
        words, tt, bbit, stored, golden, region = _setup()
        _corrupt_tt_double_bit(tt, 1)
        decoder = FetchDecoder(
            tt,
            bbit,
            K,
            encoded_region=region,
            mode="degraded",
            golden_lookup=golden.get,
        )
        _run(decoder, sorted(stored), stored)
        demoted = set(decoder.degraded_region)
        decoder.reset()
        assert decoder.degraded_region == demoted
        assert decoder.degradations == 0  # statistics do reset
