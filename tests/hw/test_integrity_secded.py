"""SEC-DED codec tests: clean roundtrip, exhaustive single-bit
correction (data and check bits), double-bit detection, and the row
serialisation formats it protects."""

import itertools
import random

import pytest

from repro.hw import integrity
from repro.hw.integrity import (
    CLEAN,
    CORRECTED,
    UNCORRECTABLE,
    bbit_row_bits,
    bbit_row_data,
    bbit_row_ecc,
    bbit_row_fields,
    secded_check_bits,
    secded_decode,
    secded_encode,
    tt_row_bits,
    tt_row_data,
    tt_row_ecc,
    tt_row_fields,
)

TT_M = tt_row_bits(32)
BBIT_M = bbit_row_bits()


class TestCodec:
    @pytest.mark.parametrize("m", [8, 21, TT_M, BBIT_M])
    def test_clean_roundtrip(self, m):
        rng = random.Random(m)
        for _ in range(20):
            data = rng.getrandbits(m)
            check = secded_encode(data, m)
            status, fixed_data, fixed_check = secded_decode(data, m, check)
            assert status == CLEAN
            assert fixed_data == data and fixed_check == check

    @pytest.mark.parametrize("m", [8, TT_M, BBIT_M])
    def test_every_single_data_bit_corrects(self, m):
        rng = random.Random(m + 1)
        data = rng.getrandbits(m)
        check = secded_encode(data, m)
        for bit in range(m):
            status, fixed_data, fixed_check = secded_decode(
                data ^ (1 << bit), m, check
            )
            assert status == CORRECTED
            assert fixed_data == data
            assert fixed_check == check

    @pytest.mark.parametrize("m", [8, TT_M, BBIT_M])
    def test_every_single_check_bit_corrects(self, m):
        rng = random.Random(m + 2)
        data = rng.getrandbits(m)
        check = secded_encode(data, m)
        for bit in range(secded_check_bits(m)):
            status, fixed_data, fixed_check = secded_decode(
                data, m, check ^ (1 << bit)
            )
            assert status == CORRECTED
            assert fixed_data == data
            assert fixed_check == check

    def test_every_double_data_bit_detects_small_width(self):
        m = 11
        rng = random.Random(5)
        data = rng.getrandbits(m)
        check = secded_encode(data, m)
        for a, b in itertools.combinations(range(m), 2):
            status, _, _ = secded_decode(
                data ^ (1 << a) ^ (1 << b), m, check
            )
            assert status == UNCORRECTABLE

    @pytest.mark.parametrize("m", [TT_M, BBIT_M])
    def test_sampled_double_bit_flips_detect(self, m):
        rng = random.Random(m + 3)
        data = rng.getrandbits(m)
        check = secded_encode(data, m)
        for _ in range(200):
            a, b = rng.sample(range(m), 2)
            status, _, _ = secded_decode(
                data ^ (1 << a) ^ (1 << b), m, check
            )
            assert status == UNCORRECTABLE

    def test_data_plus_check_bit_detects(self):
        m = 16
        data = 0xBEEF
        check = secded_encode(data, m)
        status, _, _ = secded_decode(data ^ 1, m, check ^ 1)
        assert status == UNCORRECTABLE

    @pytest.mark.parametrize("m", [TT_M, BBIT_M])
    def test_nine_check_bits_per_row(self, m):
        # Both row formats land in the 2**7 <= m+r+1 <= 2**8 band:
        # eight Hamming bits plus the overall parity bit.
        assert secded_check_bits(m) == 9


class TestRowSerialisation:
    def test_tt_row_roundtrip(self):
        rng = random.Random(7)
        for _ in range(25):
            selectors = tuple(rng.randrange(8) for _ in range(32))
            end = rng.random() < 0.5
            count = rng.randrange(1 << 8)
            data = tt_row_data(selectors, end, count)
            assert data.bit_length() <= tt_row_bits(32)
            assert tt_row_fields(data, 32) == (selectors, end, count)

    def test_bbit_row_roundtrip(self):
        rng = random.Random(8)
        for _ in range(25):
            pc = rng.getrandbits(32)
            tt_index = rng.getrandbits(16)
            length = rng.getrandbits(16)
            data = bbit_row_data(pc, tt_index, length)
            assert data.bit_length() <= bbit_row_bits()
            assert bbit_row_fields(data) == (pc, tt_index, length)

    def test_row_ecc_matches_generic_encode(self):
        selectors = tuple(i % 8 for i in range(32))
        assert tt_row_ecc(selectors, True, 5) == secded_encode(
            tt_row_data(selectors, True, 5), tt_row_bits(32)
        )
        assert bbit_row_ecc(0x400010, 3, 12) == secded_encode(
            bbit_row_data(0x400010, 3, 12), bbit_row_bits()
        )

    def test_field_corruption_changes_serialisation(self):
        # The check word covers *every* stored field, tag included.
        base = bbit_row_data(0x400000, 2, 9)
        assert base != bbit_row_data(0x400004, 2, 9)
        assert base != bbit_row_data(0x400000, 3, 9)
        assert base != bbit_row_data(0x400000, 2, 10)

    def test_legacy_fold_words_still_available(self):
        assert integrity.fold_words([1, 2, 3]) != integrity.fold_words(
            [3, 2, 1]
        )
