"""CircuitBreaker three-state semantics: open -> half-open -> closed.

All clock movement is injected (no real sleeps), and the property
tests drive seeded random operation sequences against an independent
reference model of the state machine — the implementation must agree
with the model on every step.

The deadline-interaction tests pin the contract the serve path leans
on: a breaker (or a retry loop) written against ``Exception`` can
*record* a :class:`DeadlineExceeded` but can never swallow it,
because timeouts deliberately derive from ``BaseException``.
"""

import pytest

from repro.runtime import (
    BackoffPolicy,
    CircuitBreaker,
    DeadlineExceeded,
    retry_call,
)
from repro.runtime.retry import CLOSED, HALF_OPEN, OPEN


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_breaker(threshold=3, cooldown=10.0):
    clock = FakeClock()
    breaker = CircuitBreaker(
        threshold=threshold, cooldown_s=cooldown, clock=clock
    )
    return breaker, clock


class TestTransitions:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker, _ = make_breaker(threshold=3)
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        assert breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.tripped

    def test_open_rejects_until_cooldown_elapses(self):
        breaker, clock = make_breaker(threshold=1, cooldown=10.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(9.999)
        assert not breaker.allow()
        clock.advance(0.001)
        assert breaker.allow()
        assert breaker.state == HALF_OPEN

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock = make_breaker(threshold=1, cooldown=5.0)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # no second concurrent probe
        assert not breaker.allow()

    def test_probe_success_closes(self):
        breaker, clock = make_breaker(threshold=2, cooldown=5.0)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert not breaker.tripped
        assert breaker.consecutive_failures == 0
        # A fresh streak is needed to open again.
        assert not breaker.record_failure()

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        breaker, clock = make_breaker(threshold=1, cooldown=5.0)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        assert breaker.record_failure()  # failed probe re-trips
        assert breaker.state == OPEN
        assert not breaker.allow()  # cooldown restarted
        clock.advance(4.5)
        assert not breaker.allow()
        clock.advance(0.5)
        assert breaker.allow()

    def test_without_cooldown_open_is_permanent(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, clock=clock)
        breaker.record_failure()
        clock.advance(1e9)
        assert not breaker.allow()
        assert breaker.state == OPEN

    def test_closed_always_allows(self):
        breaker, _ = make_breaker()
        for _ in range(10):
            assert breaker.allow()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError, match="cooldown"):
            CircuitBreaker(cooldown_s=-1.0)


class _ModelBreaker:
    """Independent reference model of the documented state machine."""

    def __init__(self, threshold: int, cooldown: float):
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = CLOSED
        self.streak = 0
        self.opened_at = None

    def allow(self, now: float) -> bool:
        if self.state == CLOSED:
            return True
        if self.state == OPEN and now - self.opened_at >= self.cooldown:
            self.state = HALF_OPEN
            return True
        return False

    def success(self) -> None:
        if self.state == HALF_OPEN:
            self.state = CLOSED
            self.opened_at = None
        self.streak = 0

    def failure(self, now: float) -> None:
        self.streak += 1
        if self.state == HALF_OPEN or (
            self.state == CLOSED and self.streak >= self.threshold
        ):
            self.state = OPEN
            self.opened_at = now


class TestProperties:
    @pytest.mark.parametrize("case", range(20))
    def test_agrees_with_reference_model(self, case, rng):
        threshold = rng.randint(1, 4)
        cooldown = rng.choice([0.0, 1.0, 7.5])
        breaker, clock = make_breaker(threshold=threshold, cooldown=cooldown)
        model = _ModelBreaker(threshold, cooldown)
        for _ in range(200):
            op = rng.choice(("allow", "success", "failure", "advance"))
            if op == "advance":
                clock.advance(rng.choice([0.1, 0.5, 1.0, 8.0]))
            elif op == "allow":
                assert breaker.allow() == model.allow(clock.now)
            elif op == "success":
                breaker.record_success()
                model.success()
            else:
                breaker.record_failure()
                model.failure(clock.now)
            assert breaker.state == model.state

    @pytest.mark.parametrize("case", range(10))
    def test_closed_only_reachable_through_half_open_success(self, case, rng):
        breaker, clock = make_breaker(threshold=2, cooldown=3.0)
        was_open = False
        for _ in range(300):
            op = rng.choice(("allow", "success", "failure", "advance"))
            before = breaker.state
            if op == "advance":
                clock.advance(1.0)
            elif op == "allow":
                breaker.allow()
            elif op == "success":
                breaker.record_success()
            else:
                breaker.record_failure()
            if before == OPEN:
                was_open = True
            if was_open and breaker.state == CLOSED:
                # The only legal closing edge is half_open --success-->
                assert before == HALF_OPEN and op == "success"
                was_open = False


class TestDeadlineInteraction:
    def test_breaker_bookkeeping_never_swallows_deadline(self):
        """A serve-style guard records the failure but re-raises."""
        breaker, _ = make_breaker(threshold=1)

        def guarded():
            try:
                raise DeadlineExceeded(0.5, "probe")
            except Exception:  # the breaker-plumbing idiom under test
                breaker.record_success()  # must never run
                raise

        with pytest.raises(DeadlineExceeded):
            try:
                guarded()
            except DeadlineExceeded:
                breaker.record_failure()
                raise
        assert breaker.state == OPEN

    def test_retry_on_exception_does_not_retry_deadline(self):
        calls = {"n": 0}

        def timed_out():
            calls["n"] += 1
            raise DeadlineExceeded(1.0, "case")

        with pytest.raises(DeadlineExceeded):
            retry_call(
                timed_out,
                policy=BackoffPolicy(max_attempts=5),
                retry_on=(Exception,),
                sleep=lambda _: None,
            )
        assert calls["n"] == 1  # BaseException flies past retry_on

    def test_half_open_probe_timeout_reopens(self):
        breaker, clock = make_breaker(threshold=1, cooldown=2.0)
        breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow()

        def probe():
            raise DeadlineExceeded(0.1, "probe")

        with pytest.raises(DeadlineExceeded):
            try:
                probe()
            except DeadlineExceeded:
                breaker.record_failure()
                raise
        assert breaker.state == OPEN
        assert not breaker.allow()
