"""Kill/resume determinism: a campaign SIGKILLed mid-run and then
resumed from its write-ahead log must produce a FAULTS_report.json
byte-identical to an uninterrupted run."""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.faults import CampaignConfig, MODELS_BY_NAME, run_campaign
from repro.runtime.checkpoint import CheckpointMismatchError

from tests.faults.test_campaign import _synthetic_target

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Slowdown per case inside the driver subprocess, so the parent can
#: reliably SIGKILL it mid-campaign.
CASE_DELAY = 0.05

_DRIVER = """
import sys, time
from repro.faults import campaign as campaign_module
from tests.faults.test_resume import _config
from tests.faults.test_campaign import _synthetic_target

_real_run_case = campaign_module.run_case

def _slow_run_case(*args, **kwargs):
    time.sleep({delay})
    return _real_run_case(*args, **kwargs)

campaign_module.run_case = _slow_run_case
campaign_module.run_campaign(
    _config(), targets=[_synthetic_target()], wal_path=sys.argv[1]
)
"""


def _config() -> CampaignConfig:
    models = tuple(
        MODELS_BY_NAME[name]
        for name in (
            "tt_selector_flip",
            "tt_double_bit_flip",
            "bbit_wrong_tt_index",
        )
    )
    return CampaignConfig(
        workloads=("synthetic",), trials=2, seed=99, models=models
    )


def _wal_data_lines(path: Path) -> int:
    if not path.exists():
        return 0
    lines = [l for l in path.read_text().splitlines() if l.strip()]
    return max(0, len(lines) - 1)  # minus the run_key header


def _spawn_driver(wal: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{REPO_ROOT / 'src'}:{REPO_ROOT}"
    return subprocess.Popen(
        [sys.executable, "-c", _DRIVER.format(delay=CASE_DELAY), str(wal)],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


class TestKillResumeDeterminism:
    def test_sigkilled_campaign_resumes_byte_identical(self, tmp_path):
        config = _config()
        total_cases = (
            len(config.models) * config.trials * len(config.modes)
        )
        kill_after = 4
        assert kill_after < total_cases

        wal = tmp_path / "campaign.wal"
        driver = _spawn_driver(wal)
        deadline = time.monotonic() + 60.0
        try:
            while _wal_data_lines(wal) < kill_after:
                if driver.poll() is not None:
                    pytest.fail(
                        "driver finished before it could be killed "
                        f"(rc={driver.returncode})"
                    )
                if time.monotonic() > deadline:
                    pytest.fail("driver never reached the kill point")
                time.sleep(0.01)
            driver.send_signal(signal.SIGKILL)
            driver.wait(timeout=30.0)
        finally:
            if driver.poll() is None:  # pragma: no cover - cleanup
                driver.kill()
                driver.wait()

        journaled = _wal_data_lines(wal)
        assert kill_after <= journaled < total_cases

        resumed = run_campaign(
            config,
            targets=[_synthetic_target()],
            wal_path=wal,
            resume=True,
        )
        assert len(resumed.cases) == total_cases

        uninterrupted = run_campaign(
            config, targets=[_synthetic_target()]
        )
        resumed_path = resumed.write(
            tmp_path / "FAULTS_resumed.json", deterministic=True
        )
        reference_path = uninterrupted.write(
            tmp_path / "FAULTS_reference.json", deterministic=True
        )
        assert resumed_path.read_bytes() == reference_path.read_bytes()

    def test_resume_skips_journaled_cases(self, tmp_path, monkeypatch):
        from repro.faults import campaign as campaign_module

        config = _config()
        wal = tmp_path / "campaign.wal"
        first = run_campaign(
            config, targets=[_synthetic_target()], wal_path=wal
        )
        executed = {"n": 0}
        real_run_case = campaign_module.run_case

        def counting_run_case(*args, **kwargs):
            executed["n"] += 1
            return real_run_case(*args, **kwargs)

        monkeypatch.setattr(campaign_module, "run_case", counting_run_case)
        second = run_campaign(
            config,
            targets=[_synthetic_target()],
            wal_path=wal,
            resume=True,
        )
        assert executed["n"] == 0  # everything replayed from the WAL
        assert len(second.cases) == len(first.cases)
        assert [c.to_dict() for c in second.cases] == [
            c.to_dict() for c in first.cases
        ]

    def test_resume_with_different_config_refuses(self, tmp_path):
        wal = tmp_path / "campaign.wal"
        run_campaign(
            _config(), targets=[_synthetic_target()], wal_path=wal
        )
        changed = CampaignConfig(
            workloads=("synthetic",),
            trials=3,  # different case population
            seed=99,
            models=_config().models,
        )
        with pytest.raises(CheckpointMismatchError, match="refusing"):
            run_campaign(
                changed,
                targets=[_synthetic_target()],
                wal_path=wal,
                resume=True,
            )

    def test_fresh_run_discards_stale_wal(self, tmp_path):
        wal = tmp_path / "campaign.wal"
        wal.write_text('{"run_key":"stale"}\n{"key":"x","result":{}}\n')
        report = run_campaign(
            _config(), targets=[_synthetic_target()], wal_path=wal
        )
        config = _config()
        assert len(report.cases) == (
            len(config.models) * config.trials * len(config.modes)
        )
        assert '"stale"' not in wal.read_text()
