"""Tests for stream statistics and the Section 6 experiment helpers."""

import pytest

from repro.core.analysis import (
    ReductionSummary,
    random_streams,
    section6_experiment,
    summarize_streams,
    theoretical_uniform_reduction,
)


class TestRandomStreams:
    def test_reproducible(self):
        assert random_streams(3, 50, seed=1) == random_streams(3, 50, seed=1)

    def test_different_seeds_differ(self):
        assert random_streams(1, 200, seed=1) != random_streams(1, 200, seed=2)

    def test_shape(self):
        streams = random_streams(4, 100)
        assert len(streams) == 4
        assert all(len(s) == 100 for s in streams)
        assert all(bit in (0, 1) for s in streams for bit in s)

    def test_bias(self):
        ones = sum(sum(s) for s in random_streams(5, 1000, seed=3, bias=0.9))
        assert ones > 4000  # ~4500 expected

    def test_bias_bounds(self):
        with pytest.raises(ValueError):
            random_streams(1, 10, bias=1.5)


class TestSummaries:
    def test_pooled_reduction(self):
        streams = [[0, 1] * 50, [1, 0] * 50]
        summary = summarize_streams(streams, 5)
        assert summary.streams == 2
        assert summary.reduction_percent == 100.0
        assert summary.mean_percent == 100.0

    def test_empty_summary_guards(self):
        summary = ReductionSummary(0, 0, 0, ())
        assert summary.reduction_percent == 0.0
        assert summary.mean_percent == 0.0
        assert summary.stdev_percent == 0.0

    def test_section6_defaults(self):
        summary = section6_experiment(count=5, length=400)
        assert summary.streams == 5
        assert 45.0 < summary.reduction_percent < 55.0

    def test_theoretical_reduction_matches_theory_module(self):
        assert theoretical_uniform_reduction(5) == pytest.approx(50.0)
        assert theoretical_uniform_reduction(3) == pytest.approx(75.0)

    def test_biased_streams_reduce_more(self):
        # Heavily biased streams have few transitions to begin with;
        # percentage reduction stays high because long runs encode to
        # constant stored streams.
        uniform = summarize_streams(random_streams(5, 500, 1, 0.5), 5)
        biased = summarize_streams(random_streams(5, 500, 1, 0.05), 5)
        assert biased.original_transitions < uniform.original_transitions
        assert biased.reduction_percent > 0.0
