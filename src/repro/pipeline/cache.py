"""Memoized codebook/bundle cache for the encoding service.

The serve front-end fields many jobs that differ only in tenant and
job id: the *computation* is keyed by ``(workload-hash, block size,
TT capacity, strategy)`` and is a pure function of that key, so a
bounded LRU over finished results turns repeat jobs into dictionary
lookups.  Two layers:

* an in-memory LRU (:class:`BundleCache`) each codec worker process
  owns privately, and
* an optional on-disk mirror (``cache_dir``) written atomically —
  freshly forked workers (including a pool rebuilt after a crash)
  warm-start from it, and a restarted server does not recompute what
  the previous incarnation already paid for.

Entries are JSON dicts (a job result payload, including the bundle
digests) — deliberately the *deterministic* representation, so a
cache hit is byte-for-byte the result a cold compute would produce.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from pathlib import Path

from repro.obs import OBS
from repro.runtime import atomic_write_text


def workload_fingerprint(words: list[int]) -> str:
    """Stable identity of an assembled program image (the
    ``workload-hash`` half of a cache key)."""
    payload = b"".join(w.to_bytes(4, "little") for w in words)
    return hashlib.sha256(payload).hexdigest()[:16]


def cache_key(
    workload_hash: str, block_size: int, tt_capacity: int, strategy: str
) -> str:
    """The canonical cache key: every parameter that changes the
    encoded artefact, nothing that does not."""
    return f"{workload_hash}-k{block_size}-tt{tt_capacity}-{strategy}"


class BundleCache:
    """Bounded LRU of finished encode results with a disk mirror.

    ``get``/``put`` never raise on disk trouble: a cache that can take
    a service down is worse than no cache, so I/O failures degrade to
    a miss (and a counter) instead of an exception.
    """

    def __init__(self, capacity: int = 64, cache_dir: str | Path | None = None):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._entries: OrderedDict[str, dict] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk_loads = 0
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------

    def _disk_path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    def _count(self, name: str, help_: str) -> None:
        if OBS.enabled:
            OBS.registry.counter(name, help_).inc()

    def get(self, key: str) -> dict | None:
        """In-memory hit, else disk warm-start, else ``None``."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            self._count("cache.hits", "bundle-cache lookups served from memory")
            return entry
        if self.cache_dir is not None:
            path = self._disk_path(key)
            try:
                entry = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                entry = None
            if isinstance(entry, dict):
                self.disk_loads += 1
                self._count(
                    "cache.disk_loads",
                    "bundle-cache entries warm-started from disk",
                )
                self._install(key, entry, write_disk=False)
                return entry
        self.misses += 1
        self._count("cache.misses", "bundle-cache lookups that must compute")
        return None

    def put(self, key: str, entry: dict) -> None:
        self._install(key, entry, write_disk=True)

    def _install(self, key: str, entry: dict, write_disk: bool) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            self._count(
                "cache.evictions", "bundle-cache LRU evictions (memory only)"
            )
        if write_disk and self.cache_dir is not None:
            try:
                # Atomic + deterministic content: concurrent workers
                # writing the same key race benignly (identical bytes).
                atomic_write_text(
                    self._disk_path(key),
                    json.dumps(entry, separators=(",", ":")) + "\n",
                )
            except OSError:
                self._count(
                    "cache.disk_errors", "bundle-cache disk writes that failed"
                )

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def stats(self) -> dict:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "disk_loads": self.disk_loads,
        }
