"""Bundle loader validation: every malformed bundle must be rejected
with a precise :class:`BundleFormatError` *before* anything reaches
the hardware tables — a loader that installs half a bundle is worse
than one that refuses it."""

import json
import random

import pytest

from repro.core.program_codec import encode_basic_block
from repro.errors import BundleFormatError, ReproError
from repro.pipeline.bundle import EncodingBundle


def _good_bundle(num_words=14, block_size=5, base=0x400000, seed=5):
    """A self-consistent bundle: one encoded block filling the image."""
    rng = random.Random(seed)
    words = [rng.getrandbits(32) for _ in range(num_words)]
    enc = encode_basic_block(words, block_size)
    bundle = EncodingBundle(
        name="synthetic",
        block_size=block_size,
        text_base=base,
        encoded_words=list(enc.encoded_words),
        original_digest="0" * 64,
    )
    for row, (start, seg_len) in zip(enc.selectors(), enc.bounds):
        is_tail = start + seg_len >= num_words
        bundle.tt_entries.append(
            {
                "selectors": list(row),
                "end": is_tail,
                "count": (
                    (seg_len if start == 0 else seg_len - 1) if is_tail else 0
                ),
            }
        )
    bundle.bbit_entries.append(
        {"pc": base, "tt_index": 0, "num_instructions": num_words}
    )
    return bundle


def _roundtrip_data():
    return json.loads(_good_bundle().to_json())


class TestJsonParsing:
    def test_roundtrip_succeeds(self):
        bundle = _good_bundle()
        restored = EncodingBundle.from_json(bundle.to_json())
        assert restored.encoded_words == bundle.encoded_words
        assert restored.tt_entries == bundle.tt_entries
        assert restored.bbit_entries == bundle.bbit_entries

    def test_truncated_json_rejected(self):
        text = _good_bundle().to_json()
        with pytest.raises(BundleFormatError, match="not valid JSON"):
            EncodingBundle.from_json(text[: len(text) // 2])

    def test_garbled_json_rejected(self):
        with pytest.raises(BundleFormatError, match="not valid JSON"):
            EncodingBundle.from_json("{]{garbage!!")

    def test_non_object_root_rejected(self):
        with pytest.raises(BundleFormatError, match="root must be an object"):
            EncodingBundle.from_json("[1, 2, 3]")

    def test_wrong_format_version_rejected(self):
        data = _roundtrip_data()
        data["format_version"] = 99
        with pytest.raises(BundleFormatError, match="unsupported bundle format"):
            EncodingBundle.from_json(json.dumps(data))

    def test_missing_required_field_rejected(self):
        for key in ("name", "encoded_words", "tt", "bbit", "encoded_digest"):
            data = _roundtrip_data()
            del data[key]
            with pytest.raises(BundleFormatError, match=key):
                EncodingBundle.from_json(json.dumps(data))

    def test_bad_hex_word_rejected(self):
        data = _roundtrip_data()
        data["encoded_words"][3] = "zzüq"
        with pytest.raises(BundleFormatError, match=r"encoded_words\[3\]"):
            EncodingBundle.from_json(json.dumps(data))

    def test_oversized_word_rejected(self):
        data = _roundtrip_data()
        data["encoded_words"][0] = "1ffffffff"
        with pytest.raises(BundleFormatError, match="32 bits"):
            EncodingBundle.from_json(json.dumps(data))

    def test_digest_mismatch_rejected(self):
        data = _roundtrip_data()
        # One flipped stored bit: exactly what the digest is for.
        word = int(data["encoded_words"][2], 16) ^ (1 << 9)
        data["encoded_words"][2] = f"{word:08x}"
        with pytest.raises(BundleFormatError, match="digest mismatch"):
            EncodingBundle.from_json(json.dumps(data))

    def test_errors_are_repro_and_value_errors(self):
        # Both catchable as the hierarchy root and, for backward
        # compatibility, as ValueError.
        with pytest.raises(ReproError):
            EncodingBundle.from_json("nope")
        with pytest.raises(ValueError):
            EncodingBundle.from_json("nope")


class TestStructuralValidation:
    def test_good_bundle_validates(self):
        _good_bundle().validate()

    def test_selector_out_of_range(self):
        bundle = _good_bundle()
        bundle.tt_entries[0]["selectors"][4] = 9
        with pytest.raises(BundleFormatError, match="selector for line 4"):
            bundle.validate()

    def test_non_bool_end_rejected(self):
        bundle = _good_bundle()
        bundle.tt_entries[0]["end"] = 1
        with pytest.raises(BundleFormatError, match="'end' must be a boolean"):
            bundle.validate()

    def test_negative_count_rejected(self):
        bundle = _good_bundle()
        bundle.tt_entries[-1]["count"] = -2
        with pytest.raises(BundleFormatError, match="'count' must be >= 0"):
            bundle.validate()

    def test_inconsistent_width_rejected(self):
        bundle = _good_bundle()
        bundle.tt_entries[1]["selectors"] = bundle.tt_entries[1]["selectors"][:16]
        with pytest.raises(BundleFormatError, match="width 16"):
            bundle.validate()

    def test_zero_length_block_rejected(self):
        bundle = _good_bundle()
        bundle.bbit_entries[0]["num_instructions"] = 0
        with pytest.raises(BundleFormatError, match="num_instructions"):
            bundle.validate()

    def test_misaligned_pc_rejected(self):
        bundle = _good_bundle()
        bundle.bbit_entries[0]["pc"] += 2
        with pytest.raises(BundleFormatError, match="not word-aligned"):
            bundle.validate()

    def test_duplicate_pc_rejected(self):
        bundle = _good_bundle()
        bundle.bbit_entries.append(dict(bundle.bbit_entries[0]))
        with pytest.raises(BundleFormatError, match="duplicate entry"):
            bundle.validate()

    def test_block_outside_image_rejected(self):
        bundle = _good_bundle()
        bundle.bbit_entries[0]["num_instructions"] += 40
        with pytest.raises(BundleFormatError, match="outside the image"):
            bundle.validate()

    def test_dangling_tt_reference_rejected(self):
        bundle = _good_bundle(num_words=40)  # block stays inside the image
        bundle.bbit_entries[0]["tt_index"] = len(bundle.tt_entries) - 1
        with pytest.raises(BundleFormatError, match="dangling BBIT->TT"):
            bundle.validate()

    def test_walk_must_end_on_e_bit(self):
        bundle = _good_bundle()
        tail = bundle.tt_entries[-1]
        tail["end"] = False
        with pytest.raises(BundleFormatError, match="E-bit"):
            bundle.validate()

    def test_non_integer_field_rejected(self):
        bundle = _good_bundle()
        bundle.bbit_entries[0]["tt_index"] = "0"
        with pytest.raises(BundleFormatError, match="must be an integer"):
            bundle.validate()

    def test_bool_block_size_rejected(self):
        bundle = _good_bundle()
        bundle.block_size = True
        with pytest.raises(BundleFormatError, match="block_size"):
            bundle.validate()


class TestBuildTables:
    def test_build_tables_validates_first(self):
        bundle = _good_bundle()
        bundle.tt_entries[0]["selectors"][0] = 12
        with pytest.raises(BundleFormatError):
            bundle.build_tables()

    def test_build_tables_round_trips_entries(self):
        bundle = _good_bundle()
        tt, bbit = bundle.build_tables(parity=True)
        assert len(tt) == len(bundle.tt_entries)
        assert tt.parity_enabled and bbit.parity_enabled
        entry = bbit.lookup(bundle.bbit_entries[0]["pc"])
        assert entry is not None
        assert entry.num_instructions == bundle.bbit_entries[0]["num_instructions"]
        # Parity words were written through install(): reads are clean.
        for index in range(len(tt)):
            tt.read(index)

    def test_encoded_pc_region_covers_blocks(self):
        bundle = _good_bundle()
        region = bundle.encoded_pc_region()
        pc = bundle.bbit_entries[0]["pc"]
        n = bundle.bbit_entries[0]["num_instructions"]
        assert region == set(range(pc, pc + 4 * n, 4))
