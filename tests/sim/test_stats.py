"""Tests for trace statistics."""

import pytest

from repro.isa.assembler import assemble
from repro.sim.cpu import run_program
from repro.sim.stats import (
    branch_statistics,
    instruction_mix,
    static_dynamic_ratio,
    word_entropy_bits,
)


@pytest.fixture(scope="module")
def loop_run():
    program = assemble(
        """
        .data
        v: .word 0
        .text
        main: li $t0, 8
        la $t1, v
        loop: lw $t2, 0($t1)
        addu $t2, $t2, $t0
        sw $t2, 0($t1)
        addiu $t0, $t0, -1
        bnez $t0, loop
        li $v0, 10
        syscall
        """
    )
    cpu, trace = run_program(program)
    return program, trace


class TestInstructionMix:
    def test_total(self, loop_run):
        program, trace = loop_run
        mix = instruction_mix(program, trace)
        assert mix.total == len(trace)
        assert sum(mix.by_category.values()) == mix.total

    def test_loads_stores_counted(self, loop_run):
        program, trace = loop_run
        mix = instruction_mix(program, trace)
        assert mix.by_category["load"] == 8
        assert mix.by_category["store"] == 8

    def test_branch_category(self, loop_run):
        program, trace = loop_run
        mix = instruction_mix(program, trace)
        assert mix.by_category["branch"] == 8
        assert mix.fraction("branch") == pytest.approx(8 / mix.total)

    def test_by_mnemonic(self, loop_run):
        program, trace = loop_run
        mix = instruction_mix(program, trace)
        assert mix.by_mnemonic["lw"] == 8
        assert mix.by_mnemonic["bne"] == 8

    def test_empty_trace(self, loop_run):
        program, _ = loop_run
        mix = instruction_mix(program, [])
        assert mix.total == 0
        assert mix.fraction("load") == 0.0


class TestBranchStatistics:
    def test_taken_rate(self, loop_run):
        program, trace = loop_run
        stats = branch_statistics(program, trace)
        # 8 executions of bnez; 7 taken (back edge), 1 fall-through.
        assert stats["branches"] == 8
        assert stats["taken"] == 7
        assert stats["taken_rate"] == pytest.approx(7 / 8)

    def test_no_branches(self):
        program = assemble(".text\nmain: nop\nli $v0, 10\nsyscall\n")
        cpu, trace = run_program(program)
        stats = branch_statistics(program, trace)
        assert stats["branches"] == 0
        assert stats["taken_rate"] == 0.0


class TestEntropyAndRatio:
    def test_entropy_constant_stream(self):
        assert word_entropy_bits([7, 7, 7, 7]) == 0.0

    def test_entropy_uniform_pair(self):
        assert word_entropy_bits([1, 2, 1, 2]) == pytest.approx(1.0)

    def test_entropy_empty(self):
        assert word_entropy_bits([]) == 0.0

    def test_static_dynamic_ratio(self, loop_run):
        program, trace = loop_run
        ratio = static_dynamic_ratio(program, trace)
        assert ratio == len(trace) / len(program.words)
        assert ratio > 1.0  # loop dominance
