"""Natural-loop detection via dominators and back edges.

A back edge ``u -> v`` (where ``v`` dominates ``u``) defines a natural
loop: ``v`` (the header) plus every node that can reach ``u`` without
passing through ``v``.  Loops sharing a header are merged, matching
the usual convention.  These are the "major application loops" the
paper's encoding targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.cfg.dominators import dominates, immediate_dominators
from repro.cfg.graph import ControlFlowGraph


@dataclass
class NaturalLoop:
    """A natural loop: header block plus body block addresses."""

    header: int
    body: set[int] = field(default_factory=set)  # includes the header

    def __contains__(self, block_start: int) -> bool:
        return block_start in self.body

    def __len__(self) -> int:
        return len(self.body)

    def is_nested_in(self, other: "NaturalLoop") -> bool:
        return self is not other and self.body <= other.body

    def __repr__(self) -> str:
        return f"NaturalLoop(header={self.header:#010x}, blocks={len(self.body)})"


def find_back_edges(cfg: ControlFlowGraph) -> list[tuple[int, int]]:
    """Edges ``u -> v`` with ``v`` dominating ``u``."""
    idom = immediate_dominators(cfg.graph, cfg.entry)
    back_edges = []
    for u, v in cfg.graph.edges:
        if u in idom and v in idom and dominates(idom, v, u):
            back_edges.append((u, v))
    return back_edges


def find_natural_loops(cfg: ControlFlowGraph) -> list[NaturalLoop]:
    """All natural loops, loops with the same header merged, sorted by
    header address."""
    loops: dict[int, NaturalLoop] = {}
    for tail, header in find_back_edges(cfg):
        body = {header, tail}
        stack = [tail]
        while stack:
            node = stack.pop()
            if node == header:
                continue
            for predecessor in cfg.graph.predecessors(node):
                if predecessor not in body:
                    body.add(predecessor)
                    stack.append(predecessor)
        loop = loops.setdefault(header, NaturalLoop(header=header))
        loop.body |= body
    return [loops[h] for h in sorted(loops)]


def loop_nesting_depths(loops: list[NaturalLoop]) -> dict[int, int]:
    """Nesting depth per loop header (1 = outermost)."""
    depths = {}
    for loop in loops:
        depth = 1 + sum(
            1 for other in loops if loop.is_nested_in(other)
        )
        depths[loop.header] = depth
    return depths


def innermost_loops(loops: list[NaturalLoop]) -> list[NaturalLoop]:
    """Loops that contain no other loop."""
    return [
        loop
        for loop in loops
        if not any(other.is_nested_in(loop) for other in loops)
    ]


def blocks_in_any_loop(loops: list[NaturalLoop]) -> set[int]:
    """Union of all loop bodies."""
    result: set[int] = set()
    for loop in loops:
        result |= loop.body
    return result


def loop_forest(loops: list[NaturalLoop]) -> nx.DiGraph:
    """Loop-nesting forest: edge outer-header -> inner-header for
    immediate nesting."""
    forest = nx.DiGraph()
    for loop in loops:
        forest.add_node(loop.header)
    for inner in loops:
        parents = [o for o in loops if inner.is_nested_in(o)]
        if not parents:
            continue
        immediate = min(parents, key=lambda o: len(o.body))
        forest.add_edge(immediate.header, inner.header)
    return forest
