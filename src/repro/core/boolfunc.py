"""Two-input boolean functions and their algebra.

The paper restricts decode transformations to functions of the current
encoded bit and one bit of history, ``x_n = tau(x_tilde_n, x_{n-1})``
(Section 5.1).  There are ``2**(2**2) == 16`` such functions; this
module enumerates them, names them, and implements the global-inversion
duality the paper uses in Section 5.2 to argue the symmetry of the
code tables ("interchanging XOR with XNOR, and NOR with NAND, while
retaining intact inversion and identity").

A function is identified by its 4-bit truth table: bit ``2*x + y`` of
the table holds ``f(x, y)``.  Throughout the package the *first*
argument ``x`` is the encoded (stored) bit and the *second* argument
``y`` is the history bit (the previously decoded original bit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

#: Number of distinct two-input boolean functions.
NUM_FUNCTIONS = 16

# Truth-table indices of the named functions (bit 2*x + y = f(x, y)).
TT_ZERO = 0b0000  # f = 0
TT_NOR = 0b0001  # f = NOT (x OR y)
TT_AND_NX_Y = 0b0010  # f = (NOT x) AND y
TT_NOT_X = 0b0011  # f = NOT x              (the paper's "inversion")
TT_AND_X_NY = 0b0100  # f = x AND (NOT y)
TT_NOT_Y = 0b0101  # f = NOT y              (history inversion)
TT_XOR = 0b0110  # f = x XOR y
TT_NAND = 0b0111  # f = NOT (x AND y)
TT_AND = 0b1000  # f = x AND y
TT_XNOR = 0b1001  # f = NOT (x XOR y)
TT_Y = 0b1010  # f = y                  (history passthrough)
TT_IMPLIES = 0b1011  # f = (NOT x) OR y
TT_X = 0b1100  # f = x                  (the paper's "identity")
TT_OR_X_NY = 0b1101  # f = x OR (NOT y)
TT_OR = 0b1110  # f = x OR y
TT_ONE = 0b1111  # f = 1

_NAMES = {
    TT_ZERO: "0",
    TT_NOR: "nor",
    TT_AND_NX_Y: "~x&y",
    TT_NOT_X: "~x",
    TT_AND_X_NY: "x&~y",
    TT_NOT_Y: "~y",
    TT_XOR: "xor",
    TT_NAND: "nand",
    TT_AND: "and",
    TT_XNOR: "xnor",
    TT_Y: "y",
    TT_IMPLIES: "~x|y",
    TT_X: "x",
    TT_OR_X_NY: "x|~y",
    TT_OR: "or",
    TT_ONE: "1",
}

_NAME_TO_TT = {name: tt for tt, name in _NAMES.items()}


@dataclass(frozen=True)
class BoolFunc:
    """A two-input boolean function identified by its truth table.

    ``truth_table`` is a 4-bit integer; bit ``2*x + y`` holds
    ``f(x, y)``.
    """

    truth_table: int

    def __post_init__(self) -> None:
        if not 0 <= self.truth_table < NUM_FUNCTIONS:
            raise ValueError(
                f"truth table must be in [0, 16), got {self.truth_table}"
            )

    def __call__(self, x: int, y: int) -> int:
        """Evaluate ``f(x, y)`` for single-bit arguments."""
        return (self.truth_table >> (2 * (x & 1) + (y & 1))) & 1

    @property
    def name(self) -> str:
        """Short algebraic name, e.g. ``"xor"`` or ``"~y"``."""
        return _NAMES[self.truth_table]

    @classmethod
    def from_name(cls, name: str) -> "BoolFunc":
        """Look a function up by its short name."""
        try:
            return cls(_NAME_TO_TT[name])
        except KeyError:
            raise KeyError(
                f"unknown boolean function {name!r}; "
                f"valid names: {sorted(_NAME_TO_TT)}"
            ) from None

    def solve_x(self, result: int, y: int) -> tuple[int, ...]:
        """Return every ``x`` with ``f(x, y) == result``.

        This is the encoder's fundamental step: given the original bit
        (``result``) and the history bit ``y``, which stored bits ``x``
        decode correctly?  The answer is ``()`` (impossible), ``(0,)``
        or ``(1,)`` (forced), or ``(0, 1)`` (free choice — the encoder
        picks whichever minimises transitions).
        """
        return tuple(x for x in (0, 1) if self(x, y) == result)

    def depends_on_x(self) -> bool:
        """True if the output can change with the stored bit ``x``."""
        return any(self(0, y) != self(1, y) for y in (0, 1))

    def depends_on_y(self) -> bool:
        """True if the output can change with the history bit ``y``."""
        return any(self(x, 0) != self(x, 1) for x in (0, 1))

    def is_decodable(self) -> bool:
        """True if every (original, history) pair has a stored bit.

        A transformation is usable for encoding only when for each
        history value ``y`` the map ``x -> f(x, y)`` is surjective onto
        the values the original stream may take; constants in ``x``
        (e.g. AND with history 0) can still be usable when the original
        bit happens to equal the constant, so decodability is checked
        per-block by the solver rather than globally here.  This
        predicate reports the stronger property that ``x -> f(x, y)``
        is a bijection for every ``y`` (always encodable).
        """
        return all(
            {self(0, y), self(1, y)} == {0, 1} for y in (0, 1)
        )

    def __repr__(self) -> str:
        return f"BoolFunc({self.truth_table:#06b} {self.name!r})"


def all_functions() -> Iterator[BoolFunc]:
    """Iterate over all sixteen two-input boolean functions."""
    for tt in range(NUM_FUNCTIONS):
        yield BoolFunc(tt)


def dual(func: BoolFunc) -> BoolFunc:
    """The global-inversion dual ``g(x, y) = NOT f(NOT x, NOT y)``.

    Section 5.2: inverting all bits of the original and encoded
    sequences maps each optimal (code word, transformation) pair to the
    optimal pair of the complemented block word, with XOR <-> XNOR and
    NOR <-> NAND while identity and inversion are self-dual.
    """
    table = 0
    for x in (0, 1):
        for y in (0, 1):
            value = 1 - func(1 - x, 1 - y)
            table |= value << (2 * x + y)
    return BoolFunc(table)


def compose_history_chain(func: BoolFunc, stored: list[int], seed: int) -> list[int]:
    """Decode a stored bit sequence with a single transformation.

    ``seed`` is the original value of the bit *preceding* ``stored[0]``
    (the history available when the first stored bit arrives).  Returns
    the decoded original bits, one per stored bit.
    """
    decoded: list[int] = []
    history = seed & 1
    for bit in stored:
        history = func(bit & 1, history)
        decoded.append(history)
    return decoded
