"""Successive over-relaxation (``sor``) — reference [8] in the paper.

Gauss-Seidel sweep with over-relaxation on a 5-point Laplace stencil,
updating the grid in place:

    u[i][j] += omega/4 * (u[i-1][j] + u[i+1][j] + u[i][j-1]
                          + u[i][j+1] - 4*u[i][j])

The paper uses a 256x256 grid; the default here is 32x32 with a few
sweeps (the hot loop body is identical).
"""

from __future__ import annotations

from repro.workloads.common import (
    Workload,
    assert_close,
    format_doubles,
    pseudo_values,
    read_doubles,
)

DEFAULT_N = 32
DEFAULT_SWEEPS = 6
OMEGA = 1.25


def _reference(u: list[float], n: int, sweeps: int, omega: float) -> list[float]:
    grid = list(u)
    for _ in range(sweeps):
        for i in range(1, n - 1):
            for j in range(1, n - 1):
                idx = i * n + j
                grid[idx] += (omega / 4.0) * (
                    grid[idx - n]
                    + grid[idx + n]
                    + grid[idx - 1]
                    + grid[idx + 1]
                    - 4.0 * grid[idx]
                )
    return grid


def build(n: int = DEFAULT_N, sweeps: int = DEFAULT_SWEEPS) -> Workload:
    """Build the sor workload on an ``n`` x ``n`` grid."""
    if n < 3:
        raise ValueError(f"grid must be at least 3x3, got {n}")
    u0 = pseudo_values(n * n, seed=3)
    expected = _reference(u0, n, sweeps, OMEGA)

    source = f"""
# sor: Gauss-Seidel over-relaxation, {n}x{n} grid, {sweeps} sweeps
        .data
U:
{format_doubles(u0)}
omega4: .double {OMEGA / 4.0!r}
four:   .double 4.0
        .text
main:
        li    $s0, {n}          # N
        sll   $s4, $s0, 3       # row stride
        la    $s5, U
        la    $t9, omega4
        l.d   $f2, 0($t9)       # omega/4
        l.d   $f14, 8($t9)      # 4.0
        li    $s6, 0            # sweep counter
sweep:
        li    $s1, 1            # i
iloop:
        mul   $t5, $s1, $s0
        addiu $t5, $t5, 1
        sll   $t5, $t5, 3
        addu  $t3, $s5, $t5     # &U[i][1]
        li    $s2, 1            # j
jloop:
        l.d   $f4, 0($t3)       # u
        subu  $t6, $t3, $s4
        l.d   $f6, 0($t6)       # north
        addu  $t6, $t3, $s4
        l.d   $f8, 0($t6)       # south
        l.d   $f10, -8($t3)     # west
        l.d   $f12, 8($t3)      # east
        add.d $f6, $f6, $f8
        add.d $f6, $f6, $f10
        add.d $f6, $f6, $f12
        mul.d $f8, $f4, $f14    # 4*u
        sub.d $f6, $f6, $f8
        mul.d $f6, $f6, $f2     # * omega/4
        add.d $f4, $f4, $f6
        s.d   $f4, 0($t3)
        addiu $t3, $t3, 8
        addiu $s2, $s2, 1
        addiu $t7, $s0, -1
        bne   $s2, $t7, jloop
        addiu $s1, $s1, 1
        bne   $s1, $t7, iloop
        addiu $s6, $s6, 1
        li    $t8, {sweeps}
        bne   $s6, $t8, sweep
        li    $v0, 10
        syscall
"""

    def verify(cpu) -> None:
        measured = read_doubles(cpu, "U", n * n)
        assert_close(measured, expected, tolerance=1e-12, what="sor U")

    return Workload(
        name="sor",
        description=f"successive over-relaxation, {n}x{n} grid (paper: 256x256)",
        source=source,
        params={"n": n, "sweeps": sweeps, "omega": OMEGA},
        verify=verify,
    )
