"""OpenMetrics / Prometheus text rendering of a metrics snapshot.

Input is the JSON-ready snapshot form produced by
:meth:`repro.obs.metrics.MetricsRegistry.snapshot` (also embedded in
``RUN_report.json`` under ``"metrics"``), so the renderer serves both
the live ``/metrics`` endpoint of the serve TCP transport and the
one-shot ``repro metrics --openmetrics`` dump from a report file.

Rendering follows the OpenMetrics text format:

* metric names are sanitised to ``[a-zA-Z0-9_:]`` (the repo's dotted
  family names become underscored: ``codec.words_encoded`` →
  ``codec_words_encoded``);
* counters gain the ``_total`` suffix;
* histograms emit *cumulative* ``_bucket{le=...}`` series (the
  registry stores per-bucket counts) plus ``_sum`` and ``_count``;
* label values are escaped per spec and the exposition ends with
  ``# EOF``.
"""

from __future__ import annotations

__all__ = ["render_openmetrics", "synthetic_gauge_family"]

_NAME_OK = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"
)


def _sanitize_name(name: str) -> str:
    out = "".join(ch if ch in _NAME_OK else "_" for ch in name)
    if not out or out[0].isdigit():
        out = "_" + out
    return out


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels_text(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_sanitize_name(str(k))}="{_escape_label(v)}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _merge_labels(labels: dict, extra: dict | None = None) -> str:
    if extra:
        merged = dict(labels)
        merged.update(extra)
        return _labels_text(merged)
    return _labels_text(labels)


def _fmt(value: object) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "NaN"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return "NaN"


def synthetic_gauge_family(
    series: list[tuple[dict, float]], help_: str = ""
) -> dict:
    """Snapshot-form gauge family from ``[(labels, value), ...]`` —
    how the server folds windowed rates and SLO burns (which live
    outside the registry) into one exposition."""
    return {
        "type": "gauge",
        "help": help_,
        "series": [
            {"labels": dict(labels), "value": value}
            for labels, value in series
        ],
    }


def _render_histogram(name: str, entry: dict, lines: list[str]) -> None:
    labels = entry.get("labels") or {}
    cumulative = 0
    rendered_inf = False
    for bucket in entry.get("buckets") or ():
        le = bucket.get("le")
        cumulative += int(bucket.get("count", 0) or 0)
        if le == "+Inf" or le is None:
            le_text = "+Inf"
            rendered_inf = True
        else:
            le_text = _fmt(float(le))
        lines.append(
            f"{name}_bucket"
            f"{_merge_labels(labels, {'le': le_text})} {cumulative}"
        )
    count = int(entry.get("count", 0) or 0)
    if not rendered_inf:
        lines.append(
            f"{name}_bucket{_merge_labels(labels, {'le': '+Inf'})} {count}"
        )
    lines.append(f"{name}_sum{_labels_text(labels)} {_fmt(entry.get('sum', 0.0))}")
    lines.append(f"{name}_count{_labels_text(labels)} {count}")


def render_openmetrics(snapshot: dict) -> str:
    """Render a metrics snapshot to OpenMetrics exposition text."""
    lines: list[str] = []
    for raw_name in sorted(snapshot):
        family = snapshot[raw_name]
        if not isinstance(family, dict):
            continue
        type_ = family.get("type")
        if type_ not in ("counter", "gauge", "histogram"):
            continue
        name = _sanitize_name(raw_name)
        lines.append(f"# TYPE {name} {type_}")
        help_ = family.get("help")
        if help_:
            lines.append(f"# HELP {name} {_escape_label(help_)}")
        for entry in family.get("series") or ():
            if not isinstance(entry, dict):
                continue
            labels = entry.get("labels") or {}
            if type_ == "counter":
                lines.append(
                    f"{name}_total{_labels_text(labels)} "
                    f"{_fmt(entry.get('value', 0))}"
                )
            elif type_ == "gauge":
                lines.append(
                    f"{name}{_labels_text(labels)} "
                    f"{_fmt(entry.get('value', 0))}"
                )
            else:
                _render_histogram(name, entry, lines)
    lines.append("# EOF")
    return "\n".join(lines) + "\n"
