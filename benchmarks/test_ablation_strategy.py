"""Ablation D: chained-encoding strategy on real instruction traces.

Section 6 proves greedy can be suboptimal in principle (the one-bit
overlap couples block choices) but reports it optimal in practice on
random streams.  This bench settles the question on *program* traces:
the same hot blocks of two benchmarks encoded with the paper's greedy,
the globally optimal interface DP, and the disjoint strawman.
"""

from repro.pipeline.flow import EncodingFlow
from repro.sim.cpu import run_program
from repro.workloads.registry import build_workload

STRATEGIES = ("greedy", "optimal", "disjoint")
CASES = {"mmul": {"n": 14}, "lu": {"n": 16}}


def _run():
    rows = {}
    for name, params in CASES.items():
        workload = build_workload(name, **params)
        program = workload.assemble()
        cpu, trace = run_program(program)
        workload.verify(cpu)
        rows[name] = {
            strategy: EncodingFlow(
                block_size=5,
                strategy=strategy,
                # The TT/BBIT hardware implements the overlapped
                # protocol; the disjoint strawman is measured only.
                verify_decode=strategy != "disjoint",
            ).run(program, trace, f"{name}/{strategy}")
            for strategy in STRATEGIES
        }
    return rows


def test_ablation_strategy(benchmark, record_result):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = [
        "Ablation D — encoding strategy on real traces, k=5",
        "",
        f"{'bench':6s} {'strategy':9s} {'encoded':>9s} {'reduction':>9s}",
    ]
    for name, per_strategy in rows.items():
        greedy = per_strategy["greedy"]
        optimal = per_strategy["optimal"]
        disjoint = per_strategy["disjoint"]
        # Greedy and optimal decode-verify; disjoint is measured only
        # (its per-block re-anchoring needs no overlap bookkeeping).
        assert greedy.decode_verified
        assert optimal.decode_verified
        # The DP optimum can never lose to greedy...
        assert optimal.encoded_transitions <= greedy.encoded_transitions
        # ...and on real code the two coincide to within a handful of
        # transitions per million (Section 6's claim, trace-level).
        gap = greedy.encoded_transitions - optimal.encoded_transitions
        assert gap <= 0.001 * greedy.baseline_transitions, name
        # Disjoint forfeits real savings.
        assert disjoint.encoded_transitions > optimal.encoded_transitions
        for strategy in STRATEGIES:
            result = per_strategy[strategy]
            lines.append(
                f"{name:6s} {strategy:9s} {result.encoded_transitions:9d} "
                f"{result.reduction_percent:8.1f}%"
            )
    lines += [
        "",
        "conclusion: on program traces the paper's greedy matches the "
        "global DP optimum (to <0.1% of baseline transitions), and the "
        "one-bit overlap clearly beats disjoint blocks",
    ]
    record_result("ablation_strategy", "\n".join(lines))
