"""The paper's primary contribution: low-power instruction-stream
transformations.

Submodules:

``boolfunc``
    The sixteen two-input boolean functions, their truth-table algebra
    and the global-inversion duality used in the paper's symmetry
    argument (Section 5.2).
``transformations``
    Named :class:`Transformation` objects, the full 16-function space
    and the paper's optimal 8-function subset.
``bitstream``
    Bit-sequence utilities and transition counting.
``block_solver``
    Per-block optimal code-word + transformation search, both anchored
    (Section 5.1) and overlap-constrained (Section 6).
``codebook``
    Codebook generation reproducing Figures 2 and 4.
``theory``
    TTN/RTN/improvement numbers reproducing Figure 3.
``stream_codec``
    Chained overlapped-block encoding/decoding of arbitrary bit streams
    (Section 6), greedy and globally optimal (DP) variants.
``program_codec``
    Vertical per-bus-line encoding of a basic block's instruction words
    (Section 4, Figure 1).
``fastpath``
    The compiled codebook fast path: memoized block solutions and
    integer bit-parallel stream/program encoding, cross-validated
    bit-for-bit against ``block_solver``.
``analysis``
    Reduction summaries and stream statistics.
"""

from repro.core.boolfunc import BoolFunc, all_functions, dual
from repro.core.transformations import (
    ALL_TRANSFORMATIONS,
    OPTIMAL_SET,
    Transformation,
)
from repro.core.bitstream import count_transitions, word_column
from repro.core.block_solver import BlockSolver, BlockSolution
from repro.core.fastpath import CompiledCodebook, get_codebook
from repro.core.stream_codec import StreamEncoder, encode_stream, decode_stream
from repro.core.program_codec import (
    BlockEncoding,
    encode_basic_block,
    encode_basic_blocks,
)

__all__ = [
    "CompiledCodebook",
    "get_codebook",
    "encode_basic_blocks",
    "BoolFunc",
    "all_functions",
    "dual",
    "ALL_TRANSFORMATIONS",
    "OPTIMAL_SET",
    "Transformation",
    "count_transitions",
    "word_column",
    "BlockSolver",
    "BlockSolution",
    "StreamEncoder",
    "encode_stream",
    "decode_stream",
    "BlockEncoding",
    "encode_basic_block",
]
