"""The Basic Block Identification Table (BBIT) of Figure 5.

One entry per encoded basic block: the PC of its first instruction and
the index of its first Transformation Table entry.  "When an
application loop basic block is complete, a lookup into the BBIT
produces the TT index for the next basic block" (Section 7.2).  The
hardware analogue is a small CAM on the fetch PC; the model keeps a
dict for O(1) lookups and counts them for the power bookkeeping
("a lookup into the BBIT is performed only in the beginning of a
basic block").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TableIntegrityError
from repro.hw import integrity
from repro.obs import OBS


@dataclass(frozen=True)
class BBITEntry:
    """One BBIT row: basic-block start PC -> first TT entry index."""

    pc: int
    tt_index: int
    num_instructions: int  # block length, for sequencing bookkeeping


class BasicBlockIdentificationTable:
    """A fixed-capacity PC-indexed table.

    With ``parity=True`` each installed row carries a SEC-DED check
    word over all its fields (including the CAM tag); a matching
    :meth:`lookup` validates it before handing the row to the decoder.
    A single flipped bit is corrected in place (``ecc_corrections``,
    metric ``hw.ecc_corrections``); a double-bit error quarantines the
    row and raises :class:`~repro.errors.TableIntegrityError` until
    :meth:`repair_row` rewrites it from a golden source.

    One subtlety of protecting the CAM tag: if correction changes the
    *pc* field itself, the row is keyed under a corrupted tag.  The
    table moves the row back under its true tag and reports the probe
    as a miss — exactly what the CAM would have done, since a flipped
    tag no longer matches the probe line.
    """

    def __init__(self, capacity: int = 16, parity: bool = False):
        if capacity < 1:
            raise ValueError("BBIT needs at least one entry")
        self.capacity = capacity
        self.parity_enabled = parity
        self._by_pc: dict[int, BBITEntry] = {}
        #: SEC-DED check word per row, keyed like the row itself;
        #: corrupting a row in place leaves this stale — which is the
        #: point.
        self._parity: dict[int, int] = {}
        #: Tags whose last check found an uncorrectable (double-bit)
        #: error; unreadable until repaired.
        self.quarantined: set[int] = set()
        self.lookups = 0
        self.hits = 0
        #: Integrity activity, published onto the metrics registry by
        #: the fetch decoder alongside the lookup counters.
        self.parity_checks = 0
        self.parity_failures = 0
        self.ecc_corrections = 0
        self.ecc_double_faults = 0
        self.repairs = 0

    def __len__(self) -> int:
        return len(self._by_pc)

    def clear(self) -> None:
        self._by_pc.clear()
        self._parity.clear()
        self.quarantined.clear()
        self.lookups = 0
        self.hits = 0
        self.parity_checks = 0
        self.parity_failures = 0
        self.ecc_corrections = 0
        self.ecc_double_faults = 0
        self.repairs = 0

    def _row_ecc(self, entry: BBITEntry) -> int:
        return integrity.bbit_row_ecc(
            entry.pc, entry.tt_index, entry.num_instructions
        )

    def install(self, entry: BBITEntry) -> None:
        if entry.pc in self._by_pc:
            raise ValueError(f"duplicate BBIT entry for {entry.pc:#010x}")
        if len(self._by_pc) >= self.capacity:
            raise ValueError(
                f"BBIT full ({self.capacity} entries); cannot add "
                f"{entry.pc:#010x}"
            )
        self._by_pc[entry.pc] = entry
        self._parity[entry.pc] = self._row_ecc(entry)

    def seal(self) -> None:
        """Recompute every check word from the current rows (for
        callers that populated ``_by_pc`` directly)."""
        self._parity = {pc: self._row_ecc(e) for pc, e in self._by_pc.items()}
        self.quarantined.clear()

    def check_row(self, pc: int) -> str:
        """Validate the row stored under ``pc`` without raising:
        corrects a single-bit error in place and returns ``"clean"`` /
        ``"corrected"`` / ``"quarantined"`` / ``"missing"``.  The
        scrubber's sweep primitive."""
        if pc in self.quarantined:
            return "quarantined"
        entry = self._by_pc.get(pc)
        if entry is None:
            return "missing"
        stored = self._parity.get(pc)
        if stored is None:
            # A row with no check word at all (direct population
            # without seal()): treat as uncorrectable.
            self.quarantined.add(pc)
            self.ecc_double_faults += 1
            return "quarantined"
        data = integrity.bbit_row_data(
            entry.pc, entry.tt_index, entry.num_instructions
        )
        status, fixed_data, fixed_check = integrity.secded_decode(
            data, integrity.bbit_row_bits(), stored
        )
        if status == integrity.CLEAN:
            return "clean"
        if status == integrity.CORRECTED:
            true_pc, tt_index, num_instructions = integrity.bbit_row_fields(
                fixed_data
            )
            fixed = BBITEntry(
                pc=true_pc,
                tt_index=tt_index,
                num_instructions=num_instructions,
            )
            if true_pc != pc:
                # The corrupted bit was in the CAM tag: re-key the row
                # under its true tag (unless that slot is occupied).
                del self._by_pc[pc]
                del self._parity[pc]
                if true_pc not in self._by_pc:
                    self._by_pc[true_pc] = fixed
                    self._parity[true_pc] = fixed_check
            else:
                self._by_pc[pc] = fixed
                self._parity[pc] = fixed_check
            self.ecc_corrections += 1
            if OBS.enabled:
                OBS.registry.counter(
                    "hw.ecc_corrections",
                    "single-bit table-row errors corrected by SEC-DED",
                    table="bbit",
                ).inc()
            return "corrected"
        self.quarantined.add(pc)
        self.ecc_double_faults += 1
        if OBS.enabled:
            OBS.registry.counter(
                "hw.ecc_double_faults",
                "uncorrectable (double-bit) table-row errors",
                table="bbit",
            ).inc()
        return "quarantined"

    def lookup(self, pc: int) -> BBITEntry | None:
        """CAM match on a fetch PC; counts every probe.  Validates the
        matched row's SEC-DED word when enabled."""
        self.lookups += 1
        if pc not in self._by_pc and pc not in self.quarantined:
            return None
        if self.parity_enabled:
            self.parity_checks += 1
            status = self.check_row(pc)
            if status == "quarantined":
                self.parity_failures += 1
                raise TableIntegrityError(
                    f"BBIT entry for {pc:#010x} failed its SEC-DED "
                    "parity check (uncorrectable error; row quarantined)"
                )
            if status == "missing":
                # check_row re-keyed a tag-corrupted row away from this
                # probe line; a real CAM would simply miss.
                return None
        entry = self._by_pc.get(pc)
        if entry is None:
            return None
        self.hits += 1
        return entry

    def repair_row(self, entry: BBITEntry) -> None:
        """Rewrite one row from a trusted source (the golden bundle),
        lifting its quarantine."""
        self.quarantined.discard(entry.pc)
        self._by_pc[entry.pc] = entry
        self._parity[entry.pc] = self._row_ecc(entry)
        self.repairs += 1
        if OBS.enabled:
            OBS.registry.counter(
                "hw.rows_repaired",
                "quarantined table rows rewritten from a golden source",
                table="bbit",
            ).inc()

    def drop_row(self, pc: int) -> None:
        """Remove a quarantined row entirely (no golden copy to repair
        from): subsequent probes miss instead of raising."""
        self.quarantined.discard(pc)
        self._by_pc.pop(pc, None)
        self._parity.pop(pc, None)

    def peek(self, pc: int) -> BBITEntry | None:
        """Lookup without statistics (for assertions in tests)."""
        return self._by_pc.get(pc)

    def storage_bits(self, pc_bits: int = 30, tt_index_bits: int = 4) -> int:
        """Physical bits: tag (word-aligned PC) + TT index per entry."""
        return self.capacity * (pc_bits + tt_index_bits)
