"""Suite-wide fixtures: deterministic randomness for every test.

The ``rng`` fixture hands each test a :class:`random.Random` seeded
from the test's own node id — two runs of the same test draw the same
values, and no test can be perturbed by another test consuming shared
global random state.  ``seeded_words`` / ``seeded_stream`` expose the
shared strategies module (:mod:`tests.strategies`) as fixtures for
tests that just need "some pinned data".
"""

from __future__ import annotations

import random

import pytest

from tests import strategies


@pytest.fixture()
def rng(request) -> random.Random:
    """A per-test RNG seeded from the test's node id (deterministic
    across runs, independent across tests)."""
    return random.Random(f"test:{request.node.nodeid}")


@pytest.fixture()
def seeded_words():
    """Factory fixture: ``seeded_words(seed, count, ...)`` pinned
    instruction words from the shared strategies module."""
    return strategies.seeded_words


@pytest.fixture()
def seeded_stream():
    """Factory fixture: ``seeded_stream(seed, length, bias)``."""
    return strategies.seeded_stream


@pytest.fixture()
def seeded_blocks():
    """Factory fixture: ``seeded_blocks(seed, num_blocks, ...)``."""
    return strategies.seeded_blocks


@pytest.fixture()
def seeded_hot_words():
    """Factory fixture: ``seeded_hot_words(seed, length, ...)`` —
    fetch-like hot-alphabet word streams for the encoder zoo."""
    return strategies.seeded_hot_words


@pytest.fixture(scope="session")
def encoder_schemes():
    """Every registered encoder-zoo backend, sorted."""
    from repro.baselines.protocol import registered_schemes

    return registered_schemes()
