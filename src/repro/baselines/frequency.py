"""Static frequency-ranked opcode remapping, after the low-power ISA
re-encoding idea of Benini et al. (GLS-VLSI 1998) — reference [6].

The original collects instruction-adjacency statistics and re-assigns
opcodes so frequent pairs are Hamming-close.  We implement the core
mechanism at word granularity: rank the distinct instruction words of
a hot region by dynamic frequency and re-assign code points so that
the most frequent words get codes with small pairwise Hamming
distances (a greedy minimum-weight assignment over the code space).
The mapping is a dictionary — exactly the cost the paper's Section 3
argues against, which the comparison benches quantify.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence


def _code_candidates(width: int, count: int) -> list[int]:
    """``count`` code points with small mutual Hamming distances:
    breadth-first by popcount (0, then weight-1 codes, ...)."""
    codes: list[int] = []
    weight = 0
    while len(codes) < count:
        codes.extend(
            c for c in range(1 << min(width, 20)) if c.bit_count() == weight
        )
        weight += 1
        if weight > min(width, 20):
            raise ValueError("code space exhausted")
    return codes[:count]


@dataclass
class FrequencyRemapper:
    """A dictionary-based re-encoder for a closed set of words.

    ``fit`` learns the mapping from a training trace; ``transitions``
    evaluates a (possibly different) trace under it.  Words outside
    the learned dictionary fall back to their original encoding, with
    one extra *escape* line toggling (modelling the miss signal a real
    implementation needs).
    """

    width: int = 32
    max_entries: int = 256
    mapping: dict[int, int] = field(default_factory=dict)

    def fit(self, words: Sequence[int]) -> "FrequencyRemapper":
        counts = Counter(words)
        ranked = [w for w, _ in counts.most_common(self.max_entries)]
        codes = _code_candidates(self.width, len(ranked))
        self.mapping = dict(zip(ranked, codes))
        return self

    def encode(self, word: int) -> tuple[int, int]:
        """Returns (driven word, escape bit)."""
        code = self.mapping.get(word)
        if code is None:
            return word, 1
        return code, 0

    def transitions(self, words: Sequence[int]) -> int:
        """Bus transitions (word lines + escape line) over a trace."""
        total = 0
        prev_word = None
        prev_escape = 0
        for word in words:
            driven, escape = self.encode(word)
            if prev_word is not None:
                total += (driven ^ prev_word).bit_count()
                total += escape ^ prev_escape
            prev_word, prev_escape = driven, escape
        return total

    @property
    def dictionary_bits(self) -> int:
        """Storage the dictionary costs (the paper's Section 3
        objection): two full words per entry."""
        return len(self.mapping) * 2 * self.width


from repro.baselines.protocol import (  # noqa: E402  (adapter after legacy API)
    EncodedStream,
    Encoder,
    HardwareBudget,
    register_encoder,
    register_reference_counter,
)


@register_encoder
class FrequencyEncoder(Encoder):
    """:class:`FrequencyRemapper` behind the common Encoder protocol.

    The escape line (asserted for words outside the learned
    dictionary) is packed into bit ``width`` of each driven value.
    Because of that extra line the scheme is a bus codec, not an
    image-deployable recoder, even though its mapping is stateless.
    """

    scheme = "frequency"
    deployable = False

    def __init__(self, width: int = 32, max_entries: int = 256) -> None:
        self.width = width
        self.max_entries = max_entries
        self._mask = (1 << width) - 1
        self._remapper = FrequencyRemapper(width=width, max_entries=max_entries)
        self._inverse: dict[int, int] = {}

    def fit(self, words: Sequence[int]) -> "FrequencyEncoder":
        self._remapper.fit(list(words))
        self._inverse = {code: word for word, code in self._remapper.mapping.items()}
        return self

    def encode(self, words: Sequence[int]) -> EncodedStream:
        stream = EncodedStream(self.scheme, self.width + 1)
        for word in words:
            driven, escape = self._remapper.encode(word & self._mask)
            stream.driven.append((escape << self.width) | driven)
        return stream

    def decode(self, stream: EncodedStream) -> list[int]:
        out = []
        for packed in stream.driven:
            escape = (packed >> self.width) & 1
            driven = packed & self._mask
            out.append(driven if escape else self._inverse[driven])
        return out

    def to_config(self) -> dict:
        return {
            "width": self.width,
            "max_entries": self.max_entries,
            "mapping": sorted(self._remapper.mapping.items()),
        }

    @classmethod
    def from_config(cls, config: dict) -> "FrequencyEncoder":
        enc = cls(
            width=int(config.get("width", 32)),
            max_entries=int(config.get("max_entries", 256)),
        )
        enc._remapper.mapping = {int(w): int(c) for w, c in config.get("mapping", [])}
        enc._inverse = {code: word for word, code in enc._remapper.mapping.items()}
        return enc

    def budget(self) -> HardwareBudget:
        return HardwareBudget(
            table_bits=self._remapper.dictionary_bits, extra_lines=1, stateful=False
        )


@register_reference_counter("frequency")
def _frequency_reference(encoder: Encoder, words: Sequence[int]) -> int:
    return encoder._remapper.transitions(list(words))
