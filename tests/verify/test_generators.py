"""Seeded generator contracts: determinism, bias, deployment truth."""

import pytest

from tests.strategies import rng_for

from repro.verify.generators import (
    biased_stream,
    burst_stream,
    block_words,
    make_deployment,
    random_deployment,
    word_blocks,
)


class TestStreams:
    def test_same_seed_same_stream(self):
        a = biased_stream(rng_for("gen", 1), 200, 0.3)
        b = biased_stream(rng_for("gen", 1), 200, 0.3)
        assert a == b

    def test_bias_extremes(self):
        rng = rng_for("gen", 2)
        assert biased_stream(rng, 64, 0.0) == [0] * 64
        assert biased_stream(rng, 64, 1.0) == [1] * 64

    def test_bias_out_of_range_raises(self):
        with pytest.raises(ValueError):
            biased_stream(rng_for("gen", 3), 8, 1.5)

    def test_burst_stream_has_long_runs(self):
        bits = burst_stream(rng_for("gen", 4), 400, flip=0.05)
        transitions = sum(
            1 for a, b in zip(bits, bits[1:]) if a != b
        )
        # A 5% flip rate keeps the transition density far below the
        # ~50% a uniform stream would show.
        assert transitions < 80
        assert set(bits) <= {0, 1}


class TestWords:
    def test_block_words_width_and_determinism(self):
        a = block_words(rng_for("gen", 5), 20)
        b = block_words(rng_for("gen", 5), 20)
        assert a == b
        assert all(0 <= word < (1 << 32) for word in a)

    def test_sparse_bias_is_respected(self):
        dense = block_words(rng_for("gen", 6), 50, sparse=0.9)
        sparse = block_words(rng_for("gen", 6), 50, sparse=0.1)
        ones = lambda words: sum(bin(w).count("1") for w in words)
        assert ones(dense) > 3 * ones(sparse)

    def test_word_blocks_shapes(self):
        blocks = word_blocks(rng_for("gen", 7), 5, min_words=2, max_words=9)
        assert len(blocks) == 5
        assert all(2 <= len(block) <= 9 for block in blocks)


class TestDeployment:
    def test_make_deployment_truth_is_consistent(self):
        blocks = word_blocks(rng_for("gen", 8), 3, max_words=10)
        deployment = make_deployment(blocks, block_size=5)
        assert deployment.blocks == blocks
        for which, base in enumerate(deployment.bases):
            golden = deployment.golden_words(which)
            stored = deployment.stored_words(which)
            assert len(golden) == len(stored)
            for i, pc in enumerate(deployment.trace_for(which)):
                assert pc == base + 4 * i
                assert deployment.golden_lookup(pc) == golden[i]
                assert deployment.image[pc] == stored[i]
                assert pc in deployment.encoded_region

    def test_golden_lookup_outside_blocks_raises(self):
        deployment = make_deployment([[1, 2, 3]], block_size=4)
        with pytest.raises(KeyError):
            deployment.golden_lookup(0x10)

    def test_random_deployment_is_seed_deterministic(self):
        a = random_deployment(rng_for("gen", 9), 4, num_blocks=2)
        b = random_deployment(rng_for("gen", 9), 4, num_blocks=2)
        assert a.blocks == b.blocks
        assert a.image == b.image
