"""Extension: regional reprogramming of the decode tables.

The paper's abstract sells "flexible and inexpensive switches between
the transformations"; Section 7.1 describes the software reload.  This
bench builds a multi-phase program (three hot loops executed in
sequence, together exceeding a small TT) and compares a single static
table configuration against per-region reprogramming, including the
reload traffic, across TT capacities.
"""

from repro.isa.assembler import assemble
from repro.pipeline.flow import EncodingFlow
from repro.pipeline.regional import RegionalEncodingFlow
from repro.sim.cpu import run_program

THREE_PHASE = """
        .text
main:   li $s0, 120
p1:     addu $t0, $t1, $t2
        xor  $t3, $t0, $t1
        sll  $t4, $t3, 2
        or   $t5, $t4, $t0
        subu $t6, $t5, $t2
        addu $t1, $t6, $t0
        addiu $s0, $s0, -1
        bnez $s0, p1
        li $s1, 120
p2:     lui  $t0, 0x1234
        ori  $t1, $t0, 0x5678
        srl  $t2, $t1, 3
        nor  $t3, $t2, $t0
        sra  $t4, $t3, 1
        slt  $t5, $t4, $t1
        addiu $s1, $s1, -1
        bnez $s1, p2
        li $s2, 120
p3:     andi $t0, $s2, 0xFF
        sllv $t1, $t0, $s2
        sltu $t2, $t1, $t0
        xori $t3, $t2, 0x1F
        srlv $t4, $t3, $t0
        addu $t5, $t4, $t1
        addiu $s2, $s2, -1
        bnez $s2, p3
        li $v0, 10
        syscall
"""

CAPACITIES = (2, 4, 8, 16)


def _run():
    program = assemble(THREE_PHASE)
    cpu, trace = run_program(program)
    rows = []
    for capacity in CAPACITIES:
        static = EncodingFlow(block_size=5, tt_capacity=capacity).run(
            program, trace, "static"
        )
        regional = RegionalEncodingFlow(
            block_size=5, tt_capacity=capacity
        ).run(program, trace, "regional")
        rows.append((capacity, static, regional))
    return len(trace), rows


def test_ext_regional_reprogramming(benchmark, record_result):
    trace_length, rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    for capacity, static, regional in rows:
        assert regional.decode_verified
        # Regional never loses to static.
        assert (
            regional.encoded_transitions <= static.encoded_transitions
        ), capacity
        # Reload traffic stays negligible (the paper's "insignificant
        # in volume").
        assert regional.reload_words < 0.02 * trace_length

    # Under pressure (TT too small for all three phases) regional wins
    # clearly; with ample capacity the two coincide.
    tight = rows[0]
    assert tight[2].reduction_percent > tight[1].reduction_percent + 5.0
    ample = rows[-1]
    assert (
        abs(ample[2].reduction_percent - ample[1].reduction_percent) < 1e-9
    )

    lines = [
        "Extension — regional reprogramming, 3-phase program "
        f"({trace_length} fetches)",
        "",
        f"{'TT':>3s} {'static red%':>11s} {'regional red%':>13s} "
        f"{'reloads':>7s} {'reload words':>12s}",
    ]
    for capacity, static, regional in rows:
        lines.append(
            f"{capacity:3d} {static.reduction_percent:10.1f}% "
            f"{regional.reduction_percent:12.1f}% "
            f"{regional.reloads:7d} {regional.reload_words:12d}"
        )
    lines += [
        "",
        "conclusion: reprogramming between hot spots lets a small TT "
        "serve every phase — the reprogrammability the paper's "
        "abstract promises, at negligible reload traffic",
    ]
    record_result("ext_regional_reprogramming", "\n".join(lines))
