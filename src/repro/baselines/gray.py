"""Gray-code address encoding — the classic sequential-bus baseline.

Consecutive integers differ in exactly one bit under Gray coding, so a
perfectly sequential word-address stream toggles one line per fetch.
"""

from __future__ import annotations

from typing import Sequence


def gray_encode(value: int) -> int:
    """Binary-reflected Gray code of ``value``."""
    return value ^ (value >> 1)


def gray_decode(code: int) -> int:
    """Inverse of :func:`gray_encode`."""
    value = 0
    while code:
        value ^= code
        code >>= 1
    return value


def gray_transitions(addresses: Sequence[int], stride: int = 4) -> int:
    """Address-bus transitions when word indices are Gray-coded.

    Addresses are divided by ``stride`` first (word addressing), as a
    real implementation would re-encode the word index.
    """
    codes = [gray_encode(a // stride) for a in addresses]
    return sum((a ^ b).bit_count() for a, b in zip(codes, codes[1:]))


from repro.baselines.protocol import (  # noqa: E402  (adapter after legacy API)
    EncodedStream,
    Encoder,
    HardwareBudget,
    register_encoder,
    register_reference_counter,
)


@register_encoder
class GrayEncoder(Encoder):
    """Gray recoding as a stateless, deployable word recoder.

    Each stored word is replaced by its binary-reflected Gray code and
    decoded independently at fetch time — the pure-XOR network needs no
    tables, no extra lines, and no bus state.
    """

    scheme = "gray"
    deployable = True

    def __init__(self, width: int = 32) -> None:
        self.width = width
        self._mask = (1 << width) - 1

    def encode_word(self, word: int) -> int:
        return gray_encode(word & self._mask)

    def decode_word(self, word: int) -> int:
        return gray_decode(word) & self._mask

    def encode(self, words: Sequence[int]) -> EncodedStream:
        return EncodedStream(
            self.scheme, self.width, [self.encode_word(w) for w in words]
        )

    def decode(self, stream: EncodedStream) -> list[int]:
        return [self.decode_word(w) for w in stream.driven]

    def budget(self) -> HardwareBudget:
        return HardwareBudget(table_bits=0, extra_lines=0, stateful=False)


@register_reference_counter("gray")
def _gray_reference(encoder: Encoder, words: Sequence[int]) -> int:
    """Bit-at-a-time Gray recode — an implementation independent of
    the ``v ^ (v >> 1)`` fast path, for differential verification."""
    width = encoder.width
    codes = []
    for word in words:
        code = 0
        for i in range(width):
            upper = (word >> (i + 1)) & 1 if i + 1 < width else 0
            code |= (((word >> i) & 1) ^ upper) << i
        codes.append(code)
    return sum((a ^ b).bit_count() for a, b in zip(codes, codes[1:]))
