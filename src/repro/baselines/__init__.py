"""Bus-encoding baselines and competitors (the "encoder zoo").

Classic baselines from the paper's related work (Section 2):

* ``bus_invert`` — Stan & Burleson's bus-invert coding [5], the
  general-purpose data-bus baseline the paper contrasts with
  ("its extremely general nature limits relatively the power savings
  ... on data streams exhibiting regularities").
* ``t0`` — Benini et al.'s T0 sequential-address encoding [2]
  (address-bus technique; included for landscape completeness).
* ``gray`` — Gray address encoding, the classic address-bus baseline.
* ``frequency`` — a static frequency-ranked opcode remapping in the
  spirit of low-power ISA re-encoding [6].

Related-work competitors (see PAPERS.md and docs/encoders.md):

* ``memoryless`` — Chee/Colbourn-style optimal memoryless sub-bus
  codebooks (arXiv:0712.2640).
* ``lowweight`` — Valentini/Chiani-style limited-weight codes with
  transition signalling (arXiv:2606.14203).

Every backend implements the common :class:`Encoder` protocol from
:mod:`repro.baselines.protocol` and registers itself into
``ENCODER_REGISTRY`` so the per-region selector, the verify campaign,
and the fault campaign can enumerate them uniformly.
"""

from repro.baselines.protocol import (
    ENCODER_REGISTRY,
    EncodedStream,
    Encoder,
    HardwareBudget,
    encoder_from_config,
    make_encoder,
    reference_transitions,
    register_encoder,
    registered_schemes,
)
from repro.baselines.bus_invert import (
    BusInvertCoder,
    BusInvertEncoder,
    bus_invert_transitions,
)
from repro.baselines.t0 import T0Coder, T0Encoder, t0_transitions
from repro.baselines.gray import GrayEncoder, gray_decode, gray_encode, gray_transitions
from repro.baselines.frequency import FrequencyEncoder, FrequencyRemapper
from repro.baselines.memoryless import MemorylessCodebookEncoder
from repro.baselines.lowweight import CODEWORDS, LowWeightCodeEncoder

__all__ = [
    "ENCODER_REGISTRY",
    "EncodedStream",
    "Encoder",
    "HardwareBudget",
    "encoder_from_config",
    "make_encoder",
    "reference_transitions",
    "register_encoder",
    "registered_schemes",
    "BusInvertCoder",
    "BusInvertEncoder",
    "bus_invert_transitions",
    "T0Coder",
    "T0Encoder",
    "t0_transitions",
    "gray_encode",
    "gray_decode",
    "gray_transitions",
    "GrayEncoder",
    "FrequencyRemapper",
    "FrequencyEncoder",
    "MemorylessCodebookEncoder",
    "LowWeightCodeEncoder",
    "CODEWORDS",
]
