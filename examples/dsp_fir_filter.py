"""End-to-end example on a custom DSP kernel: a 16-tap FIR filter.

This is the workflow the paper's introduction motivates — a DSP inner
loop running from instruction memory on an embedded core:

1. write the kernel in assembly and simulate it (checking the result
   against a Python reference);
2. profile the fetch trace, find the hot loop;
3. power-encode the hot basic blocks under a 16-entry TT budget;
4. verify the fetch-side hardware restores every instruction;
5. report bus-transition savings and the per-line breakdown.

Run:  python examples/dsp_fir_filter.py
"""

from repro.cfg.graph import ControlFlowGraph
from repro.cfg.loops import find_natural_loops
from repro.cfg.profile import profile_trace
from repro.isa.assembler import assemble
from repro.pipeline.flow import EncodingFlow
from repro.sim.bus import BusModel
from repro.sim.cpu import run_program
from repro.workloads.common import format_doubles, read_doubles

TAPS = 16
SAMPLES = 256


def make_source(taps: int, samples: int) -> tuple[str, list[float], list[float]]:
    coeffs = [((i * 7 + 3) % 11 - 5) / 8.0 for i in range(taps)]
    signal = [((i * 13 + 5) % 17 - 8) / 4.0 for i in range(samples)]
    source = f"""
# fir: y[n] = sum_k h[k] * x[n-k], {taps} taps over {samples} samples
        .data
H:
{format_doubles(coeffs)}
X:
{format_doubles(signal)}
Y:
        .space {8 * samples}
        .text
main:
        li    $s0, {samples}
        li    $s1, {taps}
        la    $s5, H
        la    $s6, X
        la    $s7, Y
        li    $t0, {taps - 1}   # n starts where a full window exists
nloop:
        mtc1  $zero, $f4        # acc = 0.0
        move  $t1, $s5          # &H[0]
        sll   $t2, $t0, 3
        addu  $t2, $s6, $t2     # &X[n]
        li    $t3, 0            # k
kloop:
        l.d   $f6, 0($t1)       # h[k]
        l.d   $f8, 0($t2)       # x[n-k]
        mul.d $f10, $f6, $f8
        add.d $f4, $f4, $f10
        addiu $t1, $t1, 8
        addiu $t2, $t2, -8
        addiu $t3, $t3, 1
        bne   $t3, $s1, kloop
        sll   $t4, $t0, 3
        addu  $t4, $s7, $t4
        s.d   $f4, 0($t4)       # y[n] = acc
        addiu $t0, $t0, 1
        bne   $t0, $s0, nloop
        li    $v0, 10
        syscall
"""
    return source, coeffs, signal


def reference(coeffs, signal):
    out = [0.0] * len(signal)
    for n in range(len(coeffs) - 1, len(signal)):
        out[n] = sum(coeffs[k] * signal[n - k] for k in range(len(coeffs)))
    return out


def main() -> None:
    source, coeffs, signal = make_source(TAPS, SAMPLES)
    program = assemble(source)
    cpu, trace = run_program(program)
    measured = read_doubles(cpu, "Y", SAMPLES)
    expected = reference(coeffs, signal)
    worst = max(abs(m - e) for m, e in zip(measured, expected))
    print(f"FIR simulated: {cpu.steps} instructions, max |error| = {worst:.2e}")
    assert worst < 1e-9

    cfg = ControlFlowGraph.build(program)
    profile = profile_trace(cfg, trace)
    loops = find_natural_loops(cfg)
    print(f"CFG: {len(cfg)} basic blocks, {len(loops)} natural loops")
    hot = profile.hottest(1)[0]
    print(
        f"hottest block: {hot:#010x} "
        f"({100 * profile.coverage_of([hot]):.0f}% of all fetches)"
    )
    print()

    model = BusModel(line_capacitance=10e-12, supply_voltage=1.8)  # off-chip
    print("block size | reduction | TT entries | bus energy saved")
    for k in (4, 5, 6, 7):
        result = EncodingFlow(block_size=k).run(program, trace, "fir")
        assert result.decode_verified
        saved = model.energy_joules(
            result.baseline_transitions - result.encoded_transitions
        )
        print(
            f"    k={k}    |  {result.reduction_percent:5.1f}%  |"
            f"   {result.tt_entries_used:2d}/16    |  {saved * 1e6:6.2f} uJ"
        )

    flow = EncodingFlow(block_size=5)
    result = flow.run(program, trace, "fir")
    baseline_lines, encoded_lines = flow.per_line_breakdown(
        program, trace, result
    )
    from repro.pipeline.report import format_per_line_table

    print("\nper-bus-line transitions (k=5):")
    print(format_per_line_table(baseline_lines, encoded_lines))


if __name__ == "__main__":
    main()
