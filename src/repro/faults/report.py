"""Campaign results: per-case records, per-model tables, JSON report.

Outcome vocabulary (one per injected case):

``detected``
    Strict-mode decode raised a structured :class:`~repro.errors.ReproError`
    (uncorrectable table row, protocol violation, truncation at
    finalize).
``corrected``
    Decode completed bit-identical to the original stream with no
    recovery event, and the tables' SEC-DED logic corrected at least
    one single-bit row error along the way — the self-healing path
    working as designed.
``recovered``
    Recover- or degraded-mode decode completed, with the fault logged
    in the decoder's ``recovery_events`` (degraded to pass-through or
    golden-image service, never silently wrong without a trace).
``silently-corrupted``
    Decode completed with no error and no recovery event, but the
    output differs from the original instruction stream — the failure
    mode the whole subsystem exists to measure.
``crashed``
    An unstructured exception escaped (or recover mode raised, which
    it never may), or a campaign worker timed out.
``masked``
    The corruption never manifested on this trace: output correct, no
    event (e.g. the corrupted TT row was never read).
``not-applicable``
    The injector could not construct the fault on this target (e.g.
    no block long enough for a mid-block entry).

Detection-or-recovery rates are computed over *manifested* cases only
(``masked`` and ``not-applicable`` are excluded): a fault that never
fires says nothing about whether it would have been caught.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.runtime import atomic_write_text

DETECTED = "detected"
CORRECTED = "corrected"
RECOVERED = "recovered"
SILENT = "silently-corrupted"
CRASHED = "crashed"
MASKED = "masked"
NOT_APPLICABLE = "not-applicable"

OUTCOMES = (
    DETECTED,
    CORRECTED,
    RECOVERED,
    SILENT,
    CRASHED,
    MASKED,
    NOT_APPLICABLE,
)


@dataclass
class CaseResult:
    """One (workload, model, trial, mode) fault-injection run."""

    workload: str
    model: str
    seed: str
    mode: str
    outcome: str
    detail: dict = field(default_factory=dict)
    error: str | None = None
    #: Wall-clock seconds for this case.  Deliberately excluded from
    #: :meth:`to_dict`: per-case records stay byte-deterministic across
    #: identical runs; durations surface through the report's per-model
    #: aggregates and ``slowest_case``.
    duration_seconds: float | None = None

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "model": self.model,
            "seed": self.seed,
            "mode": self.mode,
            "outcome": self.outcome,
            "detail": self.detail,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CaseResult":
        """Rebuild a case from its WAL/report record (no duration —
        replayed cases are deliberately timing-free)."""
        return cls(
            workload=data["workload"],
            model=data["model"],
            seed=data["seed"],
            mode=data["mode"],
            outcome=data["outcome"],
            detail=data.get("detail") or {},
            error=data.get("error"),
        )


@dataclass
class FaultCampaignReport:
    """Every case of one campaign plus the configuration that ran it."""

    config: dict
    cases: list[CaseResult]

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def model_table(self) -> list[dict]:
        """One row per (model, mode): outcome counts and the
        detection-or-recovery rate over manifested cases."""
        keys: list[tuple[str, str]] = []
        rows: dict[tuple[str, str], dict] = {}
        for case in self.cases:
            key = (case.model, case.mode)
            if key not in rows:
                keys.append(key)
                rows[key] = {
                    "model": case.model,
                    "mode": case.mode,
                    **{outcome: 0 for outcome in OUTCOMES},
                    "total_seconds": 0.0,
                    "slowest_seconds": None,
                    "slowest_seed": None,
                }
            row = rows[key]
            row[case.outcome] += 1
            if case.duration_seconds is not None:
                row["total_seconds"] += case.duration_seconds
                if (
                    row["slowest_seconds"] is None
                    or case.duration_seconds > row["slowest_seconds"]
                ):
                    row["slowest_seconds"] = case.duration_seconds
                    row["slowest_seed"] = case.seed
        table = []
        for key in keys:
            row = rows[key]
            manifested = (
                row[DETECTED]
                + row[CORRECTED]
                + row[RECOVERED]
                + row[SILENT]
                + row[CRASHED]
            )
            row["manifested"] = manifested
            row["detection_or_recovery_rate"] = (
                (row[DETECTED] + row[CORRECTED] + row[RECOVERED]) / manifested
                if manifested
                else None
            )
            cases = sum(row[outcome] for outcome in OUTCOMES)
            row["mean_seconds"] = (
                row["total_seconds"] / cases if cases else None
            )
            table.append(row)
        return table

    def slowest_case(self) -> dict | None:
        """The single longest-running case of the whole campaign."""
        timed = [c for c in self.cases if c.duration_seconds is not None]
        if not timed:
            return None
        worst = max(timed, key=lambda c: c.duration_seconds)
        return {
            "workload": worst.workload,
            "model": worst.model,
            "mode": worst.mode,
            "seed": worst.seed,
            "outcome": worst.outcome,
            "duration_seconds": worst.duration_seconds,
        }

    def silent_cases(self) -> list[CaseResult]:
        return [case for case in self.cases if case.outcome == SILENT]

    def protected_models(self) -> list[str]:
        return list(self.config.get("protected_models", []))

    def protected_ok(self) -> bool:
        """The acceptance gate: every *protected* model (parity-covered
        table corruption, protocol violation) shows zero silent
        corruptions and a 100% detection-or-recovery rate wherever the
        fault manifested."""
        protected = set(self.protected_models())
        for row in self.model_table():
            if row["model"] not in protected:
                continue
            if row[SILENT] or row[CRASHED]:
                return False
            rate = row["detection_or_recovery_rate"]
            if rate is not None and rate < 1.0:
                return False
        return True

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def format_table(self) -> str:
        header = (
            f"{'model':<22s} {'mode':<8s} {'det':>4s} {'corr':>4s} "
            f"{'rec':>4s} {'sil':>4s} {'crash':>5s} {'mask':>4s} "
            f"{'n/a':>4s} {'det-or-rec':>10s}"
        )
        lines = [header, "-" * len(header)]
        for row in self.model_table():
            rate = row["detection_or_recovery_rate"]
            lines.append(
                f"{row['model']:<22s} {row['mode']:<8s} "
                f"{row[DETECTED]:>4d} {row[CORRECTED]:>4d} "
                f"{row[RECOVERED]:>4d} "
                f"{row[SILENT]:>4d} {row[CRASHED]:>5d} "
                f"{row[MASKED]:>4d} {row[NOT_APPLICABLE]:>4d} "
                f"{'  --' if rate is None else f'{100 * rate:9.1f}%':>10s}"
            )
        return "\n".join(lines)

    def to_dict(self, deterministic: bool = False) -> dict:
        """Full report dict.  ``deterministic=True`` zeroes every
        wall-clock aggregate (timings vary run to run; the resume
        contract promises byte-identical reports, so resumable runs
        must write the deterministic form)."""
        summary = self.model_table()
        if deterministic:
            for row in summary:
                row["total_seconds"] = 0.0
                row["mean_seconds"] = None
                row["slowest_seconds"] = None
                row["slowest_seed"] = None
        return {
            "config": self.config,
            "summary": summary,
            "protected_ok": self.protected_ok(),
            "silent_corruptions": len(self.silent_cases()),
            "total_seconds": (
                0.0
                if deterministic
                else sum(c.duration_seconds or 0.0 for c in self.cases)
            ),
            "slowest_case": None if deterministic else self.slowest_case(),
            "cases": [case.to_dict() for case in self.cases],
        }

    def to_json(self, deterministic: bool = False) -> str:
        return json.dumps(self.to_dict(deterministic=deterministic), indent=1)

    def write(
        self,
        path: str = "FAULTS_report.json",
        deterministic: bool = False,
        vfs=None,
    ) -> Path:
        target = Path(path)
        # Atomic: a crash mid-write can never leave a truncated report.
        atomic_write_text(
            target, self.to_json(deterministic=deterministic), vfs=vfs
        )
        return target
