"""TableScrubber tests: cadence, in-place correction, quarantine,
golden-bundle repair, BBIT cross-check, and decoder re-arming."""

from types import SimpleNamespace

import pytest

from repro.errors import TableIntegrityError
from repro.hw.bbit import BasicBlockIdentificationTable, BBITEntry
from repro.hw.scrubber import TableScrubber
from repro.hw.tt import TransformationTable, TTEntry

BASE = 0x400000


def _tables(num_rows=3):
    """A parity-armed TT/BBIT pair plus a matching golden 'bundle'
    (the scrubber only touches ``tt_entries`` / ``bbit_entries``)."""
    tt = TransformationTable(capacity=8, parity=True)
    bbit = BasicBlockIdentificationTable(capacity=8, parity=True)
    tt_entries, bbit_entries = [], []
    for i in range(num_rows):
        selectors = tuple((i + j) % 8 for j in range(32))
        end = i == num_rows - 1
        count = 4 if end else 0
        tt.install(TTEntry(selectors=selectors, end=end, count=count))
        tt_entries.append(
            {"selectors": list(selectors), "end": end, "count": count}
        )
        pc = BASE + 0x40 * i
        bbit.install(BBITEntry(pc=pc, tt_index=i, num_instructions=6))
        bbit_entries.append(
            {"pc": pc, "tt_index": i, "num_instructions": 6}
        )
    bundle = SimpleNamespace(tt_entries=tt_entries, bbit_entries=bbit_entries)
    return tt, bbit, bundle


def _flip_tt_count_bits(tt, index, *bits):
    """Corrupt a stored TT row in place (stale check word), like a
    fault injector would."""
    entry = tt.entries[index]
    count = entry.count
    for bit in bits:
        count ^= 1 << bit
    tt.entries[index] = TTEntry(
        selectors=entry.selectors, end=entry.end, count=count
    )


def _flip_bbit_index_bits(bbit, pc, *bits):
    entry = bbit._by_pc[pc]
    tt_index = entry.tt_index
    for bit in bits:
        tt_index ^= 1 << bit
    bbit._by_pc[pc] = BBITEntry(
        pc=entry.pc, tt_index=tt_index, num_instructions=entry.num_instructions
    )


class TestCadence:
    def test_tick_fires_on_cadence(self):
        tt, bbit, _ = _tables()
        scrubber = TableScrubber(tt, bbit, cadence=10)
        assert scrubber.tick(9) is None
        report = scrubber.tick(1)
        assert report is not None and scrubber.sweeps == 1
        assert report.rows_checked == len(tt.entries) + len(bbit._by_pc)

    def test_tick_merges_multiple_elapsed_sweeps(self):
        tt, bbit, _ = _tables(num_rows=2)
        scrubber = TableScrubber(tt, bbit, cadence=5)
        report = scrubber.tick(10)
        assert scrubber.sweeps == 2
        assert report.rows_checked == 2 * (len(tt.entries) + len(bbit._by_pc))

    def test_invalid_cadence_rejected(self):
        tt, bbit, _ = _tables(num_rows=1)
        with pytest.raises(ValueError, match="cadence"):
            TableScrubber(tt, bbit, cadence=0)


class TestSweepCorrection:
    def test_single_bit_tt_upset_corrected_in_place(self):
        tt, bbit, _ = _tables()
        _flip_tt_count_bits(tt, 2, 3)
        report = TableScrubber(tt, bbit).sweep()
        assert report.corrected == 1 and report.quarantined == 0
        assert tt.entries[2].count == 4
        assert tt.ecc_corrections == 1
        # The repaired row reads cleanly afterwards.
        assert TableScrubber(tt, bbit).sweep().corrected == 0

    def test_single_bit_bbit_upset_corrected_in_place(self):
        tt, bbit, _ = _tables()
        _flip_bbit_index_bits(bbit, BASE, 0)
        report = TableScrubber(tt, bbit).sweep()
        assert report.corrected == 1
        assert bbit.peek(BASE).tt_index == 0
        assert bbit.ecc_corrections == 1

    def test_double_bit_without_bundle_stays_quarantined(self):
        tt, bbit, _ = _tables()
        _flip_tt_count_bits(tt, 1, 0, 5)
        report = TableScrubber(tt, bbit).sweep()
        assert report.quarantined == 1 and report.repaired == 0
        assert 1 in tt.quarantined
        with pytest.raises(TableIntegrityError, match="SEC-DED"):
            tt.read(1)

    def test_double_bit_repaired_from_golden_bundle(self):
        tt, bbit, bundle = _tables()
        _flip_tt_count_bits(tt, 2, 0, 5)
        scrubber = TableScrubber(tt, bbit, bundle=bundle)
        report = scrubber.sweep()
        assert report.quarantined == 1 and report.repaired == 1
        assert not tt.quarantined
        assert tt.read(2).count == 4
        assert tt.repairs == 1

    def test_bbit_double_bit_repaired_from_golden_bundle(self):
        tt, bbit, bundle = _tables()
        _flip_bbit_index_bits(bbit, BASE + 0x40, 0, 4)
        report = TableScrubber(tt, bbit, bundle=bundle).sweep()
        assert report.repaired == 1
        assert not bbit.quarantined
        assert bbit.lookup(BASE + 0x40).tt_index == 1


class TestCrossCheck:
    def test_stale_row_caught_by_golden_cross_check(self):
        # An aliased corruption can leave a row that satisfies its own
        # check word but differs from the golden image; the cross-check
        # rewrites it.
        tt, bbit, bundle = _tables()
        bbit.install(BBITEntry(pc=BASE + 0x1000, tt_index=7, num_instructions=3))
        wrong = BBITEntry(pc=BASE, tt_index=5, num_instructions=6)
        bbit._by_pc[BASE] = wrong
        bbit._parity[BASE] = bbit._row_ecc(wrong)  # self-consistent lie
        report = TableScrubber(tt, bbit, bundle=bundle).sweep()
        assert report.dropped == 1  # the phantom row not in the bundle
        assert report.repaired == 1
        assert bbit.peek(BASE).tt_index == 0
        assert bbit.peek(BASE + 0x1000) is None

    def test_quarantined_phantom_tag_dropped(self):
        tt, bbit, bundle = _tables(num_rows=1)
        phantom = BASE + 0x2000
        bbit.install(BBITEntry(pc=phantom, tt_index=3, num_instructions=2))
        _flip_bbit_index_bits(bbit, phantom, 0, 4)
        report = TableScrubber(tt, bbit, bundle=bundle).sweep()
        assert report.dropped == 1
        assert bbit.peek(phantom) is None
        assert phantom not in bbit.quarantined
        assert bbit.lookup(phantom) is None  # misses instead of raising


class TestDecoderRestore:
    def test_clean_repairing_sweep_rearms_decoder(self):
        tt, bbit, bundle = _tables()

        class _Decoder:
            def __init__(self):
                self.restored = 0

            def restore_degraded(self):
                self.restored += 1
                return 6

        decoder = _Decoder()
        _flip_tt_count_bits(tt, 2, 0, 5)
        scrubber = TableScrubber(tt, bbit, bundle=bundle, decoder=decoder)
        report = scrubber.sweep()
        assert report.repaired == 1
        assert decoder.restored == 1
        assert report.restored_addresses == 6

    def test_no_rearm_while_quarantine_persists(self):
        tt, bbit, bundle = _tables()

        class _Decoder:
            def restore_degraded(self):  # pragma: no cover - must not run
                raise AssertionError("restore with quarantined rows")

        # A row the golden bundle knows nothing about: its quarantine
        # cannot be repaired, so the decoder must stay demoted.
        extra = len(bundle.tt_entries)
        tt.install(TTEntry(selectors=(1,) * 32))
        _flip_tt_count_bits(tt, extra, 0, 5)
        scrubber = TableScrubber(tt, bbit, bundle=bundle)
        scrubber.attach_decoder(_Decoder())
        report = scrubber.sweep()
        assert report.quarantined == 1 and report.repaired == 0
        assert report.restored_addresses == 0
        assert extra in tt.quarantined
