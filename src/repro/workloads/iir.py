"""IIR biquad cascade (``iir``) — extended workload.

A cascade of direct-form-I second-order sections, the standard
embedded audio/control filter structure:

    y = b0*x + b1*x1 + b2*x2 - a1*y1 - a2*y2      (per section)

with per-section delay lines carried in memory.
"""

from __future__ import annotations

from repro.workloads.common import (
    Workload,
    assert_close,
    format_doubles,
    pseudo_values,
    read_doubles,
)

DEFAULT_SECTIONS = 4
DEFAULT_SAMPLES = 256

# Mildly damped, stable coefficient template; per-section variation
# keeps the sections distinct without risking instability.
_B = (0.2, 0.3, 0.2)
_A = (-0.4, 0.1)


def _section_coeffs(sections: int) -> list[tuple[float, ...]]:
    rows = []
    for s in range(sections):
        scale = 1.0 + 0.05 * s
        rows.append(
            (
                _B[0] * scale,
                _B[1] * scale,
                _B[2] * scale,
                _A[0] + 0.02 * s,
                _A[1] - 0.01 * s,
            )
        )
    return rows


def _reference(signal: list[float], coeffs: list[tuple[float, ...]]) -> list[float]:
    data = list(signal)
    for b0, b1, b2, a1, a2 in coeffs:
        x1 = x2 = y1 = y2 = 0.0
        out = []
        for x in data:
            y = b0 * x + b1 * x1 + b2 * x2 - a1 * y1 - a2 * y2
            x2, x1 = x1, x
            y2, y1 = y1, y
            out.append(y)
        data = out
    return data


def build(
    sections: int = DEFAULT_SECTIONS, samples: int = DEFAULT_SAMPLES
) -> Workload:
    """Build the iir workload."""
    if sections < 1 or samples < 1:
        raise ValueError("need sections >= 1 and samples >= 1")
    signal = pseudo_values(samples, seed=14)
    coeffs = _section_coeffs(sections)
    expected = _reference(signal, coeffs)
    flat_coeffs = [c for row in coeffs for c in row]

    source = f"""
# iir: {sections} cascaded biquad sections over {samples} samples
        .data
X:
{format_doubles(signal)}
C:
{format_doubles(flat_coeffs)}
STATE:
        .space {8 * 4 * sections}   # x1 x2 y1 y2 per section
        .text
main:
        li    $s0, {samples}
        li    $s1, {sections}
        la    $s6, X
        li    $t0, 0            # n
nloop:
        sll   $t1, $t0, 3
        addu  $t1, $s6, $t1
        l.d   $f4, 0($t1)       # sample flows through the cascade
        la    $t2, C
        la    $t3, STATE
        li    $t4, 0            # section index
sloop:
        l.d   $f6, 0($t2)       # b0
        l.d   $f8, 8($t2)       # b1
        l.d   $f10, 16($t2)     # b2
        l.d   $f12, 24($t2)     # a1
        l.d   $f14, 32($t2)     # a2
        l.d   $f16, 0($t3)      # x1
        l.d   $f18, 8($t3)      # x2
        l.d   $f20, 16($t3)     # y1
        l.d   $f22, 24($t3)     # y2
        mul.d $f24, $f6, $f4    # b0*x
        mul.d $f26, $f8, $f16   # b1*x1
        add.d $f24, $f24, $f26
        mul.d $f26, $f10, $f18  # b2*x2
        add.d $f24, $f24, $f26
        mul.d $f26, $f12, $f20  # a1*y1
        sub.d $f24, $f24, $f26
        mul.d $f26, $f14, $f22  # a2*y2
        sub.d $f24, $f24, $f26  # y
        s.d   $f16, 8($t3)      # x2 = x1
        s.d   $f4, 0($t3)       # x1 = x
        s.d   $f20, 24($t3)     # y2 = y1
        s.d   $f24, 16($t3)     # y1 = y
        mov.d $f4, $f24         # cascade: x of next section = y
        addiu $t2, $t2, 40
        addiu $t3, $t3, 32
        addiu $t4, $t4, 1
        bne   $t4, $s1, sloop
        s.d   $f4, 0($t1)       # write back in place
        addiu $t0, $t0, 1
        bne   $t0, $s0, nloop
        li    $v0, 10
        syscall
"""

    def verify(cpu) -> None:
        measured = read_doubles(cpu, "X", samples)
        assert_close(measured, expected, tolerance=1e-9, what="iir y")

    return Workload(
        name="iir",
        description=f"{sections}-section biquad IIR cascade over {samples} samples (extended workload)",
        source=source,
        params={"sections": sections, "samples": samples},
        verify=verify,
    )
