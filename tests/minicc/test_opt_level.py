"""Tests for the opt_level=1 scalar-promotion backend."""

import pytest

from repro.minicc import CompileError, compile_kernel
from tests.minicc.test_interp_reference import interpret

KERNEL = """
int i; int total; double acc;
double w[8];
acc = 0.0;
total = 0;
for (i = 0; i < 8; i = i + 1) {
    w[i] = i * 0.5;
    acc = acc + w[i];
    total = total + i;
}
"""


class TestPromotion:
    def test_results_identical_across_levels(self):
        expected = interpret(KERNEL)
        for opt_level in (0, 1):
            kernel = compile_kernel(KERNEL, opt_level=opt_level)
            cpu, _ = kernel.run()
            assert kernel.read(cpu, "total") == expected["total"][0]
            assert kernel.read(cpu, "acc") == pytest.approx(
                expected["acc"][0]
            )
            assert kernel.read(cpu, "w") == pytest.approx(expected["w"])

    def test_o1_executes_fewer_instructions(self):
        o0 = compile_kernel(KERNEL, opt_level=0)
        o1 = compile_kernel(KERNEL, opt_level=1)
        cpu0, _ = o0.run()
        cpu1, _ = o1.run()
        assert cpu1.steps < cpu0.steps

    def test_scalars_written_back_to_memory(self):
        # read() goes through memory; the epilogue must store homes.
        kernel = compile_kernel("int x; double d; x = 41 + 1; d = 2.5;", opt_level=1)
        cpu, _ = kernel.run()
        assert kernel.read(cpu, "x") == 42
        assert kernel.read(cpu, "d") == 2.5

    def test_initial_data_preloaded(self):
        kernel = compile_kernel(
            "double d; double out[1]; out[0] = d * 2.0;",
            data={"d": 1.25},
            opt_level=1,
        )
        cpu, _ = kernel.run()
        assert kernel.read(cpu, "out") == [2.5]

    def test_arrays_never_promoted(self):
        kernel = compile_kernel("int v[4]; v[0] = 1;", opt_level=1)
        # Generated code must still address the array through memory.
        assert "la" in kernel.assembly
        cpu, _ = kernel.run()
        assert kernel.read(cpu, "v")[0] == 1

    def test_excess_scalars_fall_back_to_memory(self):
        decls = "".join(f"int s{i}; " for i in range(12))
        body = " ".join(f"s{i} = {i};" for i in range(12))
        kernel = compile_kernel(decls + body, opt_level=1)
        cpu, _ = kernel.run()
        for i in range(12):
            assert kernel.read(cpu, f"s{i}") == i

    def test_promoted_int_register_set(self):
        kernel = compile_kernel("int x; x = 5;", opt_level=1)
        assert "$s0" in kernel.assembly  # promoted home register

    def test_bad_opt_level_rejected(self):
        with pytest.raises(CompileError, match="opt_level"):
            compile_kernel("int x; x = 1;", opt_level=3)
