"""Per-tenant SLO tracking and the incident flight recorder."""

import json

import pytest

from repro.obs.flight import FlightRecorder
from repro.obs.slo import DEFAULT_TENANT, SLOPolicy, SLOTracker


class FakeClock:
    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestSLOPolicy:
    def test_defaults_are_sane(self):
        policy = SLOPolicy()
        assert 0.0 < policy.error_budget < 1.0
        assert 0.0 < policy.latency_objective < 1.0
        assert policy.warn_burn < policy.breach_burn

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            SLOPolicy(error_budget=0.0)
        with pytest.raises(ValueError):
            SLOPolicy(latency_objective=1.5)


class TestSLOTracker:
    def test_no_traffic_is_idle(self):
        tracker = SLOTracker(clock=FakeClock())
        verdict = tracker.verdict("t0")
        assert verdict["status"] == "idle"
        assert verdict["burn_rate"] == 0.0

    def test_healthy_traffic_is_ok(self):
        tracker = SLOTracker(clock=FakeClock())
        for _ in range(50):
            tracker.observe("t0", latency_s=0.1, ok=True)
        verdict = tracker.verdict("t0")
        assert verdict["status"] == "ok"
        assert verdict["burn_rate"] == 0.0

    def test_error_burn_breaches(self):
        tracker = SLOTracker(
            SLOPolicy(error_budget=0.05), clock=FakeClock()
        )
        for i in range(20):
            tracker.observe("t0", latency_s=0.1, ok=(i % 2 == 0))
        verdict = tracker.verdict("t0")
        # 50% errors against a 5% budget: burn 10x, clear breach.
        assert verdict["status"] == "breach"
        assert verdict["burn_rate"] == pytest.approx(10.0)

    def test_slow_jobs_burn_latency_budget(self):
        tracker = SLOTracker(
            SLOPolicy(latency_target_s=1.0, latency_objective=0.9),
            clock=FakeClock(),
        )
        for i in range(20):
            tracker.observe("t0", latency_s=5.0 if i < 10 else 0.1, ok=True)
        verdict = tracker.verdict("t0")
        # 50% slow against a 10% slow allowance: burn 5x.
        assert verdict["burn_rate"] == pytest.approx(5.0)
        assert verdict["status"] == "breach"

    def test_tenants_are_isolated(self):
        tracker = SLOTracker(clock=FakeClock())
        tracker.observe("bad", latency_s=0.1, ok=False)
        tracker.observe("good", latency_s=0.1, ok=True)
        assert tracker.verdict("bad")["status"] == "breach"
        assert tracker.verdict("good")["status"] == "ok"

    def test_empty_tenant_maps_to_default(self):
        tracker = SLOTracker(clock=FakeClock())
        tracker.observe("", latency_s=0.1, ok=True)
        assert DEFAULT_TENANT in tracker.verdicts()

    def test_breach_ages_back_to_ok(self):
        clock = FakeClock()
        tracker = SLOTracker(clock=clock)
        for _ in range(10):
            tracker.observe("t0", latency_s=0.1, ok=False)
        assert tracker.verdict("t0")["status"] == "breach"
        clock.advance(1000.0)
        for _ in range(10):
            tracker.observe("t0", latency_s=0.1, ok=True)
        assert tracker.verdict("t0")["status"] == "ok"

    def test_snapshot_is_json_ready(self):
        tracker = SLOTracker(clock=FakeClock())
        tracker.observe("t0", latency_s=0.1, ok=True)
        snap = json.loads(json.dumps(tracker.snapshot()))
        assert "policy" in snap
        assert "t0" in snap["tenants"]


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        flight = FlightRecorder(capacity=4, clock=FakeClock())
        for i in range(10):
            flight.record("tick", i=i)
        snap = flight.snapshot()
        assert snap["events_retained"] == 4
        assert snap["events_recorded"] == 10
        assert [e["i"] for e in flight.tail(4)] == [6, 7, 8, 9]

    def test_dump_writes_header_and_events(self, tmp_path):
        flight = FlightRecorder(clock=FakeClock())
        flight.record("breaker_open", failures=3)
        path = tmp_path / "flight.jsonl"
        assert flight.dump(str(path), "breaker_open", {"note": "x"})
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        assert lines[0]["event"] == "flight_dump"
        assert lines[0]["reason"] == "breaker_open"
        assert lines[0]["extra"] == {"note": "x"}
        assert lines[1]["kind"] == "breaker_open"

    def test_dumps_rate_limited_per_reason(self, tmp_path):
        clock = FakeClock()
        flight = FlightRecorder(clock=clock, min_dump_interval_s=5.0)
        flight.record("breaker_open")
        path = str(tmp_path / "flight.jsonl")
        assert flight.dump(path, "breaker_open")
        assert not flight.dump(path, "breaker_open")  # too soon
        assert flight.dump(path, "sigterm")  # different reason, allowed
        clock.advance(6.0)
        assert flight.dump(path, "breaker_open")
        assert flight.snapshot()["dumps_suppressed"] == 1

    def test_dumps_append_not_truncate(self, tmp_path):
        clock = FakeClock()
        flight = FlightRecorder(clock=clock)
        flight.record("one")
        path = str(tmp_path / "flight.jsonl")
        flight.dump(path, "breaker_open")
        clock.advance(60.0)
        flight.record("two")
        flight.dump(path, "breaker_open")
        headers = [
            json.loads(line)
            for line in open(path)
            if '"flight_dump"' in line
        ]
        assert len(headers) == 2

    def test_unjsonable_fields_degrade_to_repr(self, tmp_path):
        flight = FlightRecorder(clock=FakeClock())
        flight.record("odd", obj=object())
        path = str(tmp_path / "flight.jsonl")
        assert flight.dump(path, "sigterm")
        assert "object object at" in open(path).read()
