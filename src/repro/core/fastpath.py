"""Compiled codebook fast path: memoized block solutions over integers.

The reference encoder (:mod:`repro.core.block_solver`) re-solves the
same tiny subproblem — optimal (code word, tau) for a <= 7-bit block
word — for every bus line of every segment of every basic block.  The
subproblem space is only ``2**k`` words per (block size, variant), so
this module *compiles* a :class:`CompiledCodebook` once per
``(block_size, transformation set)`` key and turns the hot path into
table lookups, in the memoryless-table spirit of the bus-encoding
literature (Chee & Colbourn; Valentini & Chiani).

Three table families are compiled:

``anchored[length][word_int]``
    ``(code_int, tau, cost)`` for a standalone/first block — exactly
    :meth:`BlockSolver.solve_anchored`, including its tie-breaking.
``constrained[length][fixed_bit][word_int]``
    The Section 6 overlap-constrained variant
    (:meth:`BlockSolver.solve_constrained`).
``profiles``
    The per-block ``(in_bit, out_bit) -> (cost, tau, code_int)``
    interface profiles the stream-level optimal DP chains together,
    compiled lazily on first use of the ``optimal`` strategy.

Streams are represented as Python ints (bit ``i`` = stream position
``i``): block words are extracted with shift/mask, transitions are
counted with a single popcount (``count_transitions_int``), and
decoding walks per-(tau, length) suffix tables instead of bit-serial
Python loops.

Every table entry is produced by the *reference* :class:`BlockSolver`
at compile time, so the fast path is bit-identical to the seed
implementation by construction; ``tests/core/test_fastpath.py``
cross-validates this property over random streams and every strategy.

Codebooks are cached process-wide in a small LRU keyed on the
transformation set's (truth table, selector) pairs.
"""

from __future__ import annotations

from collections import OrderedDict
from functools import lru_cache
from typing import Sequence

from repro.core.block_solver import BlockSolver, infeasible_block_error
from repro.core.boolfunc import BoolFunc
from repro.core.transformations import OPTIMAL_SET, Transformation
from repro.obs import OBS

#: Compiled codebooks retained process-wide (newest-used last).
_CODEBOOK_LRU_SIZE = 32
_CODEBOOKS: OrderedDict[tuple, "CompiledCodebook"] = OrderedDict()


def _int_to_word(word_int: int, length: int) -> list[int]:
    """Expand a block-word integer into a time-ordered bit list."""
    return [(word_int >> i) & 1 for i in range(length)]


def _pack_code(code: Sequence[int]) -> int:
    value = 0
    for i, bit in enumerate(code):
        value |= (bit & 1) << i
    return value


class CompiledCodebook:
    """All block solutions for one ``(block_size, transformations)``.

    Entries are ``(code_int, transformation, cost)`` tuples; ``None``
    marks a block word the candidate set cannot express (possible only
    for degenerate sets without identity/inversion) — lookups then
    raise the same :class:`RuntimeError` the reference solver raises.
    """

    __slots__ = (
        "block_size",
        "transformations",
        "anchored",
        "constrained",
        "_profiles_first",
        "_profiles_chain",
        "_solver",
    )

    def __init__(
        self,
        block_size: int,
        transformations: Sequence[Transformation] = OPTIMAL_SET,
    ) -> None:
        if block_size < 2:
            raise ValueError(f"block size must be >= 2, got {block_size}")
        self.block_size = block_size
        self.transformations = tuple(transformations)
        self._solver = BlockSolver(self.transformations)
        self.anchored: list[list | None] = [None] * (block_size + 1)
        self.constrained: list[tuple[list, list] | None] = [None] * (
            block_size + 1
        )
        for length in range(1, block_size + 1):
            anchored_row = []
            for word_int in range(1 << length):
                word = _int_to_word(word_int, length)
                try:
                    sol = self._solver.solve_anchored(word)
                except RuntimeError:
                    anchored_row.append(None)
                else:
                    anchored_row.append(
                        (
                            _pack_code(sol.code),
                            sol.transformation,
                            sol.encoded_transitions,
                        )
                    )
            self.anchored[length] = anchored_row
            if length < 2:
                continue
            fixed_rows = ([], [])
            for fixed in (0, 1):
                for word_int in range(1 << length):
                    word = _int_to_word(word_int, length)
                    try:
                        sol = self._solver.solve_constrained(word, fixed)
                    except RuntimeError:
                        fixed_rows[fixed].append(None)
                    else:
                        fixed_rows[fixed].append(
                            (
                                _pack_code(sol.code),
                                sol.transformation,
                                sol.encoded_transitions,
                            )
                        )
            self.constrained[length] = fixed_rows
        self._profiles_first: list | None = None
        self._profiles_chain: list | None = None

    # ------------------------------------------------------------------
    # Interface profiles for the stream-level optimal DP
    # ------------------------------------------------------------------

    def _compile_profile(self, word: list[int], first_block: bool) -> tuple:
        """One block's DP interface profile, replicating the reference
        ``StreamEncoder._encode_optimal`` inner loop (including its
        insertion order, which fixes the DP's tie-breaking)."""
        profile: dict[tuple[int, int], tuple[int, Transformation, tuple]] = {}
        in_bits = (word[0],) if first_block else (0, 1)
        for in_bit in in_bits:
            for transformation in self.transformations:
                fixed_first = None if first_block else in_bit
                by_final = self._solver.best_by_final_bit(
                    word, transformation, fixed_first
                )
                if by_final is None:
                    continue
                for out_bit, (cost, code) in by_final.items():
                    key = (in_bit, out_bit)
                    if key not in profile or cost < profile[key][0]:
                        profile[key] = (cost, transformation, code)
        return tuple(
            (in_bit, out_bit, cost, tau, _pack_code(code))
            for (in_bit, out_bit), (cost, tau, code) in profile.items()
        )

    def ensure_profiles(self) -> None:
        """Compile the optimal-DP profile tables (lazy: only streams
        encoded with the ``optimal`` strategy need them)."""
        if self._profiles_first is not None:
            return
        first: list = [None] * (self.block_size + 1)
        chain: list = [None] * (self.block_size + 1)
        for length in range(2, self.block_size + 1):
            first_row, chain_row = [], []
            for word_int in range(1 << length):
                word = _int_to_word(word_int, length)
                first_row.append(self._compile_profile(word, True))
                chain_row.append(self._compile_profile(word, False))
            first[length] = first_row
            chain[length] = chain_row
        self._profiles_first = first
        self._profiles_chain = chain


def get_codebook(
    block_size: int,
    transformations: Sequence[Transformation] = OPTIMAL_SET,
) -> CompiledCodebook:
    """Fetch (or compile) the codebook for a ``(k, tau set)`` key.

    Keyed on the set's (truth table, selector) pairs so sets that are
    ``==``-equal but carry different hardware selectors do not share a
    compiled book.
    """
    key = (
        block_size,
        tuple((t.func.truth_table, t.selector) for t in transformations),
    )
    book = _CODEBOOKS.get(key)
    if book is None:
        if OBS.enabled:
            OBS.registry.counter(
                "codec.codebook_misses",
                "codebook compilations (LRU misses)",
                k=str(block_size),
            ).inc()
        with OBS.tracer.span("codec.codebook_compile", k=block_size):
            book = CompiledCodebook(block_size, tuple(transformations))
        _CODEBOOKS[key] = book
        while len(_CODEBOOKS) > _CODEBOOK_LRU_SIZE:
            _CODEBOOKS.popitem(last=False)
    else:
        if OBS.enabled:
            OBS.registry.counter(
                "codec.codebook_hits",
                "compiled codebook LRU hits",
                k=str(block_size),
            ).inc()
        _CODEBOOKS.move_to_end(key)
    return book


def clear_codebook_cache() -> None:
    """Drop all compiled codebooks (testing hook)."""
    _CODEBOOKS.clear()


# ----------------------------------------------------------------------
# Integer bit-parallel encode cores
# ----------------------------------------------------------------------


def encode_greedy_int(
    book: CompiledCodebook,
    stream_int: int,
    bounds: Sequence[tuple[int, int]],
) -> tuple[int, list[Transformation]]:
    """Greedy chained encoding over an integer stream.

    ``bounds`` must be the overlapped segment bounds for the stream's
    length; returns the encoded stream integer and the per-segment
    transformation plan.
    """
    anchored = book.anchored
    constrained = book.constrained
    encoded = 0
    taus: list[Transformation] = []
    for index, (start, seg_len) in enumerate(bounds):
        word_int = (stream_int >> start) & ((1 << seg_len) - 1)
        if index == 0:
            entry = anchored[seg_len][word_int]
        else:
            entry = constrained[seg_len][(encoded >> start) & 1][word_int]
        if entry is None:
            raise infeasible_block_error(_int_to_word(word_int, seg_len))
        code_int, tau, _cost = entry
        # The code's first bit equals the already-written overlap bit,
        # so OR-ing never clobbers earlier segments.
        encoded |= code_int << start
        taus.append(tau)
    return encoded, taus


def encode_disjoint_int(
    book: CompiledCodebook,
    stream_int: int,
    bounds: Sequence[tuple[int, int]],
) -> tuple[int, list[Transformation]]:
    """Disjoint (non-overlapped) encoding: every block anchored."""
    anchored = book.anchored
    encoded = 0
    taus: list[Transformation] = []
    for start, seg_len in bounds:
        word_int = (stream_int >> start) & ((1 << seg_len) - 1)
        entry = anchored[seg_len][word_int]
        if entry is None:
            raise infeasible_block_error(_int_to_word(word_int, seg_len))
        code_int, tau, _cost = entry
        encoded |= code_int << start
        taus.append(tau)
    return encoded, taus


def optimal_dp_empty_error(block_index: int, start: int) -> RuntimeError:
    """The error both optimal-DP implementations raise when no
    transformation in the candidate set can express some block word
    (the DP state would otherwise feed an opaque ``min()`` failure)."""
    return RuntimeError(
        f"optimal DP state is empty at block {block_index} (stream "
        f"position {start}): no transformation in the candidate set can "
        "express the block word — include identity (x) and inversion (~x)"
    )


def encode_optimal_int(
    book: CompiledCodebook,
    stream_int: int,
    bounds: Sequence[tuple[int, int]],
) -> tuple[int, list[Transformation], int]:
    """Globally optimal chained encoding via the interface-bit DP.

    Identical tie-breaking to the reference ``_encode_optimal``: the
    compiled profiles preserve its iteration order, and the forward DP
    keeps backpointer chains instead of copying plans (O(blocks) rather
    than O(blocks^2)).
    """
    book.ensure_profiles()
    profiles_first = book._profiles_first
    profiles_chain = book._profiles_chain

    # state[out_bit] = (cost, node); node = (prev_node, tau, code_int)
    state: dict[int, tuple[int, tuple]] = {}
    start0, len0 = bounds[0]
    word_int = (stream_int >> start0) & ((1 << len0) - 1)
    for _in_bit, out_bit, cost, tau, code_int in profiles_first[len0][word_int]:
        if out_bit not in state or cost < state[out_bit][0]:
            state[out_bit] = (cost, (None, tau, code_int))
    for block_index, (start, seg_len) in enumerate(bounds[1:], start=1):
        if not state:
            raise optimal_dp_empty_error(block_index - 1, bounds[block_index - 1][0])
        word_int = (stream_int >> start) & ((1 << seg_len) - 1)
        new_state: dict[int, tuple[int, tuple]] = {}
        for in_bit, out_bit, cost, tau, code_int in profiles_chain[seg_len][
            word_int
        ]:
            prev = state.get(in_bit)
            if prev is None:
                continue
            total = prev[0] + cost
            current = new_state.get(out_bit)
            if current is None or total < current[0]:
                new_state[out_bit] = (total, (prev[1], tau, code_int))
        state = new_state
    if not state:
        last = len(bounds) - 1
        raise optimal_dp_empty_error(last, bounds[last][0])

    best_cost, node = min(state.values(), key=lambda item: item[0])
    plan: list[tuple[Transformation, int]] = []
    while node is not None:
        node, tau, code_int = node
        plan.append((tau, code_int))
    plan.reverse()
    encoded = 0
    taus: list[Transformation] = []
    for (start, _seg_len), (tau, code_int) in zip(bounds, plan):
        encoded |= code_int << start
        taus.append(tau)
    return encoded, taus, best_cost


# ----------------------------------------------------------------------
# Integer bit-parallel decode
# ----------------------------------------------------------------------


@lru_cache(maxsize=1024)
def decode_suffix_table(truth_table: int, suffix_len: int) -> tuple:
    """``table[history_bit][stored_suffix] -> decoded_suffix`` for one
    transformation: the full bit-serial decode recurrence of a segment
    body (positions after the anchor/overlap bit), precomputed."""
    func = BoolFunc(truth_table)
    tables = []
    for history in (0, 1):
        row = [0] * (1 << suffix_len)
        for stored in range(1 << suffix_len):
            h = history
            out = 0
            for i in range(suffix_len):
                h = func((stored >> i) & 1, h)
                out |= h << i
            row[stored] = out
        tables.append(tuple(row))
    return tuple(tables)


def decode_plan_int(
    encoded_int: int,
    length: int,
    bounds: Sequence[tuple[int, int]],
    transformations: Sequence[Transformation],
    overlapped: bool = True,
) -> int:
    """Decode an integer stream from its segment bounds and tau plan.

    Mirrors the hardware protocol: the stream's first bit passes
    through; every segment body is restored from the segment's
    transformation and the one-bit history at its start (inherited for
    overlapped segments, re-anchored for disjoint ones).
    """
    if length == 0:
        return 0
    decoded = encoded_int & 1
    for (start, seg_len), transformation in zip(bounds, transformations):
        if not overlapped and start != 0:
            decoded |= ((encoded_int >> start) & 1) << start  # re-anchor
        if seg_len <= 1:
            continue
        history = (decoded >> start) & 1
        table = decode_suffix_table(
            transformation.func.truth_table, seg_len - 1
        )
        suffix = (encoded_int >> (start + 1)) & ((1 << (seg_len - 1)) - 1)
        decoded |= table[history][suffix] << (start + 1)
    return decoded
