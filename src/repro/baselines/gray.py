"""Gray-code address encoding — the classic sequential-bus baseline.

Consecutive integers differ in exactly one bit under Gray coding, so a
perfectly sequential word-address stream toggles one line per fetch.
"""

from __future__ import annotations

from typing import Sequence


def gray_encode(value: int) -> int:
    """Binary-reflected Gray code of ``value``."""
    return value ^ (value >> 1)


def gray_decode(code: int) -> int:
    """Inverse of :func:`gray_encode`."""
    value = 0
    while code:
        value ^= code
        code >>= 1
    return value


def gray_transitions(addresses: Sequence[int], stride: int = 4) -> int:
    """Address-bus transitions when word indices are Gray-coded.

    Addresses are divided by ``stride`` first (word addressing), as a
    real implementation would re-encode the word index.
    """
    codes = [gray_encode(a // stride) for a in addresses]
    return sum((a ^ b).bit_count() for a, b in zip(codes, codes[1:]))
