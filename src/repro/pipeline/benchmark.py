"""Codec throughput harness: compiled fast path vs. reference solver.

Measures the hot encode/decode paths on the same workloads
``benchmarks/test_perf_components.py`` uses (a 5000-bit random stream,
a 64-word basic block; seed 1234) and reports streams/s, words/s,
bits/s and the speedup of the compiled codebook fast path over the
seed :class:`~repro.core.block_solver.BlockSolver` reference.  Results
are written to ``BENCH_codec.json`` so the performance trajectory is
tracked across PRs (CI uploads the file as an artifact; ``repro
bench`` produces it locally).

Every case cross-checks fast and reference outputs for bit-identity
before timing — a benchmark of a wrong result is meaningless.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from repro.core.program_codec import (
    decode_basic_block,
    encode_basic_block,
)
from repro.core.stream_codec import (
    StreamEncoder,
    decode_stream,
    decode_with_plan,
)
from repro.obs.report import run_metadata
from repro.obs.tracing import Tracer

#: Dedicated always-on tracer for benchmark timing: the harness must
#: measure even when process-wide observability is disabled (indeed the
#: acceptance run times the codec *with* ``repro.obs.OBS`` off), so it
#: does not share the global tracer's enable switch.
_BENCH_TRACER = Tracer(enabled=True)


@dataclass(frozen=True)
class BenchCase:
    """One fast-vs-reference measurement."""

    name: str
    unit: str  # what one "unit" is: stream, word, bit
    units_per_run: float
    reference_seconds: float
    fast_seconds: float

    @property
    def speedup(self) -> float:
        if self.fast_seconds == 0:
            return float("inf")
        return self.reference_seconds / self.fast_seconds

    @property
    def fast_per_second(self) -> float:
        if self.fast_seconds == 0:
            return float("inf")
        return self.units_per_run / self.fast_seconds

    @property
    def reference_per_second(self) -> float:
        if self.reference_seconds == 0:
            return float("inf")
        return self.units_per_run / self.reference_seconds

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "unit": self.unit,
            "units_per_run": self.units_per_run,
            "reference_seconds": self.reference_seconds,
            "fast_seconds": self.fast_seconds,
            "reference_per_second": self.reference_per_second,
            "fast_per_second": self.fast_per_second,
            "speedup": self.speedup,
        }


@dataclass
class BenchReport:
    """All cases of one harness run plus the run configuration."""

    config: dict
    cases: list[BenchCase]

    @property
    def geomean_speedup(self) -> float:
        if not self.cases:
            return 1.0
        return math.exp(
            sum(math.log(case.speedup) for case in self.cases)
            / len(self.cases)
        )

    def case(self, name: str) -> BenchCase:
        for case in self.cases:
            if case.name == name:
                return case
        raise KeyError(f"no benchmark case named {name!r}")

    def to_dict(self) -> dict:
        return {
            "generated_by": "repro.pipeline.benchmark",
            "config": self.config,
            "cases": [case.to_dict() for case in self.cases],
            "geomean_speedup": self.geomean_speedup,
        }

    def write(self, path: str | Path) -> Path:
        from repro.runtime import atomic_write_text

        path = Path(path)
        # Atomic: a crash mid-write never leaves a truncated report.
        atomic_write_text(path, json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    def format_table(self) -> str:
        header = (
            f"{'case':<24} {'ref s':>10} {'fast s':>10} "
            f"{'fast rate':>16} {'speedup':>8}"
        )
        lines = [header, "-" * len(header)]
        for case in self.cases:
            rate = f"{case.fast_per_second:,.0f} {case.unit}/s"
            lines.append(
                f"{case.name:<24} {case.reference_seconds:>10.5f} "
                f"{case.fast_seconds:>10.5f} {rate:>16} "
                f"{case.speedup:>7.1f}x"
            )
        lines.append(f"geomean speedup: {self.geomean_speedup:.1f}x")
        return "\n".join(lines)


def _best_time(
    fn: Callable[[], object], repeats: int, label: str = "bench.run"
) -> float:
    """Minimum wall time over ``repeats`` runs (the standard noise
    filter for throughput benchmarks), measured through obs spans so
    every individual repetition lands in the benchmark trace."""
    best = float("inf")
    for repeat in range(max(1, repeats)):
        with _BENCH_TRACER.span(label, repeat=repeat) as span:
            fn()
        best = min(best, span.duration)
    return best


def _trace_decode_case(
    block_size: int, repeats: int, workload_name: str = "conv2d"
) -> BenchCase:
    """Full ``decode_trace`` over a workload image: the workload's hot
    basic blocks encoded and patched into the program image exactly as
    :class:`~repro.pipeline.flow.EncodingFlow` deploys them, then the
    *actual* simulator fetch trace replayed through the decoder.  The
    reference is the same engine forced onto the per-fetch walk
    (``use_bitplane=False``); the bulk path's per-trace block
    memoization is in play, as it is in production, because a real
    trace re-fetches its hot loops."""
    from repro.cfg.graph import ControlFlowGraph
    from repro.cfg.hotspot import select_hot_blocks
    from repro.cfg.loops import find_natural_loops
    from repro.cfg.profile import profile_trace
    from repro.core.program_codec import encode_basic_blocks
    from repro.hw.bbit import BasicBlockIdentificationTable, BBITEntry
    from repro.hw.fetch_decoder import FetchDecoder
    from repro.hw.tt import TransformationTable
    from repro.sim.cpu import run_program
    from repro.workloads.registry import build_workload

    program = build_workload(workload_name).assemble()
    _cpu, trace = run_program(program)
    cfg = ControlFlowGraph.build(program)
    profile = profile_trace(cfg, trace)
    plan = select_hot_blocks(
        profile, block_size, loops=find_natural_loops(cfg)
    )
    tt = TransformationTable(max(1, plan.tt_entries_used), parity=True)
    bbit = BasicBlockIdentificationTable(
        max(1, len(plan.selected)), parity=True
    )
    image = list(program.words)
    encoded_region: set[int] = set()
    lengths = {
        start: plan.encoded_length(start, len(cfg.blocks[start]))
        for start in plan.selected
    }
    encodings = encode_basic_blocks(
        [cfg.blocks[start].words[: lengths[start]] for start in plan.selected],
        block_size,
    )
    for start, encoding in zip(plan.selected, encodings):
        length = lengths[start]
        bbit.install(
            BBITEntry(
                pc=start,
                tt_index=tt.allocate(encoding),
                num_instructions=length,
            )
        )
        first = program.index_of(start)
        for offset, word in enumerate(encoding.encoded_words):
            image[first + offset] = word
        encoded_region.update(range(start, start + 4 * length, 4))

    base = program.text_base
    fetches = list(trace)

    def _decode(use_bitplane: bool) -> list[int]:
        decoder = FetchDecoder(
            tt, bbit, block_size, encoded_region=encoded_region
        )
        return decoder.decode_trace(
            fetches,
            lambda pc: image[(pc - base) >> 2],
            use_bitplane=use_bitplane,
        )

    if _decode(True) != _decode(False):
        raise RuntimeError(
            "trace_decode: bulk bitplane walk diverged from the "
            "per-fetch walk"
        )
    return BenchCase(
        name="trace_decode",
        unit="words",
        units_per_run=len(fetches),
        reference_seconds=_best_time(
            lambda: _decode(False), repeats, "bench.trace_decode.reference"
        ),
        fast_seconds=_best_time(
            lambda: _decode(True), repeats, "bench.trace_decode.fast"
        ),
    )


def run_encoder_zoo_benchmarks(
    num_words: int = 512,
    repeats: int = 3,
    seed: int = 1234,
) -> BenchReport:
    """Encoder-zoo throughput: one case per registered backend.

    The "fast" path is the production one (``encoder.transitions``:
    encode, then count packed toggles); the "reference" is the scheme's
    independent per-transfer counter from the verify campaign.  Counts
    are cross-checked for equality before timing, so — like the codec
    harness — a run certifies correctness and throughput together.
    Written to ``BENCH_encoders.json`` by ``repro bench --encoders``;
    no speedup floor is asserted (both sides are pure Python), the file
    tracks the per-backend encode rate across PRs.
    """
    from repro.baselines.protocol import (
        make_encoder,
        reference_transitions,
        registered_schemes,
    )
    from repro.verify.generators import hot_word_stream

    words = hot_word_stream(random.Random(f"bench:{seed}"), num_words)
    cases: list[BenchCase] = []
    for scheme in registered_schemes():
        encoder = make_encoder(scheme).fit(words)
        if encoder.transitions(words) != reference_transitions(encoder, words):
            raise RuntimeError(
                f"encoder_{scheme}: fast transition count diverged from "
                "the reference counter"
            )
        name = f"encoder_{scheme.replace('-', '_')}"
        cases.append(
            BenchCase(
                name=name,
                unit="words",
                units_per_run=len(words),
                reference_seconds=_best_time(
                    lambda: reference_transitions(encoder, words),
                    repeats,
                    f"bench.{name}.reference",
                ),
                fast_seconds=_best_time(
                    lambda: encoder.transitions(words),
                    repeats,
                    f"bench.{name}.fast",
                ),
            )
        )

    meta = run_metadata(command="repro bench --encoders", seed=seed)
    config = {
        "num_words": num_words,
        "repeats": repeats,
        "seed": seed,
        "schemes": list(registered_schemes()),
        "python": meta["python"],
        "platform": meta["platform"],
        "git_sha": meta["git_sha"],
        "timestamp": meta["timestamp"],
        "timestamp_unix": meta["timestamp_unix"],
        "run_id": _BENCH_TRACER.run_id,
    }
    return BenchReport(config=config, cases=cases)


def run_codec_benchmarks(
    stream_length: int = 5000,
    num_words: int = 64,
    block_size: int = 5,
    repeats: int = 3,
    seed: int = 1234,
) -> BenchReport:
    """Run the full fast-vs-reference suite and return the report."""
    rng = random.Random(seed)
    stream = [rng.randint(0, 1) for _ in range(stream_length)]
    words = [rng.getrandbits(32) for _ in range(num_words)]
    cases: list[BenchCase] = []

    def _stream_case(name: str, strategy: str) -> None:
        fast = StreamEncoder(block_size, strategy=strategy)
        reference = StreamEncoder(
            block_size, strategy=strategy, use_codebook=False
        )
        fast_result = fast.encode(stream)  # also warms the codebook
        if fast_result != reference.encode(stream):
            raise RuntimeError(
                f"{name}: fast path diverged from the reference encoder"
            )
        cases.append(
            BenchCase(
                name=name,
                unit="streams",
                units_per_run=1,
                reference_seconds=_best_time(
                    lambda: reference.encode(stream),
                    repeats,
                    f"bench.{name}.reference",
                ),
                fast_seconds=_best_time(
                    lambda: fast.encode(stream), repeats, f"bench.{name}.fast"
                ),
            )
        )

    _stream_case("stream_encode_greedy", "greedy")
    _stream_case("stream_encode_optimal", "optimal")
    _stream_case("stream_encode_disjoint", "disjoint")

    encoding = encode_basic_block(words, block_size)
    if encoding != encode_basic_block(words, block_size, use_codebook=False):
        raise RuntimeError(
            "block_encode: fast path diverged from the reference encoder"
        )
    cases.append(
        BenchCase(
            name="block_encode_greedy",
            unit="words",
            units_per_run=num_words,
            reference_seconds=_best_time(
                lambda: encode_basic_block(
                    words, block_size, use_codebook=False
                ),
                repeats,
                "bench.block_encode_greedy.reference",
            ),
            fast_seconds=_best_time(
                lambda: encode_basic_block(words, block_size),
                repeats,
                "bench.block_encode_greedy.fast",
            ),
        )
    )

    stream_encoding = StreamEncoder(block_size).encode(stream)
    plan = stream_encoding.transformations()
    stored = list(stream_encoding.encoded)
    if decode_with_plan(stored, block_size, plan) != decode_with_plan(
        stored, block_size, plan, use_tables=False
    ):
        raise RuntimeError(
            "decode_with_plan: table decode diverged from the reference"
        )
    cases.append(
        BenchCase(
            name="stream_decode_plan",
            unit="bits",
            units_per_run=stream_length,
            reference_seconds=_best_time(
                lambda: decode_with_plan(
                    stored, block_size, plan, use_tables=False
                ),
                repeats,
                "bench.stream_decode_plan.reference",
            ),
            fast_seconds=_best_time(
                lambda: decode_with_plan(stored, block_size, plan),
                repeats,
                "bench.stream_decode_plan.fast",
            ),
        )
    )

    if decode_basic_block(encoding) != decode_basic_block(
        encoding, use_tables=False
    ):
        raise RuntimeError(
            "block_decode: table decode diverged from the reference"
        )
    cases.append(
        BenchCase(
            name="block_decode",
            unit="words",
            units_per_run=num_words,
            reference_seconds=_best_time(
                lambda: decode_basic_block(encoding, use_tables=False),
                repeats,
                "bench.block_decode.reference",
            ),
            fast_seconds=_best_time(
                lambda: decode_basic_block(encoding),
                repeats,
                "bench.block_decode.fast",
            ),
        )
    )

    # Per-path decode cases: the same encoded stream through each
    # scalar decoder as its own reference, with the bitplane doubling
    # scan as the fast path, so BENCH_codec.json tracks the decode
    # trajectory per-path (not just the plan aggregate above).
    decoded_bitplane = decode_stream(stream_encoding)
    if decoded_bitplane != stream or decoded_bitplane != decode_stream(
        stream_encoding, use_bitplane=False
    ):
        raise RuntimeError(
            "stream_decode_table: bitplane decode diverged from the "
            "suffix-table decode"
        )
    if decoded_bitplane != decode_stream(stream_encoding, use_tables=False):
        raise RuntimeError(
            "stream_decode_serial: bitplane decode diverged from the "
            "bit-serial decode"
        )
    cases.append(
        BenchCase(
            name="stream_decode_table",
            unit="bits",
            units_per_run=stream_length,
            reference_seconds=_best_time(
                lambda: decode_stream(stream_encoding, use_bitplane=False),
                repeats,
                "bench.stream_decode_table.reference",
            ),
            fast_seconds=_best_time(
                lambda: decode_stream(stream_encoding),
                repeats,
                "bench.stream_decode_table.fast",
            ),
        )
    )
    cases.append(
        BenchCase(
            name="stream_decode_serial",
            unit="bits",
            units_per_run=stream_length,
            reference_seconds=_best_time(
                lambda: decode_stream(stream_encoding, use_tables=False),
                repeats,
                "bench.stream_decode_serial.reference",
            ),
            fast_seconds=_best_time(
                lambda: decode_stream(stream_encoding),
                repeats,
                "bench.stream_decode_serial.fast",
            ),
        )
    )

    cases.append(_trace_decode_case(block_size, repeats))

    # Provenance stamp (git SHA, platform, timestamp, run id) so
    # BENCH_codec.json files are comparable across PRs and machines.
    meta = run_metadata(command="repro bench", seed=seed)
    config = {
        "stream_length": stream_length,
        "num_words": num_words,
        "block_size": block_size,
        "repeats": repeats,
        "seed": seed,
        "python": meta["python"],
        "platform": meta["platform"],
        "git_sha": meta["git_sha"],
        "timestamp": meta["timestamp"],
        "timestamp_unix": meta["timestamp_unix"],
        "run_id": _BENCH_TRACER.run_id,
    }
    return BenchReport(config=config, cases=cases)


def workload_encode_benchmark(
    workload_name: str = "mmul",
    block_size: int = 5,
    parallel: int | None = None,
    repeats: int = 1,
) -> dict:
    """Whole-program encode timing on a real workload (serial vs
    ``parallel=N`` process fan-out).  Heavier than the codec cases;
    not part of the default report."""
    from repro.pipeline.flow import EncodingFlow
    from repro.sim.cpu import run_program
    from repro.workloads.registry import build_workload

    workload = build_workload(workload_name)
    program = workload.assemble()
    _cpu, trace = run_program(program)
    serial = _best_time(
        lambda: EncodingFlow(block_size=block_size, verify_decode=False).run(
            program, trace, workload_name
        ),
        repeats,
    )
    result = {"workload": workload_name, "serial_seconds": serial}
    if parallel and parallel > 1:
        result["parallel_workers"] = parallel
        result["parallel_seconds"] = _best_time(
            lambda: EncodingFlow(
                block_size=block_size,
                verify_decode=False,
                parallel=parallel,
            ).run(program, trace, workload_name),
            repeats,
        )
    return result
