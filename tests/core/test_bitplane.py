"""Property tests for the packed-bitplane decode core.

The bitplane module re-implements three scalar decode paths (stream,
plan, block) as parallel-prefix doubling scans; these tests pin the
scans to the scalar references bit-for-bit across seeded streams,
hypothesis-drawn inputs, every block size the paper studies (k=2..7),
boundary/tail lengths, and both scan backends — plus the packing
bridges (``pack_validated``/``bits_list``/``transpose_words``) and
the forced no-numpy import fallback.
"""

from __future__ import annotations

import builtins
import importlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bitplane
from repro.core.fastpath import decode_plan_int
from repro.core.bitstream import pack_bits
from repro.core.program_codec import decode_basic_block, encode_basic_block
from repro.core.stream_codec import (
    decode_stream,
    decode_with_plan,
    encode_stream,
    segment_bounds,
)
from tests.strategies import (
    bit_streams,
    hw_block_sizes,
    instruction_words,
    seeded_burst,
    seeded_stream,
    seeded_words,
)

ALL_BACKENDS = bitplane.available_backends()


# ----------------------------------------------------------------------
# Packing bridges
# ----------------------------------------------------------------------


class TestPackValidated:
    @given(bit_streams)
    def test_matches_pack_bits(self, stream):
        packed, length = bitplane.pack_validated(stream)
        assert packed == pack_bits(stream)
        assert length == len(stream)

    @given(bit_streams)
    def test_bits_list_roundtrip(self, stream):
        packed, length = bitplane.pack_validated(stream)
        assert bitplane.bits_list(packed, length) == stream

    def test_accepts_any_iterable(self):
        packed, length = bitplane.pack_validated(iter([1, 0, 1, 1]))
        assert (packed, length) == (0b1101, 4)

    def test_empty(self):
        assert bitplane.pack_validated([]) == (0, 0)
        assert bitplane.bits_list(0, 0) == []

    def test_rejects_out_of_range_int(self):
        # Same canonical message as bitstream.validate_bits.
        with pytest.raises(ValueError, match="must be 0 or 1, got 2"):
            bitplane.pack_validated([0, 1, 2])

    def test_rejects_negative_int(self):
        with pytest.raises(ValueError, match="must be 0 or 1, got -1"):
            bitplane.pack_validated([0, -1])

    def test_rejects_non_int(self):
        with pytest.raises(ValueError, match="must be 0 or 1, got 'x'"):
            bitplane.pack_validated([0, "x", 1])

    def test_accepts_bool_like_scalar_paths(self):
        # validate_bits accepts True/False (== 1/0); so must the
        # packed fast path.
        packed, length = bitplane.pack_validated([True, False, True])
        assert (packed, length) == (0b101, 3)


class TestTranspose:
    @given(instruction_words)
    def test_roundtrip(self, words):
        packed = bitplane.transpose_words(words)
        assert bitplane.untranspose_words(packed, len(words)) == words

    @given(instruction_words)
    def test_lane_layout(self, words):
        # Bit L*n+t of the packed operand is bit L of words[t].
        n = len(words)
        packed = bitplane.transpose_words(words)
        for lane in (0, 1, 31):
            for t in (0, n - 1):
                assert (packed >> (lane * n + t)) & 1 == (
                    words[t] >> lane
                ) & 1

    def test_empty(self):
        assert bitplane.transpose_words([]) == 0
        assert bitplane.untranspose_words(0, 0) == []

    @given(
        st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=9)
    )
    def test_narrow_width(self, words):
        # The non-32 width takes the pure-Python path even with numpy.
        packed = bitplane.transpose_words(words, width=8)
        assert bitplane.untranspose_words(packed, len(words), width=8) == words


# ----------------------------------------------------------------------
# The doubling scan vs the literal recurrence
# ----------------------------------------------------------------------


class TestSolveFirstOrder:
    @given(
        st.integers(min_value=0, max_value=(1 << 200) - 1),
        st.integers(min_value=0, max_value=(1 << 200) - 1),
        st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=200)
    def test_matches_sequential_recurrence(self, coeff, const, nbits):
        expected = 0
        prev = 0
        for p in range(nbits):
            bit = ((const >> p) & 1) ^ (((coeff >> p) & 1) & prev)
            expected |= bit << p
            prev = bit
        for backend in ALL_BACKENDS:
            assert (
                bitplane.solve_first_order(coeff, const, nbits, backend)
                == expected
            ), backend

    def test_zero_length(self):
        assert bitplane.solve_first_order(123, 456, 0) == 0

    def test_backend_selection(self):
        original = bitplane.get_backend()
        try:
            for backend in ALL_BACKENDS:
                bitplane.set_backend(backend)
                assert bitplane.get_backend() == backend
        finally:
            bitplane.set_backend(original)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown bitplane backend"):
            bitplane.set_backend("simd512")


# ----------------------------------------------------------------------
# Stream/plan decode vs the scalar paths
# ----------------------------------------------------------------------


class TestPlanDecode:
    @given(bit_streams, hw_block_sizes)
    @settings(max_examples=200)
    def test_matches_scalar_plan_decode(self, stream, block_size):
        encoding = encode_stream(stream, block_size)
        plan = encoding.transformations()
        packed, length = bitplane.pack_validated(encoding.encoded)
        bounds = tuple(segment_bounds(length, block_size))
        scalar = decode_plan_int(packed, length, bounds, plan)
        for backend in ALL_BACKENDS:
            assert (
                bitplane.decode_plan_bitplane(
                    packed, length, bounds, plan, backend=backend
                )
                == scalar
            ), backend

    @given(bit_streams, hw_block_sizes)
    @settings(max_examples=150)
    def test_disjoint_reanchoring(self, stream, block_size):
        encoding = encode_stream(stream, block_size, strategy="disjoint")
        plan = encoding.transformations()
        packed, length = bitplane.pack_validated(encoding.encoded)
        bounds = tuple(segment_bounds(length, block_size, overlapped=False))
        scalar = decode_plan_int(packed, length, bounds, plan, overlapped=False)
        assert (
            bitplane.decode_plan_bitplane(
                packed, length, bounds, plan, overlapped=False
            )
            == scalar
        )
        assert bitplane.bits_list(scalar, length) == stream

    @pytest.mark.parametrize("block_size", range(2, 8))
    def test_boundary_and_tail_lengths(self, block_size):
        # Lengths 1..3k sweep every tail-residue class: exact multiples
        # of the segment stride, one-over, and sub-block streams.
        for length in range(1, 3 * block_size + 1):
            for seed_kind, stream in (
                ("biased", seeded_stream(f"tail:{block_size}:{length}", length)),
                ("burst", seeded_burst(f"tail:{block_size}:{length}", length)),
            ):
                for strategy in ("greedy", "optimal", "disjoint"):
                    encoding = encode_stream(
                        stream, block_size, strategy=strategy
                    )
                    assert decode_stream(encoding) == stream, (
                        seed_kind,
                        strategy,
                        length,
                    )

    @pytest.mark.parametrize("block_size", range(4, 8))
    def test_seeded_long_streams_all_paths_agree(self, block_size):
        for seed in range(6):
            stream = (
                seeded_stream(f"long:{block_size}:{seed}", 800, bias=0.7)
                if seed % 2
                else seeded_burst(f"long:{block_size}:{seed}", 800)
            )
            encoding = encode_stream(stream, block_size)
            assert decode_stream(encoding) == stream  # bitplane default
            assert decode_stream(encoding, use_bitplane=False) == stream
            assert decode_stream(encoding, use_tables=False) == stream
            plan = encoding.transformations()
            stored = list(encoding.encoded)
            assert decode_with_plan(stored, block_size, plan) == stream
            assert (
                decode_with_plan(stored, block_size, plan, use_bitplane=False)
                == stream
            )


class TestBlockDecode:
    @given(instruction_words, hw_block_sizes)
    @settings(max_examples=150, deadline=None)
    def test_matches_scalar_block_decode(self, words, block_size):
        encoding = encode_basic_block(words, block_size)
        scalar = decode_basic_block(encoding, use_bitplane=False)
        assert scalar == words
        for backend in ALL_BACKENDS:
            plans = tuple(
                tuple(t.func.truth_table for t in plan)
                for plan in encoding.segment_plans
            )
            bounds = tuple(segment_bounds(len(words), block_size))
            assert (
                bitplane.decode_block_bitplane(
                    encoding.encoded_words,
                    bounds,
                    plans,
                    width=encoding.width,
                    backend=backend,
                )
                == words
            ), backend

    @pytest.mark.parametrize("block_size", range(2, 8))
    def test_seeded_blocks_boundary_sizes(self, block_size):
        # Block lengths straddling the segment stride, including the
        # single-word block (pure anchors, no TT row).
        for count in (1, 2, block_size - 1, block_size, block_size + 1, 3 * block_size):
            words = seeded_words(f"block:{block_size}:{count}", count)
            encoding = encode_basic_block(words, block_size)
            assert decode_basic_block(encoding) == words
            assert decode_basic_block(encoding, use_bitplane=False) == words
            assert decode_basic_block(encoding, use_tables=False) == words


# ----------------------------------------------------------------------
# Forced no-numpy fallback
# ----------------------------------------------------------------------


def test_module_without_numpy(monkeypatch):
    """Reload the module with ``import numpy`` failing: the bigint
    backend must stand alone and the format-string transpose must
    replace the packbits one, bit-for-bit."""
    real_import = builtins.__import__

    def no_numpy(name, *args, **kwargs):
        if name == "numpy":
            raise ImportError("numpy disabled for this test")
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(builtins, "__import__", no_numpy)
    try:
        importlib.reload(bitplane)
        assert bitplane.available_backends() == ("bigint",)
        assert bitplane.get_backend() == "bigint"
        with pytest.raises(ValueError):
            bitplane.set_backend("numpy")

        words = seeded_words("no-numpy", 17)
        packed = bitplane.transpose_words(words)
        assert bitplane.untranspose_words(packed, len(words)) == words

        stream = seeded_stream("no-numpy", 200)
        for block_size in (2, 5, 7):
            encoding = encode_stream(stream, block_size)
            assert decode_stream(encoding) == stream
            words = seeded_words(f"no-numpy:{block_size}", 11)
            block = encode_basic_block(words, block_size)
            assert decode_basic_block(block) == words
    finally:
        monkeypatch.setattr(builtins, "__import__", real_import)
        importlib.reload(bitplane)

    # Restored module must expose numpy again if the environment has it.
    try:
        import numpy  # noqa: F401
    except ImportError:
        pass
    else:
        assert "numpy" in bitplane.available_backends()


def test_transpose_fallback_matches_numpy_path():
    """The format-string transpose and the packbits transpose are the
    same function observably — cross-check them directly."""
    numpy = pytest.importorskip("numpy")
    del numpy
    for seed in range(5):
        words = seeded_words(f"xpose:{seed}", 3 + 7 * seed)
        fast = bitplane.transpose_words(words)
        rows = [format(w, "032b") for w in words]
        slow = int(
            "".join(
                column[::-1]
                for column in ("".join(c) for c in zip(*rows))
            ),
            2,
        )
        assert fast == slow
