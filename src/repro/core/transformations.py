"""Transformation sets: the full 16-function space and the paper's
optimal 8-function subset (Section 5.2).

The paper states that a unique subset of eight transformations
achieves, for every block size up to seven, exactly the same minimal
transition counts as the unrestricted 16-function space, so a 3-bit
selector per block per bus line suffices (Figure 5a).  Our
reproduction confirms the operative claim — :data:`OPTIMAL_SET` below
matches the full 16-function optimum for every anchored block word of
size <= 7, and generates Figures 2 and 4 character-for-character — with
two sharper findings recorded in EXPERIMENTS.md:

* only **seven** functions are ever chosen by the optimal anchored
  codebooks (identity, ~x, ~y, XOR, XNOR, NOR, NAND; ~y is self-dual),
  and a minimal hitting-set search (:func:`find_minimal_optimal_sets`)
  shows **six** already suffice ({x, ~x, XOR, XNOR, NOR, NAND});
* in the overlap-constrained setting of Section 6, the 8-set is
  beaten by one transition in 12 of 504 (word, inherited-bit) cases by
  ``x|~y`` / ``x&~y`` — the source of the small deviations from the
  theoretical 50% the paper itself reports.

:data:`OPTIMAL_SET` completes the used functions to eight with the
history passthrough ``y`` so the 3-bit selector space is fully and
duality-closed populated::

    identity (x), inversion (~x), history (y), inverted history (~y),
    XOR, XNOR, NOR, NAND
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core.boolfunc import (
    TT_NAND,
    TT_NOR,
    TT_NOT_X,
    TT_NOT_Y,
    TT_X,
    TT_XNOR,
    TT_XOR,
    TT_Y,
    BoolFunc,
    all_functions,
    dual,
)


@dataclass(frozen=True)
class Transformation:
    """A decode transformation: a named boolean function plus the
    3-bit hardware selector used in Transformation Table entries.

    ``selector`` is ``None`` for functions outside the optimal 8-set
    (they cannot be encoded in TT entries).
    """

    func: BoolFunc
    selector: int | None = field(default=None, compare=False)

    def __call__(self, stored_bit: int, history_bit: int) -> int:
        return self.func(stored_bit, history_bit)

    @property
    def name(self) -> str:
        return self.func.name

    @property
    def is_identity(self) -> bool:
        return self.func.truth_table == TT_X

    def dual(self) -> "Transformation":
        """The global-inversion dual transformation (Section 5.2)."""
        return lookup(dual(self.func).truth_table)

    def __repr__(self) -> str:
        return f"Transformation({self.name!r})"


# Selector assignment for the optimal 8-set.  The order is chosen so
# that selector 0 is the identity (the safe default: a TT entry of all
# zeros decodes any block unchanged, which is also how the paper's
# "infrequent basic block" entries behave).
_OPTIMAL_TTS: tuple[int, ...] = (
    TT_X,
    TT_NOT_X,
    TT_Y,
    TT_NOT_Y,
    TT_XOR,
    TT_XNOR,
    TT_NOR,
    TT_NAND,
)

#: The paper's eight optimal transformations, selector order.
OPTIMAL_SET: tuple[Transformation, ...] = tuple(
    Transformation(BoolFunc(tt), selector=i) for i, tt in enumerate(_OPTIMAL_TTS)
)

#: All sixteen transformations.  The optimal 8-set comes first (in
#: selector order) so that solvers iterating in sequence break ties in
#: favour of hardware-implementable transformations — this also makes
#: the generated codebooks line up with the paper's Figure 2/4 tau
#: choices (identity preferred, then inversion, history, ...).
ALL_TRANSFORMATIONS: tuple[Transformation, ...] = OPTIMAL_SET + tuple(
    Transformation(f, selector=None)
    for f in all_functions()
    if f.truth_table not in _OPTIMAL_TTS
)

#: The identity transformation (selector 0): decode passes the stored
#: bit through unchanged, guaranteeing the encoded program is never
#: worse than the original.
IDENTITY: Transformation = OPTIMAL_SET[0]

_BY_TT = {t.func.truth_table: t for t in ALL_TRANSFORMATIONS}
_BY_NAME = {t.name: t for t in ALL_TRANSFORMATIONS}
_BY_SELECTOR = {t.selector: t for t in OPTIMAL_SET}


def lookup(truth_table: int) -> Transformation:
    """Find the canonical :class:`Transformation` for a truth table."""
    return _BY_TT[truth_table]


def by_name(name: str) -> Transformation:
    """Find a transformation by its short algebraic name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown transformation {name!r}; valid: {sorted(_BY_NAME)}"
        ) from None


def by_selector(selector: int) -> Transformation:
    """Find an optimal-set transformation by its 3-bit selector."""
    try:
        return _BY_SELECTOR[selector]
    except KeyError:
        raise KeyError(f"selector must be in [0, 8), got {selector}") from None


def is_closed_under_duality(transformations: tuple[Transformation, ...]) -> bool:
    """True if the set maps to itself under global inversion."""
    tables = {t.func.truth_table for t in transformations}
    return all(dual(BoolFunc(tt)).truth_table in tables for tt in tables)


def find_minimal_optimal_sets(
    max_block_size: int = 7,
    *,
    require_identity: bool = True,
) -> list[tuple[Transformation, ...]]:
    """Search for the smallest transformation subsets that achieve the
    unrestricted optimum for every block word of every size up to
    ``max_block_size``.

    Probes the Section 5.2 claim.  Measured result: the unique minimal
    hitting set has *six* functions ({x, ~x, XOR, XNOR, NOR, NAND}),
    a subset of the paper's eight — see the module docstring.

    The search is a minimal hitting-set computation: for each block
    word we collect the transformations able to reach that word's
    optimal transition count (``achievers``); a candidate subset is
    valid iff it intersects every achiever set.  ``require_identity``
    keeps the identity in every candidate (the paper relies on it as
    the no-worse-than-original fallback).
    """
    # Imported here to avoid a circular import at module load time.
    from repro.core.block_solver import BlockSolver

    solver = BlockSolver(ALL_TRANSFORMATIONS)
    achiever_sets: list[frozenset[int]] = []
    for size in range(2, max_block_size + 1):
        for word_bits in itertools.product((0, 1), repeat=size):
            word = list(word_bits)
            achievers = solver.optimal_achievers(word)
            achiever_sets.append(
                frozenset(t.func.truth_table for t in achievers)
            )

    universe = sorted(set().union(*achiever_sets))
    mandatory: set[int] = set()
    if require_identity:
        mandatory = {IDENTITY.func.truth_table}

    # Drop sets already hit by the mandatory elements and search by
    # increasing subset size over the remaining universe.
    remaining = [s for s in achiever_sets if not (s & mandatory)]
    pool = [tt for tt in universe if tt not in mandatory]
    for extra in range(len(pool) + 1):
        found: list[tuple[Transformation, ...]] = []
        for combo in itertools.combinations(pool, extra):
            chosen = mandatory | set(combo)
            if all(s & chosen for s in remaining):
                found.append(
                    tuple(sorted((lookup(tt) for tt in chosen), key=lambda t: t.func.truth_table))
                )
        if found:
            return found
    return []
