"""A MIPS-like 32-bit instruction set architecture.

This is the reproduction's substitute for the SimpleScalar PISA
toolchain the paper used: a classic fixed-width RISC encoding (R/I/J
formats plus a COP1 floating-point subset), a two-pass assembler with
the usual pseudo-instructions, and a disassembler.  The bit-level field
layout follows MIPS I so the instruction words carry the realistic
vertical correlations (stable opcode fields, slowly varying register
and immediate fields) that the paper's encoding exploits.

Deliberate simplifications relative to real MIPS (documented in
DESIGN.md): no branch delay slots, and each even-numbered FP register
conceptually holds a full double (the simulator keeps one value per
architectural register).
"""

from repro.isa.registers import REG_NAMES, reg_name, reg_num
from repro.isa.opcodes import SPECS_BY_NAME, InstructionSpec
from repro.isa.instruction import Instruction, decode_word, encode_fields
from repro.isa.assembler import AssemblerError, Program, assemble
from repro.isa.disassembler import disassemble, disassemble_word

__all__ = [
    "REG_NAMES",
    "reg_name",
    "reg_num",
    "SPECS_BY_NAME",
    "InstructionSpec",
    "Instruction",
    "decode_word",
    "encode_fields",
    "AssemblerError",
    "Program",
    "assemble",
    "disassemble",
    "disassemble_word",
]
