"""Fault-injection campaign subsystem.

Proves — systematically, per fault model, under a pinned seed — which
corruptions of the decode/deploy path the hardened implementation
detects or recovers from, and which would slip through silently.  See
``docs/robustness.md`` for the taxonomy and guarantees, and ``repro
faults`` for the CLI entry point.

``models``
    Composable, deterministic injectors for TT/BBIT corruption,
    encoded-image bit flips, and fetch-protocol violations.
``campaign``
    The sweep runner (models x workloads x trials x decoder modes)
    with optional worker processes, per-case timeouts, and a
    downgrade-to-serial failure mode.
``report``
    Outcome classification, per-model detection-rate tables, and the
    ``FAULTS_report.json`` writer.
``storage``
    The ALICE-style crash-consistency checker over the *durability*
    surfaces (WAL, atomic report writes, disk cache, flight dumps):
    record the syscall trace, simulate a crash at every prefix, replay
    recovery, assert no acknowledged state is lost (``repro faults
    --storage``).
"""

from repro.faults.campaign import (
    CampaignConfig,
    DeploymentTarget,
    case_key,
    run_campaign,
    run_case,
)
from repro.faults.models import (
    DEFAULT_MODELS,
    MODELS_BY_NAME,
    FaultModel,
    RunState,
    SchemeTagCorruption,
)
from repro.faults.report import CaseResult, FaultCampaignReport
from repro.faults.storage import (
    MemoryVFS,
    StorageCampaignReport,
    run_storage_campaign,
    storage_report_problems,
)

__all__ = [
    "CampaignConfig",
    "DeploymentTarget",
    "case_key",
    "run_campaign",
    "run_case",
    "DEFAULT_MODELS",
    "MODELS_BY_NAME",
    "FaultModel",
    "RunState",
    "SchemeTagCorruption",
    "CaseResult",
    "FaultCampaignReport",
    "MemoryVFS",
    "StorageCampaignReport",
    "run_storage_campaign",
    "storage_report_problems",
]
