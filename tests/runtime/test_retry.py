"""BackoffPolicy / retry_call / CircuitBreaker tests — all timing is
seeded and injected, so nothing here sleeps for real."""

import pytest

from repro.runtime import BackoffPolicy, CircuitBreaker, retry_call


class TestBackoffPolicy:
    def test_delays_are_deterministic_per_seed(self):
        policy = BackoffPolicy(base=0.1, factor=2.0, cap=5.0)
        first = [policy.delay(n, seed="case:7") for n in range(4)]
        second = [policy.delay(n, seed="case:7") for n in range(4)]
        assert first == second

    def test_different_seeds_decorrelate(self):
        policy = BackoffPolicy()
        assert [policy.delay(n, "a") for n in range(3)] != [
            policy.delay(n, "b") for n in range(3)
        ]

    def test_delay_bounded_by_exponential_ceiling(self):
        policy = BackoffPolicy(base=0.1, factor=2.0, cap=0.35)
        for attempt in range(6):
            ceiling = min(0.35, 0.1 * 2.0**attempt)
            delay = policy.delay(attempt, seed="x")
            assert 0 <= delay < ceiling

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base=-1.0)
        with pytest.raises(ValueError):
            BackoffPolicy(factor=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(max_attempts=0)


class TestRetryCall:
    def test_succeeds_after_transient_failures(self):
        calls = {"n": 0}
        slept = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        result = retry_call(
            flaky,
            policy=BackoffPolicy(max_attempts=3),
            seed="s",
            retry_on=(OSError,),
            sleep=slept.append,
        )
        assert result == "ok"
        assert calls["n"] == 3
        assert len(slept) == 2

    def test_final_failure_propagates(self):
        def always_fails():
            raise OSError("still broken")

        with pytest.raises(OSError, match="still broken"):
            retry_call(
                always_fails,
                policy=BackoffPolicy(max_attempts=2),
                retry_on=(OSError,),
                sleep=lambda _: None,
            )

    def test_unmatched_exception_is_not_retried(self):
        calls = {"n": 0}

        def wrong_kind():
            calls["n"] += 1
            raise KeyError("not transient")

        with pytest.raises(KeyError):
            retry_call(
                wrong_kind,
                policy=BackoffPolicy(max_attempts=5),
                retry_on=(OSError,),
                sleep=lambda _: None,
            )
        assert calls["n"] == 1

    def test_on_retry_hook_sees_each_attempt(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise ValueError("again")
            return 1

        retry_call(
            flaky,
            policy=BackoffPolicy(max_attempts=3),
            seed="hook",
            retry_on=(ValueError,),
            sleep=lambda _: None,
            on_retry=lambda attempt, delay, err: seen.append(
                (attempt, type(err).__name__)
            ),
        )
        assert seen == [(0, "ValueError"), (1, "ValueError")]

    def test_sleep_schedule_is_reproducible(self):
        def run_once():
            slept = []
            calls = {"n": 0}

            def flaky():
                calls["n"] += 1
                if calls["n"] < 4:
                    raise OSError()
                return None

            retry_call(
                flaky,
                policy=BackoffPolicy(max_attempts=4),
                seed="sched",
                retry_on=(OSError,),
                sleep=slept.append,
            )
            return slept

        assert run_once() == run_once()


class TestCircuitBreaker:
    def test_trips_on_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3)
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        assert breaker.record_failure()  # the tripping one
        assert breaker.tripped

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        assert not breaker.record_failure()
        assert not breaker.tripped
        assert breaker.failures_total == 2

    def test_trip_reported_only_once(self):
        breaker = CircuitBreaker(threshold=1)
        assert breaker.record_failure()
        assert not breaker.record_failure()
        assert breaker.tripped

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            CircuitBreaker(threshold=0)
