"""SEC-DED codewords for the decode tables.

The ASIC follow-on work treats table integrity as a first-class
hardware concern: a flipped selector or a stale BBIT field silently
yields wrong instructions, because the decoder has no other way to
tell a corrupted table from a reprogrammed one.  The original defence
here was a per-row parity word (detection only); this module upgrades
it to the scheme real table SRAMs ship with — **SEC-DED**: an extended
Hamming code (single-error *correction*, double-error *detection*)
over every stored field of a row, plus one overall parity bit.

Layout
------

Each row serialises its fields into one data word (LSB-first, field
by field):

* TT row:   ``width`` 3-bit selectors, the E bit, a 32-bit CT field.
* BBIT row: 64-bit PC (the CAM tag), 32-bit TT index, 32-bit length.

For ``m`` data bits the codeword adds ``r`` Hamming check bits
(``2**r >= m + r + 1``) in the classic power-of-two positions of a
1-indexed codeword, plus the overall parity bit — 9 check bits for
both row formats.  The check bits are stored *beside* the row (the
extra SRAM column), exactly like the parity word they replace.

Decoding a row against its stored check word yields one of three
outcomes:

``clean``
    Codeword consistent; the row is served as stored.
``corrected``
    Exactly one bit (data *or* check) flipped; the corrected data is
    returned and the caller repairs the row in place.
``uncorrectable``
    A double-bit error (non-zero syndrome, even overall parity): the
    row cannot be trusted and must be quarantined.

Like every SEC-DED implementation, three or more flipped bits may
alias to a "correctable" single-bit pattern — the guarantee covers
one- and two-bit upsets, which is the standard soft-error budget the
scrubber's sweep cadence is provisioned against.

The legacy FNV-1a fold is kept (:func:`fold_words`) for callers that
only need a cheap detection word.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Sequence

_FNV_OFFSET = 0x811C9DC5
_FNV_PRIME = 0x01000193
_MASK32 = 0xFFFFFFFF

#: Serialised field widths (bits).
TT_SELECTOR_BITS = 3
TT_COUNT_BITS = 32
BBIT_PC_BITS = 64
BBIT_INDEX_BITS = 32
BBIT_LENGTH_BITS = 32

CLEAN = "clean"
CORRECTED = "corrected"
UNCORRECTABLE = "uncorrectable"


def fold_words(values: Iterable[int]) -> int:
    """FNV-1a over a field sequence; order- and position-sensitive.

    Legacy detection-only digest (the pre-SEC-DED parity word)."""
    acc = _FNV_OFFSET
    for value in values:
        acc = ((acc ^ (value & _MASK32)) * _FNV_PRIME) & _MASK32
        # Wider-than-32-bit fields (PCs on a 64-bit host) fold their
        # high halves too, so no corruption hides above bit 31.
        high = value >> 32
        if high:
            acc = ((acc ^ (high & _MASK32)) * _FNV_PRIME) & _MASK32
    return acc


# ----------------------------------------------------------------------
# Extended Hamming (SEC-DED)
# ----------------------------------------------------------------------


@lru_cache(maxsize=8)
def _layout(m: int) -> tuple[int, tuple[int, ...]]:
    """For ``m`` data bits: the check-bit count ``r`` and the codeword
    position of every data bit (1-indexed; powers of two are check
    positions)."""
    r = 0
    while (1 << r) < m + r + 1:
        r += 1
    positions = []
    pos = 1
    while len(positions) < m:
        if pos & (pos - 1):  # not a power of two -> data position
            positions.append(pos)
        pos += 1
    return r, tuple(positions)


def secded_check_bits(m: int) -> int:
    """Stored check-word width for ``m`` data bits (Hamming bits plus
    the overall parity bit)."""
    return _layout(m)[0] + 1


def secded_encode(data: int, m: int) -> int:
    """Check word for ``m`` data bits: ``r`` Hamming bits in the low
    bits (bit ``j`` covers codeword positions with bit ``j`` set) and
    the overall parity bit at bit ``r`` (even parity over the whole
    codeword)."""
    r, positions = _layout(m)
    syndrome = 0
    ones = 0
    for i in range(m):
        if (data >> i) & 1:
            syndrome ^= positions[i]
            ones ^= 1
    # Each Hamming bit makes its coverage class even, so the encoded
    # syndrome of the full codeword is zero.
    check = syndrome
    for j in range(r):
        if (syndrome >> j) & 1:
            ones ^= 1
    return check | (ones << r)


def secded_decode(data: int, m: int, check: int) -> tuple[str, int, int]:
    """Validate ``data`` against its stored ``check`` word.

    Returns ``(status, corrected_data, corrected_check)`` where status
    is :data:`CLEAN`, :data:`CORRECTED` (single-bit error fixed — in
    the data or in the check word itself) or :data:`UNCORRECTABLE`
    (double-bit error)."""
    r, positions = _layout(m)
    stored_hamming = check & ((1 << r) - 1)
    stored_overall = (check >> r) & 1
    syndrome = 0
    ones = stored_overall
    for i in range(m):
        if (data >> i) & 1:
            syndrome ^= positions[i]
            ones ^= 1
    for j in range(r):
        if (stored_hamming >> j) & 1:
            syndrome ^= 1 << j
            ones ^= 1
    if syndrome == 0 and ones == 0:
        return CLEAN, data, check
    if ones == 1:
        # Odd overall parity: a single-bit error at position
        # ``syndrome`` (0 means the overall parity bit itself).
        if syndrome == 0:
            return CORRECTED, data, check ^ (1 << r)
        if syndrome & (syndrome - 1) == 0:
            # A Hamming check bit flipped; the data is intact.
            bit = syndrome.bit_length() - 1
            return CORRECTED, data, check ^ (1 << bit)
        try:
            index = positions.index(syndrome)
        except ValueError:
            # Syndrome points past the codeword: >= 3 bits flipped.
            return UNCORRECTABLE, data, check
        return CORRECTED, data ^ (1 << index), check
    # Even overall parity with a non-zero syndrome: two bits flipped.
    return UNCORRECTABLE, data, check


# ----------------------------------------------------------------------
# Row serialisation
# ----------------------------------------------------------------------


def tt_row_bits(width: int) -> int:
    """Serialised TT-row width: ``width`` selectors, E, CT."""
    return TT_SELECTOR_BITS * width + 1 + TT_COUNT_BITS


def tt_row_data(selectors: Sequence[int], end: bool, count: int) -> int:
    """Pack one TT row's stored fields into a data word, LSB-first."""
    data = 0
    shift = 0
    for selector in selectors:
        data |= (selector & 0b111) << shift
        shift += TT_SELECTOR_BITS
    data |= (1 if end else 0) << shift
    shift += 1
    data |= (count & ((1 << TT_COUNT_BITS) - 1)) << shift
    return data


def tt_row_fields(data: int, width: int) -> tuple[tuple[int, ...], bool, int]:
    """Unpack :func:`tt_row_data` back into ``(selectors, end, count)``."""
    selectors = []
    shift = 0
    for _ in range(width):
        selectors.append((data >> shift) & 0b111)
        shift += TT_SELECTOR_BITS
    end = bool((data >> shift) & 1)
    shift += 1
    count = (data >> shift) & ((1 << TT_COUNT_BITS) - 1)
    return tuple(selectors), end, count


def tt_row_ecc(selectors: Sequence[int], end: bool, count: int) -> int:
    """SEC-DED check word over every stored field of one TT row."""
    return secded_encode(
        tt_row_data(selectors, end, count), tt_row_bits(len(selectors))
    )


def bbit_row_bits() -> int:
    return BBIT_PC_BITS + BBIT_INDEX_BITS + BBIT_LENGTH_BITS


def bbit_row_data(pc: int, tt_index: int, num_instructions: int) -> int:
    """Pack one BBIT row (including the CAM tag) into a data word."""
    data = pc & ((1 << BBIT_PC_BITS) - 1)
    data |= (tt_index & ((1 << BBIT_INDEX_BITS) - 1)) << BBIT_PC_BITS
    data |= (num_instructions & ((1 << BBIT_LENGTH_BITS) - 1)) << (
        BBIT_PC_BITS + BBIT_INDEX_BITS
    )
    return data


def bbit_row_fields(data: int) -> tuple[int, int, int]:
    """Unpack :func:`bbit_row_data` into ``(pc, tt_index, length)``."""
    pc = data & ((1 << BBIT_PC_BITS) - 1)
    tt_index = (data >> BBIT_PC_BITS) & ((1 << BBIT_INDEX_BITS) - 1)
    num_instructions = (data >> (BBIT_PC_BITS + BBIT_INDEX_BITS)) & (
        (1 << BBIT_LENGTH_BITS) - 1
    )
    return pc, tt_index, num_instructions


def bbit_row_ecc(pc: int, tt_index: int, num_instructions: int) -> int:
    """SEC-DED check word over every stored field of one BBIT row,
    including the CAM tag (the PC)."""
    return secded_encode(
        bbit_row_data(pc, tt_index, num_instructions), bbit_row_bits()
    )
