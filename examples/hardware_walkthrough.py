"""Figure 5 walkthrough: the decode hardware, cycle by cycle.

Builds a four-basic-block loop (the CFG shape drawn in Figure 5c),
encodes it, programs the Transformation Table and the Basic Block
Identification Table, and then walks the fetch stream printing what
the hardware sees and does: BBIT hits, TT entry advances, E/CT tail
handling, and the per-line transformations applied.

Run:  python examples/hardware_walkthrough.py
"""

from repro.cfg.graph import ControlFlowGraph
from repro.core.program_codec import encode_basic_block
from repro.hw.bbit import BasicBlockIdentificationTable, BBITEntry
from repro.hw.cost import estimate_cost
from repro.hw.fetch_decoder import FetchDecoder
from repro.hw.tt import TransformationTable
from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble_word
from repro.sim.cpu import run_program

BLOCK_SIZE = 5

# A loop whose CFG has four basic blocks (header, two conditional
# arms, latch) — the shape of Figure 5c.
SOURCE = """
        .text
main:   li    $s0, 6           # trip count
        li    $s1, 0           # accumulator
header: andi  $t0, $s0, 1
        beqz  $t0, even
odd:    sll   $t1, $s0, 1
        addu  $s1, $s1, $t1
        addu  $s1, $s1, $t1
        b     latch
even:   srl   $t1, $s0, 1
        subu  $s1, $s1, $t1
        xor   $s1, $s1, $t1
latch:  addiu $s0, $s0, -1
        bnez  $s0, header
        li    $v0, 10
        syscall
"""


def main() -> None:
    program = assemble(SOURCE)
    cpu, trace = run_program(program)
    cfg = ControlFlowGraph.build(program)
    print(f"program: {len(program.words)} instructions, "
          f"{len(cfg)} basic blocks, trace of {len(trace)} fetches")

    # Encode every loop basic block and program the two tables.
    tt = TransformationTable(capacity=16)
    bbit = BasicBlockIdentificationTable(capacity=16)
    image = list(program.words)
    loop_labels = ("header", "odd", "even", "latch")
    print("\n--- programming the tables ---")
    for label in loop_labels:
        start = program.address_of(label)
        block = cfg.blocks[start]
        encoding = encode_basic_block(block.words, BLOCK_SIZE)
        base = tt.allocate(encoding)
        bbit.install(
            BBITEntry(pc=start, tt_index=base, num_instructions=len(block))
        )
        first = program.index_of(start)
        for offset, word in enumerate(encoding.encoded_words):
            image[first + offset] = word
        print(
            f"{label:7s} @ {start:#x}: {len(block)} instructions -> "
            f"TT[{base}..{base + encoding.num_segments - 1}]"
        )

    print("\n--- Transformation Table contents ---")
    for index, entry in enumerate(tt.entries):
        names = {}
        for line, selector in enumerate(entry.selectors):
            names.setdefault(selector, []).append(line)
        summary = ", ".join(
            f"{_selector_name(sel)}x{len(lines)}"
            for sel, lines in sorted(names.items())
        )
        print(
            f"TT[{index:2d}] E={int(entry.end)} CT={entry.count}  "
            f"selectors: {summary}"
        )
    cost = estimate_cost(BLOCK_SIZE)
    print(
        f"storage: TT {cost.tt_bits} bits + BBIT {cost.bbit_bits} bits; "
        f"decode logic ~{cost.decode_gates} gate equivalents"
    )

    # Walk the first loop iterations through the fetch decoder.
    print("\n--- fetch walk (first 16 fetches) ---")
    decoder = FetchDecoder(tt, bbit, BLOCK_SIZE)
    base_addr = program.text_base
    print(f"{'pc':>10s} {'stored':>9s} {'decoded':>9s}  instruction")
    for pc in trace[:16]:
        stored = image[(pc - base_addr) >> 2]
        decoded = decoder.fetch(pc, stored)
        marker = " " if stored == decoded else "*"
        print(
            f"{pc:#10x} {stored:08x}{marker} {decoded:08x}  "
            f"{disassemble_word(decoded, pc)}"
        )
    print("(* = word stored encoded, restored by the TT gates)")

    # Verify the whole trace and count the savings.
    decoder.reset()
    decoded_all = decoder.decode_trace(
        list(trace), lambda pc: image[(pc - base_addr) >> 2]
    )
    original_all = [program.words[(pc - base_addr) >> 2] for pc in trace]
    assert decoded_all == original_all
    from repro.sim.bus import count_trace_transitions

    before = count_trace_transitions(program, trace)
    after = count_trace_transitions(program, trace, image)
    print(
        f"\nwhole trace restored exactly; bus transitions "
        f"{before} -> {after} ({100 * (before - after) / before:.1f}% saved)"
    )
    print(
        f"BBIT probes: {bbit.lookups}, hits: {bbit.hits} "
        "(one probe per non-sequential fetch, as in Section 7.2)"
    )


def _selector_name(selector: int) -> str:
    from repro.core.transformations import by_selector

    return by_selector(selector).name


if __name__ == "__main__":
    main()
