"""The crash-consistency checker: simulation semantics + the matrix.

Two halves:

* unit checks of the crash-state enumeration (``possible_contents``):
  unsynced bytes tear at byte boundaries, fsync pins a durable prefix,
  the last un-fsynced rename may un-happen, a never-fsynced creation
  may be absent;
* mutation self-tests — the checker only earns trust by *failing*
  when shown a deliberately broken writer (non-atomic replace-less
  writes, unsynced WAL appends).  A checker that passes everything
  checks nothing.

Plus the full campaign smoke the CI ``storage-faults`` job gates on.
"""

import pytest

from repro.faults.storage import (
    ABSENT,
    MemoryVFS,
    possible_contents,
    run_storage_campaign,
    storage_report_problems,
)
from repro.runtime.checkpoint import CheckpointLog, atomic_write_text


class TestCrashStateEnumeration:
    def test_unsynced_write_tears_at_every_byte(self):
        mem = MemoryVFS()
        handle = mem.open_append("f")
        mem.write(handle, b"abcd")
        mem.close(handle)  # no fsync
        states, dropped = possible_contents({}, mem.ops, "f")
        assert dropped == 0
        # Never-fsynced creation: absent, plus every prefix.
        assert ABSENT in states
        byte_states = {s for s in states if s is not None}
        assert byte_states == {b"", b"a", b"ab", b"abc", b"abcd"}

    def test_fsync_pins_a_durable_floor(self):
        mem = MemoryVFS()
        handle = mem.open_append("f")
        mem.write(handle, b"abcd")
        mem.fsync(handle)
        mem.write(handle, b"XY")
        mem.close(handle)
        states, _ = possible_contents({}, mem.ops, "f")
        assert ABSENT not in states  # fsync persisted the dentry too
        assert {s for s in states} == {b"abcd", b"abcdX", b"abcdXY"}

    def test_unfsynced_rename_may_not_have_happened(self):
        mem = MemoryVFS(initial_files={"dst": b"old"})
        handle, tmp = mem.mkstemp("", prefix=".dst.", suffix=".tmp")
        mem.write(handle, b"new")
        mem.fsync(handle)
        mem.close(handle)
        mem.replace(tmp, "dst")
        states, _ = possible_contents({"dst": b"old"}, mem.ops, "dst")
        # Both branches, nothing torn: that is the atomic-write promise.
        assert sorted(states) == [b"new", b"old"]

    def test_initial_files_are_durable(self):
        states, _ = possible_contents({"f": b"seed"}, [], "f")
        assert states == [b"seed"]

    def test_sampling_is_capped_deterministic_and_reported(self):
        mem = MemoryVFS()
        handle = mem.open_append("f")
        mem.write(handle, bytes(500))
        mem.close(handle)
        first, dropped = possible_contents({}, mem.ops, "f", seed=3, max_states=32)
        second, _ = possible_contents({}, mem.ops, "f", seed=3, max_states=32)
        assert first == second
        assert len(first) == 32
        assert dropped == 502 - 32  # 501 prefixes + ABSENT, minus kept
        # The endpoints always survive sampling.
        assert b"" in first and bytes(500) in first


class TestMutationSelfTest:
    """The checker must flag writers that are actually broken."""

    def test_non_atomic_writer_is_flagged(self):
        # Path.write_text semantics: unlink + rewrite in place.  Crash
        # windows expose absence and torn tails; the checker must see
        # both.
        old, new = b'{"old": true}', b'{"brand-new": 1}'
        mem = MemoryVFS(initial_files={"t.json": old})
        mem.unlink("t.json")
        handle = mem.open_append("t.json")
        mem.write(handle, new)
        mem.close(handle)
        bad_states = set()
        for n in range(len(mem.ops) + 1):
            states, _ = possible_contents({"t.json": old}, mem.ops[:n], "t.json")
            for state in states:
                if state is ABSENT or state not in (old, new):
                    bad_states.add(state)
        assert ABSENT in bad_states, "missing-file window not enumerated"
        assert any(
            s is not ABSENT for s in bad_states
        ), "torn-content window not enumerated"

    def test_unsynced_wal_append_is_losable(self):
        mem = MemoryVFS()
        handle = mem.open_append("w.log")
        mem.write(handle, b'{"key": "a"}\n')
        mem.close(handle)  # acked without fsync: a lie
        states, _ = possible_contents({}, mem.ops, "w.log")
        assert ABSENT in states or b"" in states

    def test_real_atomic_writer_is_clean(self):
        old = b'{"v": 1}'
        mem = MemoryVFS(initial_files={"out/r.json": old})
        atomic_write_text("out/r.json", '{"v": 2}', vfs=mem)
        for n in range(len(mem.ops) + 1):
            states, _ = possible_contents(
                {"out/r.json": old}, mem.ops[:n], "out/r.json"
            )
            for state in states:
                assert state in (old, b'{"v": 2}')

    def test_real_wal_never_loses_acked_records(self):
        mem = MemoryVFS()
        log = CheckpointLog("w.wal", run_key="rk", vfs=mem)
        log.record("a", {"v": 1})
        acked_at = len(mem.ops)
        log.record("b", {"v": 2})
        log.close()
        for n in range(acked_at, len(mem.ops) + 1):
            states, _ = possible_contents({}, mem.ops[:n], "w.wal")
            for state in states:
                replay = CheckpointLog(
                    "w.wal",
                    run_key="rk",
                    vfs=MemoryVFS(initial_files={"w.wal": state}),
                ).load()
                assert replay.get("a") == {"v": 1}


class TestCampaign:
    @pytest.fixture(scope="class")
    def report(self):
        return run_storage_campaign(seed=0, max_states=48)

    def test_every_surface_and_model_is_covered(self, report):
        surfaces = {row["surface"] for row in report.matrix}
        assert {
            "wal_append",
            "atomic_write",
            "atomic_write_repeated",
            "cache_put",
            "faults_report",
            "flight_dump",
        } <= surfaces
        models = {row["model"] for row in report.matrix}
        assert {"crash-every-prefix", "eio", "enospc", "torn"} <= models

    def test_the_matrix_is_violation_free(self, report):
        assert report.storage_ok(), report.to_dict()["matrix"]
        assert report.total_violations() == 0
        # And not vacuously: every crash row actually enumerated states.
        for row in report.matrix:
            if row["model"] == "crash-every-prefix":
                assert row["states_checked"] > 0

    def test_report_round_trips_through_the_gate(self, report, tmp_path):
        path = report.write(tmp_path / "FAULTS_report.json")
        import json

        data = json.loads(path.read_text())
        assert storage_report_problems(data) == []

    def test_gate_rejects_vacuous_and_violated_reports(self, report):
        assert storage_report_problems({}) != []
        assert storage_report_problems(
            {"campaign": "storage", "matrix": []}
        ) != []
        broken = report.to_dict()
        broken["matrix"][0]["violations"] = [
            {"crash_after_op": 3, "problem": "record lost"}
        ]
        problems = storage_report_problems(broken)
        assert any("record lost" in p for p in problems)
