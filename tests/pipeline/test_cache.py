"""BundleCache: LRU bounds, disk warm-start, graceful disk failure."""

import json

import pytest

from repro.pipeline.cache import (
    DISK_FORMAT_VERSION,
    BundleCache,
    cache_key,
    entry_digest,
    workload_fingerprint,
)


class TestKeys:
    def test_fingerprint_is_stable_and_content_sensitive(self):
        words = [0x12345678, 0x9ABCDEF0]
        assert workload_fingerprint(words) == workload_fingerprint(list(words))
        assert workload_fingerprint(words) != workload_fingerprint(words[::-1])
        assert len(workload_fingerprint(words)) == 16

    def test_cache_key_carries_every_artefact_parameter(self):
        key = cache_key("abcd", 5, 16, "greedy")
        assert key == "abcd-k5-tt16-greedy"
        assert cache_key("abcd", 4, 16, "greedy") != key
        assert cache_key("abcd", 5, 8, "greedy") != key
        assert cache_key("abcd", 5, 16, "optimal") != key


class TestLru:
    def test_capacity_bounds_and_evicts_oldest(self):
        cache = BundleCache(capacity=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        cache.put("c", {"v": 3})
        assert len(cache) == 2
        assert cache.get("a") is None
        assert cache.get("c") == {"v": 3}
        assert cache.evictions == 1

    def test_get_refreshes_recency(self):
        cache = BundleCache(capacity=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        cache.get("a")  # 'b' is now the eviction candidate
        cache.put("c", {"v": 3})
        assert cache.get("a") == {"v": 1}
        assert cache.get("b") is None

    def test_hit_miss_accounting(self):
        cache = BundleCache(capacity=4)
        cache.put("a", {"v": 1})
        cache.get("a")
        cache.get("nope")
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["size"] == 1

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            BundleCache(capacity=0)


class TestDiskMirror:
    def test_fresh_cache_warm_starts_from_disk(self, tmp_path):
        first = BundleCache(capacity=4, cache_dir=tmp_path)
        first.put("k", {"bundle_digest": "abc"})
        # A rebuilt pool's worker starts with an empty memory LRU but
        # the same cache_dir.
        second = BundleCache(capacity=4, cache_dir=tmp_path)
        assert second.get("k") == {"bundle_digest": "abc"}
        assert second.disk_loads == 1
        assert second.hits == 0  # disk load, not a memory hit
        assert second.get("k") == {"bundle_digest": "abc"}
        assert second.hits == 1  # now resident

    def test_memory_only_cache_touches_no_disk(self, tmp_path):
        cache = BundleCache(capacity=4, cache_dir=None)
        cache.put("k", {"v": 1})
        assert list(tmp_path.iterdir()) == []

    def test_corrupt_disk_entry_degrades_to_a_miss(self, tmp_path):
        (tmp_path / "k.json").write_text("{torn")
        cache = BundleCache(capacity=4, cache_dir=tmp_path)
        assert cache.get("k") is None
        assert cache.misses == 1

    def test_truncated_entry_is_quarantined_not_reread(self, tmp_path):
        (tmp_path / "k.json").write_text("{torn")
        cache = BundleCache(capacity=4, cache_dir=tmp_path)
        assert cache.get("k") is None
        assert cache.corrupt_entries == 1
        # The bad file moved aside for autopsy; the original name is
        # gone so the next lookup is a plain miss, not a re-parse.
        assert not (tmp_path / "k.json").exists()
        assert (tmp_path / "k.json.bad").read_text() == "{torn"
        assert cache.get("k") is None
        assert cache.corrupt_entries == 1  # quarantined exactly once

    def test_digest_mismatch_is_quarantined(self, tmp_path):
        writer = BundleCache(capacity=4, cache_dir=tmp_path)
        writer.put("k", {"bundle_digest": "abc", "n": 1})
        # Flip payload bytes without breaking the JSON: bit rot that a
        # parse alone would happily serve.
        path = tmp_path / "k.json"
        path.write_text(path.read_text().replace('"abc"', '"xyz"'))
        reader = BundleCache(capacity=4, cache_dir=tmp_path)
        assert reader.get("k") is None
        assert reader.corrupt_entries == 1
        assert (tmp_path / "k.json.bad").exists()

    def test_v1_format_entry_is_quarantined(self, tmp_path):
        # A pre-digest build's bare-dict entry must not be trusted.
        (tmp_path / "k.json").write_text('{"bundle_digest": "abc"}\n')
        cache = BundleCache(capacity=4, cache_dir=tmp_path)
        assert cache.get("k") is None
        assert cache.corrupt_entries == 1

    def test_recompute_after_quarantine_repopulates(self, tmp_path):
        (tmp_path / "k.json").write_text("garbage")
        cache = BundleCache(capacity=4, cache_dir=tmp_path)
        assert cache.get("k") is None  # quarantined, caller recomputes
        cache.put("k", {"v": 1})
        fresh = BundleCache(capacity=4, cache_dir=tmp_path)
        assert fresh.get("k") == {"v": 1}
        assert fresh.corrupt_entries == 0

    def test_disk_write_failure_never_raises(self, tmp_path):
        cache = BundleCache(capacity=4, cache_dir=tmp_path)
        # Replace the directory with a file: every write now fails.
        for child in tmp_path.iterdir():
            child.unlink()
        tmp_path.rmdir()
        tmp_path.write_text("not a directory")
        cache.put("k", {"v": 1})  # must not raise
        assert cache.get("k") == {"v": 1}  # memory layer still serves

    def test_disk_entry_is_deterministic_json(self, tmp_path):
        cache = BundleCache(capacity=4, cache_dir=tmp_path)
        entry = {"b": 2, "a": 1}
        cache.put("k", entry)
        on_disk = (tmp_path / "k.json").read_text()
        envelope = json.loads(on_disk)
        assert envelope["v"] == DISK_FORMAT_VERSION
        assert envelope["entry"] == entry
        assert envelope["digest"] == entry_digest(entry)
        # Concurrent writers of the same key must race benignly:
        # identical input, identical bytes.
        cache.put("k", {"b": 2, "a": 1})
        assert (tmp_path / "k.json").read_text() == on_disk
