"""Counterexample minimisation and replay.

When a differential check fires, the campaign does not just log the
seed: it shrinks the failing input to a locally-minimal form (smaller
inputs localise the divergence to one codebook entry or one decode
step) and records a self-contained JSON record — kind, parameters,
shrunk input, the active mutation — inside ``VERIFY_report.json``.
``repro verify --replay`` feeds such a record back through
:func:`replay_counterexample` to reproduce the divergence from the
report alone, machines and sessions later.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import VerifyError
from repro.verify import checks

#: Schema version for counterexample records inside VERIFY_report.json.
RECORD_VERSION = 1


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------


def _shrink_sequence(
    items: list, still_fails: Callable[[list], bool], budget: int
) -> tuple[list, int]:
    """Greedy ddmin-style chunk removal: repeatedly drop the largest
    removable chunk, halving the chunk size until single elements."""
    current = list(items)
    chunk = max(1, len(current) // 2)
    while chunk >= 1 and budget > 0:
        shrunk_this_pass = False
        start = 0
        while start < len(current) and budget > 0:
            candidate = current[:start] + current[start + chunk :]
            budget -= 1
            if candidate and still_fails(candidate):
                current = candidate
                shrunk_this_pass = True
            else:
                start += chunk
        if not shrunk_this_pass:
            chunk //= 2
    return current, budget


def shrink_stream(
    stream: list[int],
    still_fails: Callable[[list[int]], bool],
    budget: int = 300,
) -> list[int]:
    """Minimise a failing bit stream: drop chunks, then clear 1-bits
    (an all-zero stream is the 'simplest' input in codebook terms)."""
    current, budget = _shrink_sequence(stream, still_fails, budget)
    for position in range(len(current)):
        if budget <= 0:
            break
        if current[position] == 1:
            candidate = list(current)
            candidate[position] = 0
            budget -= 1
            if still_fails(candidate):
                current = candidate
    return current


def shrink_words(
    words: list[int],
    still_fails: Callable[[list[int]], bool],
    budget: int = 300,
) -> list[int]:
    """Minimise a failing instruction block: drop words, then clear
    set bits word by word, highest bit first."""
    current, budget = _shrink_sequence(words, still_fails, budget)
    for position in range(len(current)):
        word = current[position]
        bit = word.bit_length() - 1
        while bit >= 0 and budget > 0:
            if (word >> bit) & 1:
                candidate = list(current)
                candidate[position] = word & ~(1 << bit)
                budget -= 1
                if still_fails(candidate):
                    current = candidate
                    word = candidate[position]
            bit -= 1
    return current


# ----------------------------------------------------------------------
# Records
# ----------------------------------------------------------------------


def make_record(
    kind: str,
    seed_key: str,
    params: dict,
    input_data,
    mismatch: dict,
    mutations: tuple[str, ...],
) -> dict:
    """A self-contained, JSON-serialisable counterexample."""
    return {
        "version": RECORD_VERSION,
        "kind": kind,
        "seed_key": seed_key,
        "params": dict(params),
        "input": input_data,
        "mismatch": mismatch,
        "mutations": list(mutations),
    }


def replay_counterexample(record: dict) -> dict | None:
    """Re-run the exact check a counterexample records.

    Returns the mismatch the replay observed, or ``None`` when the
    divergence no longer reproduces (fixed code, or the record's
    mutation was not re-armed).  The caller is responsible for arming
    ``record["mutations"]`` first — replay itself never mutates.
    """
    kind = record.get("kind")
    params = record.get("params") or {}
    input_data = record.get("input")
    try:
        if kind == "stream":
            result = checks.check_stream(
                list(input_data), params["k"], params["strategy"]
            )
        elif kind == "program":
            result = checks.check_program(list(input_data), params["k"])
        elif kind == "tables":
            result = checks.check_tables(
                [list(block) for block in input_data],
                params["k"],
                params["fault"],
                params["flip_seed"],
            )
        elif kind == "sweep_codebook":
            result = checks.sweep_codebook(params["k"])
        elif kind == "sweep_tau":
            result = checks.sweep_tau(params["k"])
        elif kind == "sweep_boundary":
            result = checks.sweep_boundary(params["k"])
        elif kind == "encoders":
            result = checks.check_encoders(list(input_data))
        elif kind == "sweep_encoders":
            result = checks.sweep_encoder_tables()
        else:
            raise VerifyError(f"counterexample has unknown kind {kind!r}")
    except (KeyError, TypeError) as err:
        raise VerifyError(
            f"counterexample record is malformed: {err!r}"
        ) from err
    return None if result.ok else result.mismatch
