"""Function calls inside hot loops (Section 7.2).

The paper offers two treatments: leave the callee unencoded ("handled
in the traditional way"), or include it "if the total number of
application basic blocks can be accommodated in the BBIT".  Both fall
out of our flow: the callee is a separate basic block, selectable by
weight when ``loops_only=False`` (calls leave the natural loop body),
and always decodable because every encoded region re-synchronises at
its BBIT entry.
"""

import pytest

from repro.cfg.graph import ControlFlowGraph
from repro.cfg.loops import find_natural_loops
from repro.isa.assembler import assemble
from repro.pipeline.flow import EncodingFlow
from repro.sim.cpu import run_program

SOURCE = """
        .text
main:   li $s0, 40
        li $s1, 0
loop:   move $a0, $s0
        jal triple
        addu $s1, $s1, $v1
        addiu $s0, $s0, -1
        bnez $s0, loop
        move $a0, $s1
        li $v0, 1
        syscall
        li $v0, 10
        syscall
triple: sll $v1, $a0, 1
        addu $v1, $v1, $a0
        xor $t8, $v1, $a0
        and $t9, $v1, $a0
        jr $ra
"""


@pytest.fixture(scope="module")
def call_setup():
    program = assemble(SOURCE)
    cpu, trace = run_program(program)
    assert cpu.output == [str(3 * sum(range(1, 41)))]
    return program, trace


class TestCalleeHandling:
    def test_callee_is_separate_block(self, call_setup):
        program, trace = call_setup
        cfg = ControlFlowGraph.build(program)
        triple = program.address_of("triple")
        assert triple in cfg.blocks
        assert cfg.blocks[triple].has_indirect_successor

    def test_traditional_treatment_excludes_callee(self, call_setup):
        # loops_only: only blocks in the natural loop body qualify;
        # the callee (reached via call/return, not a loop back edge)
        # stays plain — the paper's first alternative.
        program, trace = call_setup
        result = EncodingFlow(block_size=5, loops_only=True).run(
            program, trace, "calls"
        )
        triple = program.address_of("triple")
        assert triple not in result.selected_blocks
        assert result.decode_verified or not result.selected_blocks

    def test_inclusive_treatment_encodes_callee(self, call_setup):
        # The second alternative: with capacity to spare and
        # loops_only off, the hot callee is encoded too.
        program, trace = call_setup
        result = EncodingFlow(block_size=5, loops_only=False).run(
            program, trace, "calls"
        )
        triple = program.address_of("triple")
        assert triple in result.selected_blocks
        assert result.decode_verified

    def test_inclusive_beats_or_ties_traditional(self, call_setup):
        program, trace = call_setup
        traditional = EncodingFlow(block_size=5, loops_only=True).run(
            program, trace, "calls"
        )
        inclusive = EncodingFlow(block_size=5, loops_only=False).run(
            program, trace, "calls"
        )
        assert (
            inclusive.encoded_transitions <= traditional.encoded_transitions
        )

    def test_loop_detected_despite_call(self, call_setup):
        program, trace = call_setup
        cfg = ControlFlowGraph.build(program)
        loops = find_natural_loops(cfg)
        headers = {loop.header for loop in loops}
        assert program.address_of("loop") in headers
