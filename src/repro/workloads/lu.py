"""LU decomposition (``lu``) — Doolittle, in place, no pivoting, on a
diagonally dominant matrix (so pivots never vanish).

    for k in 0..n-1:
        for i in k+1..n-1:
            A[i][k] /= A[k][k]
            for j in k+1..n-1:
                A[i][j] -= A[i][k] * A[k][j]

The paper factorises 128x128; the default here is 32x32.
"""

from __future__ import annotations

from repro.workloads.common import (
    Workload,
    assert_close,
    format_doubles,
    pseudo_values,
    read_doubles,
)

DEFAULT_N = 32


def _reference(a: list[float], n: int) -> list[float]:
    m = list(a)
    for k in range(n):
        for i in range(k + 1, n):
            m[i * n + k] /= m[k * n + k]
            factor = m[i * n + k]
            for j in range(k + 1, n):
                m[i * n + j] -= factor * m[k * n + j]
    return m


def build(n: int = DEFAULT_N) -> Workload:
    """Build the lu workload for an ``n`` x ``n`` matrix."""
    if n < 2:
        raise ValueError(f"matrix size must be >= 2, got {n}")
    a = pseudo_values(n * n, seed=11)
    for i in range(n):  # diagonal dominance keeps pivots well away from 0
        a[i * n + i] = 20.0 + i * 0.5
    expected = _reference(a, n)

    source = f"""
# lu: in-place Doolittle decomposition, {n}x{n} doubles
        .data
A:
{format_doubles(a)}
        .text
main:
        li    $s0, {n}          # N
        sll   $s4, $s0, 3       # row stride
        la    $s5, A
        li    $s1, 0            # k
kloop:
        mul   $t5, $s1, $s0
        addu  $t5, $t5, $s1
        sll   $t5, $t5, 3
        addu  $t6, $s5, $t5     # &A[k][k]
        l.d   $f2, 0($t6)       # pivot
        addiu $s2, $s1, 1       # i = k+1
        beq   $s2, $s0, knext
iloop:
        mul   $t5, $s2, $s0
        addu  $t5, $t5, $s1
        sll   $t5, $t5, 3
        addu  $t7, $s5, $t5     # &A[i][k]
        l.d   $f4, 0($t7)
        div.d $f4, $f4, $f2     # multiplier
        s.d   $f4, 0($t7)
        mul   $t5, $s1, $s0
        addu  $t5, $t5, $s1
        sll   $t5, $t5, 3
        addu  $t8, $s5, $t5     # &A[k][k] (walks A[k][j])
        move  $t9, $t7          # walks A[i][j]
        addiu $s3, $s1, 1       # j = k+1
jloop:
        addiu $t8, $t8, 8
        addiu $t9, $t9, 8
        l.d   $f6, 0($t8)       # A[k][j]
        mul.d $f6, $f6, $f4
        l.d   $f8, 0($t9)       # A[i][j]
        sub.d $f8, $f8, $f6
        s.d   $f8, 0($t9)
        addiu $s3, $s3, 1
        bne   $s3, $s0, jloop
        addiu $s2, $s2, 1
        bne   $s2, $s0, iloop
knext:
        addiu $s1, $s1, 1
        bne   $s1, $s0, kloop
        li    $v0, 10
        syscall
"""

    def verify(cpu) -> None:
        measured = read_doubles(cpu, "A", n * n)
        assert_close(measured, expected, tolerance=1e-9, what="lu A")

    return Workload(
        name="lu",
        description=f"Doolittle LU decomposition, {n}x{n} (paper: 128x128)",
        source=source,
        params={"n": n},
        verify=verify,
    )
