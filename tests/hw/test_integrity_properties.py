"""Exhaustive and property-based SEC-DED coverage over full row widths.

The scheme's whole guarantee is two sentences: *every* single-bit
upset (data or check word) is corrected back to the exact original,
and *every* double-bit upset is flagged uncorrectable.  The existing
unit tests sample this; these tests prove the single-bit half
exhaustively over both real row formats — all 129 data bits + 9 check
bits of a width-32 TT row, all 128 + 9 of a BBIT row — and sweep a
seeded sample of the double-bit space (data x data, data x check,
check x check), driven by the shared strategies module.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.strategies import rng_for, seeded_words

from repro.hw import integrity
from repro.hw.integrity import (
    CLEAN,
    CORRECTED,
    UNCORRECTABLE,
    bbit_row_bits,
    bbit_row_data,
    secded_check_bits,
    secded_decode,
    secded_encode,
    tt_row_bits,
    tt_row_data,
)


def _tt_row(seed) -> tuple[int, int]:
    """A representative serialised TT row: (data word, data bits)."""
    rng = rng_for("tt-row", seed)
    selectors = tuple(rng.randrange(8) for _ in range(32))
    data = tt_row_data(selectors, rng.random() < 0.5, rng.randrange(1 << 5))
    return data, tt_row_bits(32)


def _bbit_row(seed) -> tuple[int, int]:
    """A representative serialised BBIT row: (data word, data bits)."""
    rng = rng_for("bbit-row", seed)
    data = bbit_row_data(
        rng.getrandbits(32) & ~0b11, rng.randrange(1 << 10), rng.randrange(256)
    )
    return data, bbit_row_bits()


ROWS = [
    pytest.param(_tt_row, id="tt-row-129-bits"),
    pytest.param(_bbit_row, id="bbit-row-128-bits"),
]


@pytest.mark.parametrize("make_row", ROWS)
class TestExhaustiveSingleBit:
    def test_clean_roundtrip(self, make_row):
        data, m = make_row(0)
        check = secded_encode(data, m)
        assert secded_decode(data, m, check) == (CLEAN, data, check)

    def test_every_data_bit_corrects_exactly(self, make_row):
        data, m = make_row(1)
        check = secded_encode(data, m)
        for position in range(m):  # the full serialised row width
            status, fixed_data, fixed_check = secded_decode(
                data ^ (1 << position), m, check
            )
            assert status == CORRECTED, position
            assert fixed_data == data, position
            assert fixed_check == check, position

    def test_every_check_bit_corrects_exactly(self, make_row):
        data, m = make_row(2)
        check = secded_encode(data, m)
        for position in range(secded_check_bits(m)):
            status, fixed_data, fixed_check = secded_decode(
                data, m, check ^ (1 << position)
            )
            assert status == CORRECTED, position
            assert fixed_data == data, position
            assert fixed_check == check, position

    def test_sampled_double_bit_always_uncorrectable(self, make_row):
        data, m = make_row(3)
        check = secded_encode(data, m)
        r = secded_check_bits(m)
        rng = rng_for("double-bit", m)
        # A seeded sample across all three double-flip classes.
        for _ in range(300):
            kind = rng.randrange(3)
            if kind == 0:  # data x data
                a, b = rng.sample(range(m), 2)
                flipped = (data ^ (1 << a) ^ (1 << b), check)
            elif kind == 1:  # data x check
                flipped = (
                    data ^ (1 << rng.randrange(m)),
                    check ^ (1 << rng.randrange(r)),
                )
            else:  # check x check
                a, b = rng.sample(range(r), 2)
                flipped = (data, check ^ (1 << a) ^ (1 << b))
            status, _, _ = secded_decode(flipped[0], m, flipped[1])
            assert status == UNCORRECTABLE, (kind, flipped)


class TestRowSerialisationRoundtrip:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_tt_row_fields_roundtrip(self, seed):
        rng = rng_for("tt-roundtrip", seed)
        selectors = tuple(rng.randrange(8) for _ in range(32))
        end = rng.random() < 0.5
        count = rng.randrange(1 << 32)
        data = tt_row_data(selectors, end, count)
        assert integrity.tt_row_fields(data, 32) == (selectors, end, count)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_bbit_row_fields_roundtrip(self, seed):
        rng = rng_for("bbit-roundtrip", seed)
        pc = rng.getrandbits(64)
        tt_index = rng.getrandbits(32)
        length = rng.getrandbits(32)
        data = bbit_row_data(pc, tt_index, length)
        assert integrity.bbit_row_fields(data) == (pc, tt_index, length)

    def test_single_bit_on_live_words_heals_fields(self):
        # Through the field layer: corrupt serialised data from real
        # instruction-shaped words, decode, and demand exact healing.
        words = seeded_words("integrity-live", 4)
        selectors = tuple(word & 0b111 for word in words * 8)
        data = tt_row_data(selectors, True, 7)
        m = tt_row_bits(32)
        check = secded_encode(data, m)
        rng = rng_for("live-flip")
        for _ in range(64):
            position = rng.randrange(m)
            status, fixed_data, _ = secded_decode(
                data ^ (1 << position), m, check
            )
            assert status == CORRECTED
            assert integrity.tt_row_fields(fixed_data, 32) == (
                selectors,
                True,
                7,
            )


@given(
    data_word=st.integers(min_value=0, max_value=(1 << 129) - 1),
    m=st.just(129),
)
@settings(max_examples=80, deadline=None)
def test_secded_property_arbitrary_data(data_word, m):
    """For arbitrary 129-bit data: clean roundtrip, every sampled
    single flip corrects, every sampled double flip detects."""
    check = secded_encode(data_word, m)
    assert secded_decode(data_word, m, check)[0] == CLEAN
    rng = rng_for("arbitrary", data_word % 100_000)
    position = rng.randrange(m)
    assert secded_decode(data_word ^ (1 << position), m, check) == (
        CORRECTED,
        data_word,
        check,
    )
    a, b = rng.sample(range(m), 2)
    status, _, _ = secded_decode(
        data_word ^ (1 << a) ^ (1 << b), m, check
    )
    assert status == UNCORRECTABLE
